"""Ablation: duplicate-GET service (the paper's Fig. 4 observation).

With the paper-observed behaviour on, retransmitted GET copies are
re-served; with exact-once semantics they are not.
"""

from benchmarks.conftest import bench_n
from repro.experiments.ablations import run_dupserve_ablation


def test_dupserve_ablation(benchmark, show):
    n = bench_n(15)
    result = benchmark.pedantic(lambda: run_dupserve_ablation(n_per_point=n),
                                rounds=1, iterations=1)
    show(result.table())
    by_mode = {p.serve_duplicates: p for p in result.points}
    assert by_mode[False].duplicate_serves_per_load == 0.0
    assert (by_mode[True].duplicate_serves_per_load
            >= by_mode[False].duplicate_serves_per_load)

"""Ablation: TCP loss-recovery generation (DESIGN.md section 5).

The paper's 2020 testbed saw broken connections under aggressive drops
and decaying late-image success; modern loss recovery (TLP/RACK/F-RTO)
shrugs the same attack off with higher success.  This bench quantifies
the gap -- and explains the deltas recorded in EXPERIMENTS.md E4/E5.
"""

from benchmarks.conftest import bench_n
from repro.experiments.ablations import run_recovery_ablation


def test_recovery_generation_ablation(benchmark, show):
    n = bench_n(15)
    result = benchmark.pedantic(lambda: run_recovery_ablation(n_per_point=n),
                                rounds=1, iterations=1)
    show(result.table())
    by_stack = {p.stack: p for p in result.points}
    modern, legacy = by_stack["modern"], by_stack["legacy-2020"]
    # The attack works against both generations...
    assert modern.image_success_pct > 60.0
    assert legacy.image_success_pct > 40.0
    # ...but the legacy stack shows the paper's fragility.
    assert legacy.broken_pct >= modern.broken_pct
    assert legacy.mean_duration_s > modern.mean_duration_s

"""Ablation: the server's multiplexing scheduler (DESIGN.md section 5).

Round-robin is the paper's multiplexing server; FIFO is "multiplexing
disabled" -- under it the passive size side-channel needs no attack.
"""

from benchmarks.conftest import bench_n
from repro.experiments.ablations import run_scheduler_ablation


def test_scheduler_ablation(benchmark, show):
    n = bench_n(15)
    result = benchmark.pedantic(lambda: run_scheduler_ablation(n_per_point=n),
                                rounds=1, iterations=1)
    show(result.table())
    by_name = {p.scheduler: p for p in result.points}
    # FIFO kills image multiplexing; round-robin sustains it.
    assert by_name["fifo"].image_mean_degree_pct < 30.0
    assert by_name["round-robin"].image_mean_degree_pct > 40.0
    assert by_name["weighted"].image_mean_degree_pct > 40.0

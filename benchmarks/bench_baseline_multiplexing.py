"""E1: baseline multiplexing without the adversary (DESIGN.md E1).

Paper reference points: HTML non-multiplexed in ~32 % of loads, ~98 %
degree when multiplexed, emblem images 80-99 %.
"""

from benchmarks.conftest import bench_n
from repro.experiments.baseline import run_baseline


def test_baseline_multiplexing(benchmark, show):
    n = bench_n(40)
    result = benchmark.pedantic(lambda: run_baseline(n_loads=n),
                                rounds=1, iterations=1)
    show(result.table())
    # Shape assertions (generous bands; see EXPERIMENTS.md for numbers).
    assert 10.0 <= result.html_nonmux_pct <= 55.0
    assert result.html_degree_when_muxed > 0.6
    assert result.image_mean_degree > 0.35

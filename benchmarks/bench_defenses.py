"""E7b: defenses against the serialization attack (DESIGN.md E7)."""

from benchmarks.conftest import bench_jobs, bench_n
from repro.experiments.defenses_eval import run_defenses


def test_defenses(benchmark, show):
    n = bench_n(15)
    result = benchmark.pedantic(
        lambda: run_defenses(n_per_defense=n, jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    by_name = {o.name: o for o in result.outcomes}
    undefended = by_name["none"].sequence_accuracy_pct
    assert undefended >= 60.0
    # Every defense collapses order recovery toward chance.
    for name in ("padding", "morphing", "random-order", "push", "batching"):
        assert by_name[name].sequence_accuracy_pct < undefended / 2, name
    # Defenses must not break the page itself.
    for outcome in result.outcomes:
        assert outcome.load_success_pct >= 80.0, outcome.name

"""E4: Section IV-D -- the reset-forcing drop burst (DESIGN.md E4).

Paper: 80 % drops until the client resets gives ~90 % of loads with the
object of interest transmitted non-multiplexed afterwards; pushing the
drop rate higher breaks connections instead.
"""

from benchmarks.conftest import bench_jobs, bench_n
from repro.experiments.drops import run_drops


def test_drop_burst_forces_serialized_reserve(benchmark, show):
    n = bench_n(25)
    result = benchmark.pedantic(
        lambda: run_drops(n_per_point=n, drop_rates=(0.5, 0.8, 0.95),
                          jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    by_rate = {p.drop_rate: p for p in result.points}
    operating = by_rate[0.8]
    # The paper's operating point: resets happen and the HTML comes back
    # clean in the large majority of loads.
    assert operating.reset_happened_pct >= 60.0
    assert operating.html_serialized_pct >= 70.0

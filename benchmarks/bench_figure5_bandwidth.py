"""E3: Figure 5 -- effect of bandwidth limitation (DESIGN.md E3).

Paper: with 50 ms jitter, retransmissions fall as the throttle
tightens; success peaks near 800 Mbps and collapses at 1 Mbps, where
connections start breaking.
"""

from benchmarks.conftest import bench_jobs, bench_n
from repro.experiments.figure5 import run_figure5


def test_figure5_bandwidth(benchmark, show):
    n = bench_n(20)
    result = benchmark.pedantic(
        lambda: run_figure5(n_per_point=n, jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    points = {p.bandwidth_bps: p for p in result.points}
    # The 1 Mbps point must visibly degrade the experience: broken loads
    # or much slower pages (the paper's "broken connection" regime).
    slowest = points[1e6]
    fastest = points[1_000e6]
    assert (slowest.broken_pct > 0
            or slowest.mean_duration_s > 2 * fastest.mean_duration_s)
    # Success must not *improve* at 1 Mbps over the 800 Mbps point.
    assert points[1e6].nonmux_pct <= points[800e6].nonmux_pct + 10

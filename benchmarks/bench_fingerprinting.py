"""E7a: ML classification of encrypted traces (DESIGN.md E7)."""

from benchmarks.conftest import bench_n
from repro.experiments.fingerprinting import run_fingerprinting


def test_fingerprinting(benchmark, show):
    n = bench_n(32)
    result = benchmark.pedantic(
        lambda: run_fingerprinting(n_loads=n, n_pages=6, loads_per_page=5),
        rounds=1, iterations=1)
    show(result.table())
    # The attack makes the answer readable.
    assert result.decoded_first_party_pct >= 70.0
    # Without any adversary the best classifier stays near chance.
    assert max(result.first_party_none.values()) < 0.45
    # Classic page fingerprinting works on both protocol stacks.
    assert max(result.page_h1.values()) > 0.8
    assert max(result.page_h2.values()) > 0.8

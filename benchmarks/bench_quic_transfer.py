"""E9 (extension): attack transfer to HTTP/3 over QUIC.

On a fully encrypted QUIC wire the adversary loses the TLS record
headers, but request datagrams are still individually spaceable by
size and object boundaries still fall out of sub-full packets -- the
serialization attack transfers.
"""

from benchmarks.conftest import bench_n
from repro.experiments.quic_transfer import run_quic_transfer


def test_quic_transfer(benchmark, show):
    n = max(5, bench_n(10) // 2)
    result = benchmark.pedantic(lambda: run_quic_transfer(n_sessions=n),
                                rounds=1, iterations=1)
    show(result.table())
    by_name = {p.condition.split(" (")[0]: p for p in result.points}
    assert by_name["passive"].sequence_accuracy_pct < 40.0
    assert by_name["spacing attack"].sequence_accuracy_pct > 75.0
    assert by_name["spacing attack"].images_serialized_pct > 85.0

"""E6: Figure 1 -- size estimation, serialized vs multiplexed."""

from repro.experiments.size_estimation import run_size_estimation


def test_size_estimation_two_cases(benchmark, show):
    result = benchmark.pedantic(run_size_estimation, rounds=1, iterations=1)
    show(result.table())
    assert result.serialized_exact
    assert not result.multiplexed_exact

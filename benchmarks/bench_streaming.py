"""E8 (extension): streaming traffic (paper Section VII).

The paper's future-work direction: the serialization technique applies
to HTTP/2 streaming.  Measures bitrate-ladder recovery under four
conditions -- including the tail-residue analyzer, which reads the
ladder passively once a VBR census is available.
"""

from benchmarks.conftest import bench_n
from repro.experiments.streaming import run_streaming


def test_streaming_ladder_recovery(benchmark, show):
    n = max(4, bench_n(8) // 3)
    result = benchmark.pedantic(lambda: run_streaming(n_sessions=n),
                                rounds=1, iterations=1)
    show(result.table())
    by_name = {p.condition.split(" (")[0]: p for p in result.points}
    sequential = by_name["sequential player"]
    pipelined = by_name["pipelined player"]
    attacked = by_name["pipelined + spacing attack"]
    passive = by_name["pipelined + tail-residue analyzer"]
    # Natural serialization leaks everything; multiplexing hides it;
    # the attack (or the residue analyzer) takes it back.
    assert sequential.rung_accuracy_pct > 90.0
    assert pipelined.rung_accuracy_pct < 40.0
    assert attacked.rung_accuracy_pct > 70.0
    assert passive.rung_accuracy_pct > 70.0
    # The active attack is visible in QoE; the passive analyzer is not.
    assert attacked.rebuffer_events >= passive.rebuffer_events

"""E2: Table I -- effect of jitter on multiplexing (DESIGN.md E2).

Paper: non-multiplexed loads rise 32 -> 46 -> 54 and plateau; the
retransmission count inflates with jitter.  The spacing-ramp style
reproduces the non-mux column; netem-style jitter reproduces the
retransmission inflation (see DESIGN.md on the two implementations).
"""

from benchmarks.conftest import bench_jobs, bench_n
from repro.experiments.table1 import run_table1


def test_table1_spacing_style(benchmark, show):
    n = bench_n(30)
    result = benchmark.pedantic(
        lambda: run_table1(n_per_point=n, style="spacing",
                           jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    nonmux = [p.nonmux_pct for p in result.points]
    # Rising from the baseline, then flattening (the paper's plateau).
    assert nonmux[1] > nonmux[0]
    assert nonmux[2] > nonmux[0] + 10
    assert abs(nonmux[3] - nonmux[2]) < 25


def test_table1_netem_style(benchmark, show):
    n = bench_n(20)
    result = benchmark.pedantic(
        lambda: run_table1(n_per_point=n, style="netem",
                           jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    retx = [p.mean_retransmissions for p in result.points]
    # Jitter inflates retransmissions well above baseline at every level.
    assert all(r > retx[0] + 3 for r in retx[1:])

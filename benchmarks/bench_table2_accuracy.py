"""E5: Table II -- end-to-end prediction accuracy (DESIGN.md E5).

Paper: single-target success 100 % on every object; all-objects success
90 % for the HTML and decaying from 90 % (I1) to the low 60s for the
later images.
"""

from benchmarks.conftest import bench_jobs, bench_n
from repro.experiments.table2 import run_table2


def test_table2_prediction_accuracy(benchmark, show):
    n = bench_n(40)
    result = benchmark.pedantic(
        lambda: run_table2(n_loads=n, jobs=bench_jobs()),
        rounds=1, iterations=1)
    show(result.table(), result.telemetry)
    # Single-target: near-perfect on the images (paper: 100 %).
    assert all(pct >= 80.0 for pct in result.single_pct[1:])
    # All-objects: the image sequence is recovered in the large
    # majority of loads (paper: 62-90 %).
    assert all(pct >= 60.0 for pct in result.all_pct[1:])
    # The HTML is recovered in the majority of loads (paper: 90 %).
    assert result.all_pct[0] >= 50.0
    # Who wins is unambiguous: far above the 12.5 % order-guess chance.
    assert min(result.all_pct[1:]) > 40.0

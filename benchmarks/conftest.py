"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the measured-vs-paper comparison.  Repetition counts default to
values that keep the whole suite around 10-20 minutes; set
``REPRO_BENCH_N`` to scale them (e.g. 100 reproduces the paper's
100-download experiments exactly).

Runner-backed benchmarks additionally honor:

* ``REPRO_BENCH_JOBS`` -- worker processes for the experiment grid
  (default 1; results are identical at any job count).
* ``REPRO_CACHE_DIR`` -- location of the on-disk run cache (default
  ``~/.cache/repro-runs``); a warm cache makes a re-run near-instant.

See docs/EXPERIMENTS_GUIDE.md for the full workflow.
"""

import os

import pytest


def bench_n(default: int) -> int:
    """Loads per measurement point, overridable via REPRO_BENCH_N."""
    value = os.environ.get("REPRO_BENCH_N")
    return int(value) if value else default


def bench_jobs(default: int = 1) -> int:
    """Grid worker processes, overridable via REPRO_BENCH_JOBS."""
    value = os.environ.get("REPRO_BENCH_JOBS")
    return int(value) if value else default


@pytest.fixture
def show():
    """Print a result table (and runner telemetry) under the benchmark."""

    def _show(table, telemetry=None) -> None:
        text = table.to_text() if hasattr(table, "to_text") else str(table)
        if telemetry is not None:
            text += "\n" + telemetry.line()
        print("\n" + text + "\n")

    return _show

"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the measured-vs-paper comparison.  Repetition counts default to
values that keep the whole suite around 10-20 minutes; set
``REPRO_BENCH_N`` to scale them (e.g. 100 reproduces the paper's
100-download experiments exactly).
"""

import os

import pytest


def bench_n(default: int) -> int:
    """Loads per measurement point, overridable via REPRO_BENCH_N."""
    value = os.environ.get("REPRO_BENCH_N")
    return int(value) if value else default


@pytest.fixture
def show():
    """Print a result table under the benchmark output."""

    def _show(table) -> None:
        text = table.to_text() if hasattr(table, "to_text") else str(table)
        print("\n" + text + "\n")

    return _show

#!/usr/bin/env python
"""The paper's Section V campaign in miniature.

Simulates a batch of volunteers taking the survey through the
compromised gateway and reports per-object success rates in the layout
of the paper's Table II, plus the failure anatomy (broken loads,
resets, duplicate serves).

Run:  python examples/attack_isidewith.py [n_volunteers]
"""

import sys

from repro import AttackConfig, SessionConfig, run_session
from repro.experiments.evaluation import aggregate_table2, evaluate_table2
from repro.experiments.table2 import OBJECT_LABELS, PAPER_ALL, PAPER_SINGLE


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    print(f"Simulating {n} volunteers under the full attack ...")
    outcomes = []
    for i in range(n):
        result = run_session(SessionConfig(seed=1000 + i,
                                           attack=AttackConfig()))
        outcomes.append(evaluate_table2(result))
        marker = "ok " if outcomes[-1].all_correct else "mis"
        print(f"  volunteer {i:3d}: {marker} "
              f"(resets={outcomes[-1].resets}, "
              f"broken={outcomes[-1].broken})")

    aggregated = aggregate_table2(outcomes)
    print("\nObject    single-target %   (paper)   all-objects %   (paper)")
    for i, label in enumerate(OBJECT_LABELS):
        print(f"{label:8s}  {aggregated['single'][i]:15.1f}   "
              f"({PAPER_SINGLE[i]:3d})    {aggregated['all'][i]:12.1f}   "
              f"({PAPER_ALL[i]:3d})")
    print(f"\nbroken loads: {aggregated['broken_pct']:.1f}%  "
          f"mean resets: {aggregated['mean_resets']:.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Defense evaluation: what actually stops the serialization attack.

Runs the full attack against padding, morphing, the paper's proposed
randomized request order, and server push, and reports how much of the
user's preference order each defense leaks.

Run:  python examples/defense_eval.py [loads_per_defense]
"""

import sys

from repro.defenses.padding import bucket_padding, padding_overhead
from repro.experiments.defenses_eval import run_defenses
from repro.website.isidewith import PARTY_IMAGE_SIZES


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(f"Running the full attack against each defense ({n} loads each) ...\n")
    result = run_defenses(n_per_defense=n)
    print(result.table().to_text())

    overhead = padding_overhead(PARTY_IMAGE_SIZES.values(),
                                bucket_padding(16_384))
    print(f"\n16 KB bucket padding costs {overhead * 100:.0f}% extra "
          f"bandwidth on the emblem images -- the 'unreasonable overhead' "
          f"the paper says made such defenses impractical, and why "
          f"multiplexing looked attractive.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""ML traffic analysis: reading the survey answer from encrypted bytes.

Runs the E7a experiment at small scale: the adversary's deterministic
decode under the full attack, generic classifiers on partly multiplexed
(jitter-only) traces, and the no-adversary control -- plus the classic
page-fingerprinting attack over HTTP/1.1 vs HTTP/2.

Run:  python examples/fingerprint_ml.py
"""

from repro.experiments.fingerprinting import run_fingerprinting


def main() -> None:
    print("Building trace datasets and cross-validating classifiers")
    print("(a few minutes of simulated page loads) ...\n")
    result = run_fingerprinting(n_loads=32, n_pages=6, loads_per_page=5)
    print(result.table().to_text())
    print(
        "\nReading: with the serialization attack the survey answer is"
        "\nreadable from ciphertext sizes alone; without the adversary"
        "\nHTTP/2 multiplexing keeps classifiers near chance."
    )


if __name__ == "__main__":
    main()

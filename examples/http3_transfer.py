#!/usr/bin/env python
"""Does the attack survive HTTP/3?  (paper Section VII, reference [27])

QUIC encrypts everything -- no TLS record headers, no TCP sequence
numbers -- and removes transport head-of-line blocking.  This example
runs the emblem-image burst over the HTTP/3-lite stack, passively and
under the spacing attack, and shows that packet sizes and timing alone
still carry the attack.

Run:  python examples/http3_transfer.py [sessions]
"""

import sys

from repro.experiments.quic_transfer import run_quic_transfer


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    print(f"Running {n} HTTP/3 sessions per condition ...\n")
    result = run_quic_transfer(n_sessions=n)
    print(result.table().to_text())
    print(
        "\nReading: even on a fully encrypted QUIC wire, request datagrams"
        "\nare individually spaceable by size, and the serialized responses"
        "\nleak their sizes through sub-full packets and time gaps."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Section IV walk-through: how each network knob affects multiplexing.

Reproduces the paper's exploration order -- uniform delay (no effect),
jitter (helps until the retransmission storm), bandwidth throttling
(damps the storm), targeted drops (forces the reset) -- each with a
handful of loads so the script finishes in about a minute.

Run:  python examples/network_conditions.py
"""

from repro import SessionConfig, run_session
from repro.core.phases import (
    AttackConfig,
    jitter_only_config,
    uniform_delay_config,
)
from repro.website.isidewith import HTML_PATH

N = 10


def measure(label, make_config, mutate=None):
    nonmux = 0
    retx = 0
    for i in range(N):
        config = make_config(i)
        result = run_session(config)
        retx += result.retransmissions
        try:
            nonmux += result.degree(HTML_PATH) == 0.0
        except KeyError:
            pass
    print(f"  {label:38s} HTML non-mux {100 * nonmux / N:5.1f}%   "
          f"retx/load {retx / N:6.2f}")


def main() -> None:
    print(f"Effect of network parameters on HTTP/2 multiplexing ({N} loads each)\n")

    print("IV-A: uniform delay cannot change inter-arrival times")
    measure("baseline (no interference)", lambda i: SessionConfig(seed=i))
    measure("uniform 50 ms delay", lambda i: SessionConfig(
        seed=i, attack=uniform_delay_config(0.05)))

    print("\nIV-B: jitter spaces requests apart")
    for jitter_ms in (25, 50, 100):
        measure(f"jitter {jitter_ms} ms per GET", lambda i, j=jitter_ms:
                SessionConfig(seed=i, attack=jitter_only_config(j / 1000.0)))

    print("\nIV-D: the full pipeline (jitter + throttle + drop burst)")
    measure("full Section V attack", lambda i: SessionConfig(
        seed=i, attack=AttackConfig()))


if __name__ == "__main__":
    main()

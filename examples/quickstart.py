#!/usr/bin/env python
"""Quickstart: run the serialization attack on one survey load.

Builds the full simulated stack (client -- compromised gateway --
HTTP/2 server hosting the synthetic isidewith.com), runs one volunteer
session with the Section V attack pipeline, and compares what the
adversary read off the encrypted wire with the ground truth.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import AttackConfig, SessionConfig, run_session
from repro.website.isidewith import HTML_PATH


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(f"Running one attacked survey load (seed={seed}) ...")
    result = run_session(SessionConfig(seed=seed, attack=AttackConfig()))

    report = result.report
    print("\n--- attack phases (simulated seconds) ---")
    for phase, when in sorted(report.phase_times.items(), key=lambda kv: kv[1]):
        print(f"  {when:7.3f}  {phase}")

    print("\n--- what the adversary decoded from the encrypted trace ---")
    print("  predicted:", report.predicted_labels)

    print("\n--- ground truth ---")
    print("  permutation:", list(result.permutation))
    print("  HTML transmitted un-multiplexed at least once:",
          result.serialized(HTML_PATH))

    party_sequence = [l for l in report.predicted_labels if l != "html"]
    correct = sum(1 for i, party in enumerate(result.permutation)
                  if i < len(party_sequence) and party_sequence[i] == party)
    print(f"\nResult: {correct}/8 preference positions recovered, "
          f"page load {'succeeded' if result.load.success else 'failed'} "
          f"after {result.load.resets} reset(s), "
          f"{result.duration_s:.1f}s simulated.")


if __name__ == "__main__":
    main()

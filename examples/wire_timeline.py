#!/usr/bin/env python
"""Visualize multiplexing vs the attack's serialization.

Renders the server's transmission log as an ASCII Gantt chart for a
clean load (objects overlap: multiplexed) and an attacked load (the
post-reset staircase), focusing on the emblem-image window.

Run:  python examples/wire_timeline.py [seed]
"""

import sys

from repro import AttackConfig, SessionConfig, run_session
from repro.experiments.viz import degree_summary, wire_timeline
from repro.website.isidewith import HTML_PATH, IsideWithSite


def image_window(result):
    times = [e.time for e in result.tx_log
             if e.is_data and "emblem" in e.object_path]
    return (min(times) - 0.3, max(times) + 0.3) if times else (0.0, None)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    print("=== clean load (no adversary): the images multiplex ===")
    clean = run_session(SessionConfig(seed=seed))
    since, until = image_window(clean)
    print(wire_timeline(clean.tx_log, since=since, until=until))
    image_paths = [IsideWithSite.image_path(p) for p in clean.permutation]
    print(degree_summary(clean.tx_log, [HTML_PATH] + image_paths))

    print("\n=== attacked load: the post-reset staircase ===")
    attacked = run_session(SessionConfig(seed=seed, attack=AttackConfig()))
    since, until = image_window(attacked)
    print(wire_timeline(attacked.tx_log, since=since, until=until))
    image_paths = [IsideWithSite.image_path(p) for p in attacked.permutation]
    print(degree_summary(attacked.tx_log, [HTML_PATH] + image_paths))


if __name__ == "__main__":
    main()

"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (no `wheel` available offline); `pip install -e .` falls back to
the legacy `setup.py develop` path through this file."""

from setuptools import setup

setup()

"""repro: reproduction of "Depending on HTTP/2 for Privacy? Good Luck!"
(DSN 2020).

The package implements, from scratch, the paper's serialization attack
on HTTP/2 multiplexing together with every substrate it runs on: a
discrete-event network simulator, TCP Reno, a TLS record layer, an
HTTP/2 stack (multi-worker server + browser-like client), the synthetic
target website, traffic-analysis classifiers, and defenses.

Quickstart::

    from repro import AttackConfig, SessionConfig, run_session

    result = run_session(SessionConfig(seed=1, attack=AttackConfig()))
    print(result.report.predicted_labels)   # adversary's view
    print(result.permutation)               # ground truth

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.adversary import AttackReport, Http2SerializationAttack
from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.metrics import degree_of_multiplexing, object_serialized
from repro.core.phases import (
    AttackConfig,
    AttackPhase,
    full_attack_config,
    jitter_only_config,
    jitter_plus_throttle_config,
)
from repro.core.predictor import ObjectPredictor, SizeIdentityMap
from repro.experiments.session import (
    SessionConfig,
    SessionResult,
    isidewith_size_map,
    run_session,
    run_sessions,
)
from repro.faults import FaultEvent, FaultInjector, FaultPlan, plan_for_intensity
from repro.simnet.engine import Simulator
from repro.website.isidewith import PARTIES, build_isidewith_site

__version__ = "1.0.0"

__all__ = [
    "AttackConfig",
    "AttackPhase",
    "AttackReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Http2SerializationAttack",
    "ObjectEstimate",
    "ObjectPredictor",
    "PARTIES",
    "SessionConfig",
    "SessionResult",
    "Simulator",
    "SizeEstimator",
    "SizeIdentityMap",
    "__version__",
    "build_isidewith_site",
    "degree_of_multiplexing",
    "full_attack_config",
    "isidewith_size_map",
    "jitter_only_config",
    "jitter_plus_throttle_config",
    "object_serialized",
    "plan_for_intensity",
    "run_session",
    "run_sessions",
]

"""Encrypted-traffic analysis: features and classifiers.

The paper's future-work section suggests machine learning for the cases
its deterministic pipeline cannot untangle; this subpackage provides the
standard website-fingerprinting toolchain, implemented from scratch on
numpy:

* :mod:`repro.analysis.features` -- packet/record-trace feature vectors,
* :mod:`repro.analysis.knn` -- k-nearest-neighbours,
* :mod:`repro.analysis.nbayes` -- Gaussian naive Bayes,
* :mod:`repro.analysis.forest` -- decision trees and random forests,
* :mod:`repro.analysis.crossval` -- stratified k-fold evaluation,
* :mod:`repro.analysis.fingerprint` -- the dataset container shared
  with the builders in :mod:`repro.experiments.datasets` (which drive
  simulations and therefore live above this layer).
"""

from repro.analysis.crossval import confusion_matrix, cross_validate
from repro.analysis.features import TraceFeatureExtractor
from repro.analysis.fingerprint import FingerprintDataset
from repro.analysis.forest import DecisionTreeClassifier, RandomForestClassifier
from repro.analysis.knn import KNeighborsClassifier
from repro.analysis.nbayes import GaussianNBClassifier

__all__ = [
    "DecisionTreeClassifier",
    "FingerprintDataset",
    "GaussianNBClassifier",
    "KNeighborsClassifier",
    "RandomForestClassifier",
    "TraceFeatureExtractor",
    "confusion_matrix",
    "cross_validate",
]

"""Stratified cross-validation utilities."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np


def stratified_folds(y: np.ndarray, n_folds: int, seed: int = 0,
                     ) -> List[np.ndarray]:
    """Index arrays for ``n_folds`` label-balanced folds."""
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    folds: List[List[int]] = [[] for _ in range(n_folds)]
    for label in np.unique(y):
        indices = np.nonzero(y == label)[0]
        rng.shuffle(indices)
        for i, index in enumerate(indices):
            folds[i % n_folds].append(int(index))
    return [np.array(sorted(f)) for f in folds]


def cross_validate(make_classifier: Callable, X: np.ndarray, y: np.ndarray,
                   n_folds: int = 5, seed: int = 0) -> Dict[str, float]:
    """k-fold accuracy of ``make_classifier()`` instances.

    Returns mean/std/min accuracy over folds.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    folds = stratified_folds(y, n_folds, seed)
    scores = []
    for i, test_index in enumerate(folds):
        if len(test_index) == 0:
            continue
        train_mask = np.ones(len(y), dtype=bool)
        train_mask[test_index] = False
        classifier = make_classifier()
        classifier.fit(X[train_mask], y[train_mask])
        scores.append(classifier.score(X[test_index], y[test_index]))
    scores = np.array(scores)
    return {
        "mean_accuracy": float(scores.mean()),
        "std_accuracy": float(scores.std()),
        "min_accuracy": float(scores.min()),
        "folds": int(len(scores)),
    }


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """(labels, matrix) with rows=true, columns=predicted."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return labels, matrix

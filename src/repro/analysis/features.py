"""Feature extraction from encrypted captures.

Features follow the website-fingerprinting literature the paper cites:
aggregate volume, record-size distribution, burst structure, and the
recovered object-size estimates -- all derivable from cleartext headers
and sizes only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.estimator import SizeEstimator
from repro.simnet.middlebox import SERVER_TO_CLIENT
from repro.simnet.trace import TraceRecorder

#: Record-size histogram bucket edges (wire bytes).
SIZE_BUCKETS = (64, 128, 256, 512, 1024, 1200, 1300, 1390, 1401, 2000)

#: Number of leading object-size estimates included in the vector.
TOP_OBJECTS = 12


class TraceFeatureExtractor:
    """Turns a capture into a fixed-length numeric feature vector."""

    def __init__(self, estimator: Optional[SizeEstimator] = None,
                 since: float = 0.0):
        self.estimator = estimator or SizeEstimator()
        self.since = since

    @property
    def n_features(self) -> int:
        return 8 + len(SIZE_BUCKETS) + 1 + TOP_OBJECTS

    def extract(self, trace: TraceRecorder) -> np.ndarray:
        """Feature vector for one capture."""
        records = [r for r in trace.completed_records(SERVER_TO_CLIENT)
                   if r.end_time >= self.since]
        sizes = np.array([r.wire_len for r in records], dtype=float)
        times = np.array([r.end_time for r in records], dtype=float)

        features: List[float] = []
        if sizes.size == 0:
            return np.zeros(self.n_features)

        # Aggregate volume and shape.
        features.append(float(sizes.sum()))
        features.append(float(sizes.size))
        features.append(float(sizes.mean()))
        features.append(float(sizes.std()))
        features.append(float(np.median(sizes)))
        features.append(float(times[-1] - times[0]) if times.size > 1 else 0.0)
        gaps = np.diff(times) if times.size > 1 else np.zeros(1)
        features.append(float(gaps.mean()))
        features.append(float(gaps.max()) if gaps.size else 0.0)

        # Record-size histogram.
        histogram, _ = np.histogram(sizes, bins=(0,) + SIZE_BUCKETS)
        features.extend(histogram.astype(float).tolist())
        features.append(float((sizes >= SIZE_BUCKETS[-1]).sum()))

        # Recovered object-size estimates (the Fig. 1 side-channel).
        estimates = self.estimator.estimate_from_records(records)
        top = sorted((e.size for e in estimates), reverse=True)[:TOP_OBJECTS]
        top += [0] * (TOP_OBJECTS - len(top))
        features.extend(float(s) for s in top)

        return np.array(features, dtype=float)

    def extract_many(self, traces: Sequence[TraceRecorder]) -> np.ndarray:
        """Stacked feature matrix for a list of captures."""
        return np.vstack([self.extract(t) for t in traces])


def first_object_size_feature(trace: TraceRecorder, since: float = 0.0,
                              estimator: Optional[SizeEstimator] = None,
                              tail: int = 16) -> np.ndarray:
    """Minimal feature: the ordered tail of object-size estimates.

    Used by the sequence-recovery experiments, where the question is
    whether the *order* of objects is readable from the trace.  The
    JS-triggered burst (the emblem images) is the last thing a survey
    load transfers, so aligning the vector at the trace tail keeps the
    image slots in stable positions regardless of how many auxiliary
    objects preceded them.
    """
    estimator = estimator or SizeEstimator()
    estimates = estimator.estimate_from_trace(trace, since=since)
    sizes = [float(e.size) for e in estimates][-tail:]
    sizes = [0.0] * (tail - len(sizes)) + sizes
    return np.array(sizes)


def known_size_rank_feature(trace: TraceRecorder, known_sizes,
                            since: float = 0.0, tolerance: int = 400,
                            estimator: Optional[SizeEstimator] = None,
                            ) -> np.ndarray:
    """Rank features anchored on the adversary's size map.

    For each known object size, the feature is the (1-based) order in
    which an estimate matching that size first appears among all
    matches, or 0 when it never shows up cleanly.  This encodes exactly
    the adversary's prior (the pre-compiled size -> identity map of
    Section V) and lets generic classifiers read the *order* signal the
    serialization attack exposes.
    """
    estimator = estimator or SizeEstimator()
    estimates = estimator.estimate_from_trace(trace, since=since)
    known = list(known_sizes)
    first_match = {size: None for size in known}
    rank = 0
    for estimate in estimates:
        for size in known:
            if first_match[size] is None and abs(estimate.size - size) <= tolerance:
                rank += 1
                first_match[size] = rank
                break
    return np.array([float(first_match[size] or 0) for size in known])

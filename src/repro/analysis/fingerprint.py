"""The fingerprinting dataset container.

A :class:`FingerprintDataset` is the interchange format between the
dataset *builders* (experiments-layer code that drives simulations --
see :mod:`repro.experiments.datasets`) and the classifiers/evaluators
in this subpackage, which only ever see features and labels.  Keeping
the container here and the builders above the analysis layer is what
lets the analysis layer stay ignorant of sessions, sites and attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class FingerprintDataset:
    """Feature matrix, labels and provenance."""

    X: np.ndarray
    y: np.ndarray
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.y)

"""Decision trees and random forests (numpy, Gini impurity).

A compact CART implementation: binary splits on feature thresholds,
gini criterion, depth/size stopping rules; the forest adds bootstrap
sampling and per-split feature subsampling with majority voting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: Optional[object] = None

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - float((p * p).sum())


class DecisionTreeClassifier:
    """CART classifier."""

    def __init__(self, max_depth: int = 12, min_samples_split: int = 2,
                 max_features: Optional[int] = None, seed: int = 0):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, encoded, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_))
        majority = int(np.argmax(counts))
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or _gini(counts) == 0.0):
            return _Node(prediction=majority)

        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = rng.choice(n_features, size=self.max_features,
                                    replace=False)
        else:
            candidates = np.arange(n_features)

        best = None  # (impurity, feature, threshold, mask)
        parent_impurity = _gini(counts)
        for feature in candidates:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            distinct = np.nonzero(np.diff(sorted_values))[0]
            if distinct.size == 0:
                continue
            # Candidate thresholds at midpoints between distinct values.
            for idx in distinct:
                threshold = (sorted_values[idx] + sorted_values[idx + 1]) / 2.0
                mask = values <= threshold
                left_counts = np.bincount(y[mask], minlength=len(self.classes_))
                right_counts = counts - left_counts
                n_left, n_right = left_counts.sum(), right_counts.sum()
                impurity = (n_left * _gini(left_counts)
                            + n_right * _gini(right_counts)) / len(y)
                if best is None or impurity < best[0]:
                    best = (impurity, feature, threshold, mask)

        if best is None or best[0] >= parent_impurity:
            return _Node(prediction=majority)
        _, feature, threshold, mask = best
        if mask.all() or not mask.any():
            return _Node(prediction=majority)
        left = self._grow(X[mask], y[mask], depth + 1, rng)
        right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return _Node(feature=int(feature), threshold=float(threshold),
                     left=left, right=right)

    def _predict_row(self, row: np.ndarray) -> int:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted label per row."""
        if self._root is None:
            raise RuntimeError("fit() before predict()")
        X = np.asarray(X, dtype=float)
        encoded = np.array([self._predict_row(row) for row in X])
        return self.classes_[encoded]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return float(np.mean(self.predict(X) == np.asarray(y)))


class RandomForestClassifier:
    """Bagged CART trees with feature subsampling."""

    def __init__(self, n_trees: int = 25, max_depth: int = 12,
                 min_samples_split: int = 2,
                 max_features: Optional[str] = "sqrt", seed: int = 0):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_trees`` trees on bootstrap samples."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        n_features = X.shape[1]
        if self.max_features == "sqrt":
            per_split = max(1, int(np.sqrt(n_features)))
        else:
            per_split = n_features
        self._trees = []
        for i in range(self.n_trees):
            rows = rng.integers(0, len(X), size=len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=per_split,
                seed=self.seed * 1000 + i,
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote across trees."""
        if not self._trees:
            raise RuntimeError("fit() before predict()")
        votes = np.stack([tree.predict(X) for tree in self._trees])
        predictions = []
        for column in votes.T:
            labels, counts = np.unique(column, return_counts=True)
            predictions.append(labels[np.argmax(counts)])
        return np.array(predictions)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

"""k-nearest-neighbours classifier (numpy, standardized Euclidean).

kNN on trace features is the classic website-fingerprinting attack
(Wang et al. style) the paper's related work builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class KNeighborsClassifier:
    """Majority vote among the k nearest training points."""

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Store (standardized) training data."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted label per row."""
        if self._X is None:
            raise RuntimeError("fit() before predict()")
        X = (np.asarray(X, dtype=float) - self._mean) / self._scale
        predictions = []
        k = min(self.k, len(self._X))
        for row in X:
            distances = np.linalg.norm(self._X - row, axis=1)
            nearest = np.argsort(distances, kind="stable")[:k]
            labels, counts = np.unique(self._y[nearest], return_counts=True)
            predictions.append(labels[np.argmax(counts)])
        return np.array(predictions)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

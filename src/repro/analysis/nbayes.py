"""Gaussian naive Bayes classifier (numpy)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class GaussianNBClassifier:
    """Per-class diagonal Gaussians with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self._theta: Optional[np.ndarray] = None
        self._var: Optional[np.ndarray] = None
        self._prior: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNBClassifier":
        """Estimate class means, variances and priors."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n_classes, n_features = len(self.classes_), X.shape[1]
        self._theta = np.zeros((n_classes, n_features))
        self._var = np.zeros((n_classes, n_features))
        self._prior = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for i, label in enumerate(self.classes_):
            rows = X[y == label]
            self._theta[i] = rows.mean(axis=0)
            self._var[i] = rows.var(axis=0) + epsilon
            self._prior[i] = len(rows) / len(X)
        return self

    def _log_likelihood(self, X: np.ndarray) -> np.ndarray:
        joint = []
        for i in range(len(self.classes_)):
            log_prior = np.log(self._prior[i])
            gauss = -0.5 * (np.log(2.0 * np.pi * self._var[i])
                            + (X - self._theta[i]) ** 2 / self._var[i])
            joint.append(log_prior + gauss.sum(axis=1))
        return np.array(joint).T

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Maximum a-posteriori label per row."""
        if self.classes_ is None:
            raise RuntimeError("fit() before predict()")
        X = np.asarray(X, dtype=float)
        return self.classes_[np.argmax(self._log_likelihood(X), axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on a labelled set."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

"""Deterministic slow-HTTP/2 DoS attack workloads.

Specs (:class:`AttackSpec`) are JSON-able data that ride in run-cache
keys; agents (:func:`make_agent`) turn a spec into seeded simulator
clients that drive the real TCP/TLS/HTTP/2 stack.  Taxonomy and
hardening counterparts are documented in docs/DOS.md.
"""

from repro.attacks.agents import (
    AttackAgent,
    AttackConnection,
    PingFloodAgent,
    SettingsFloodAgent,
    SlowHeadersAgent,
    SlowPostAgent,
    SlowPreambleAgent,
    StreamResetChurnAgent,
    make_agent,
)
from repro.attacks.spec import ATTACK_KINDS, AttackSpec

__all__ = [
    "ATTACK_KINDS",
    "AttackSpec",
    "AttackAgent",
    "AttackConnection",
    "SlowPreambleAgent",
    "SlowHeadersAgent",
    "SlowPostAgent",
    "PingFloodAgent",
    "SettingsFloodAgent",
    "StreamResetChurnAgent",
    "make_agent",
]

"""Seeded slow-DoS agents driving real TCP/TLS/HTTP/2 state machines.

Each agent turns one :class:`~repro.attacks.spec.AttackSpec` into
deterministic simulator behaviour: it dials through a *shared*
:class:`~repro.tcp.connection.TcpStack` (a host carries a single
transport, so the attacker rides the same stack as the legitimate
client, on distinct ephemeral ports), performs the real TLS handshake
where the kind requires one, and then misbehaves exactly as described
in :data:`~repro.attacks.spec.ATTACK_KINDS`.

Agents are pure clients: they never touch server internals, and all
their randomness comes from one named simulator stream
(``attack:<kind>``), so a cell is a pure function of its seed and spec.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional

from repro.attacks.spec import AttackSpec
from repro.http2 import frames as fr
from repro.http2.connection import Http2Connection
from repro.http2.errors import ErrorCode
from repro.http2.settings import SETTINGS_MAX_HEADER_LIST_SIZE
from repro.tls.session import TlsSession

#: Wire size charged for an attacker's HPACK-encoded request block
#: (method/scheme/authority/path on first use; the exact figure only
#: shapes byte counts, not behaviour).
_REQUEST_BLOCK_LEN = 56

#: Hard cap on connections an agent will ever track -- bounds re-dial
#: growth no matter what the spec asks for.
_MAX_CONNS_TRACKED = 64


class AttackConnection(Http2Connection):
    """Attacker's side of an HTTP/2 connection: ignores every response.

    The attacker allocates odd stream ids like a real client but never
    reacts to server frames -- dangling state is the point.
    """

    def __init__(self, sim, tls: TlsSession):
        super().__init__(sim, tls)
        self.next_stream_id = 1
        #: Stream ids this connection opened (slow kinds trickle on them).
        self.attack_streams: List[int] = []

    def allocate_stream_id(self) -> int:
        stream_id = self.next_stream_id
        self.next_stream_id += 2
        return stream_id

    def handle_headers(self, frame: fr.HeadersFrame, dup: bool) -> None:
        return None

    def handle_data(self, frame: fr.DataFrame, dup: bool) -> None:
        return None

    def handle_rst_stream(self, frame: fr.RstStreamFrame) -> None:
        return None


class AttackAgent:
    """Base agent: dials ``spec.connections`` when the spec starts."""

    def __init__(self, sim, stack, spec: AttackSpec,
                 server_addr: str = "server", port: int = 443):
        spec.validate()
        self.sim = sim
        self.stack = stack
        self.spec = spec
        self.server_addr = server_addr
        self.port = port
        self.rng = sim.rng(f"attack:{spec.kind}")
        self.dials = 0
        self.frames_sent = 0
        self.streams_opened = 0
        self._started = False

    @property
    def expired(self) -> bool:
        """True once the spec's pressure window has passed."""
        return self.sim.now >= self.spec.ends_at_s

    def start(self) -> None:
        """Arm the agent; it dials at ``spec.start_s``.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.spec.start_s, self._launch)

    def _launch(self) -> None:
        for index in range(self.spec.connections):
            # Stagger dials a hair so SYNs do not phase-lock.
            self.sim.schedule(index * 0.002 + self.rng.uniform(0.0, 0.001),
                              self._dial)

    def _dial(self) -> None:
        raise NotImplementedError


class SlowPreambleAgent(AttackAgent):
    """Dial TCP, never speak TLS: every connection parks an accept slot.

    A sweep every ``pace_s`` re-dials connections the server managed to
    kill, keeping the pressure constant for ``duration_s``.
    """

    def __init__(self, sim, stack, spec, server_addr="server", port=443):
        super().__init__(sim, stack, spec, server_addr, port)
        self.conns: List = []
        self._sweeping = False

    def _dial(self) -> None:
        if len(self.conns) >= min(self.spec.connections, _MAX_CONNS_TRACKED):
            return
        self.dials += 1
        self.conns.append(self.stack.connect(self.server_addr, self.port,
                                             self._on_established))
        if not self._sweeping:
            self._sweeping = True
            self.sim.schedule(self.spec.pace_s, self._sweep)

    def _on_established(self, conn) -> None:
        return None  # the whole attack is the silence after the handshake

    def _sweep(self) -> None:
        if self.expired:
            return
        for index, conn in enumerate(self.conns):
            if conn.state == "closed":
                self.dials += 1
                self.conns[index] = self.stack.connect(
                    self.server_addr, self.port, self._on_established)
        self.sim.schedule(self.spec.pace_s, self._sweep)


class _Http2AttackAgent(AttackAgent):
    """Shared TCP+TLS+HTTP/2 bring-up for the protocol-level kinds."""

    def __init__(self, sim, stack, spec, server_addr="server", port=443):
        super().__init__(sim, stack, spec, server_addr, port)
        self.conns: List[AttackConnection] = []

    def _dial(self) -> None:
        self.dials += 1
        self.stack.connect(self.server_addr, self.port,
                           self._on_tcp_established)

    def _on_tcp_established(self, conn) -> None:
        if len(self.conns) >= _MAX_CONNS_TRACKED:  # bound tracked state
            return
        tls = TlsSession(conn, role="client")
        h2 = AttackConnection(self.sim, tls)
        h2.on_ready = partial(self._begin, h2)
        self.conns.append(h2)

    def _usable(self, h2: AttackConnection) -> bool:
        return (not h2.goaway_received
                and h2.tls.conn.state != "closed"
                and not self.expired)

    def _request_headers(self) -> dict:
        return {":method": "GET", ":scheme": "https",
                ":path": self.spec.target_path}

    def _open_stream(self, h2: AttackConnection,
                     end_stream: bool) -> Optional[fr.HeadersFrame]:
        if len(h2.attack_streams) >= 4096:  # bound per-conn stream state
            return None
        stream_id = h2.allocate_stream_id()
        h2.attack_streams.append(stream_id)
        self.streams_opened += 1
        return fr.HeadersFrame(stream_id=stream_id,
                               headers=self._request_headers(),
                               header_block_len=_REQUEST_BLOCK_LEN,
                               end_stream=end_stream)

    def _begin(self, h2: AttackConnection) -> None:
        raise NotImplementedError


class SlowHeadersAgent(_Http2AttackAgent):
    """Open ``streams`` requests announcing bodies that never come."""

    @property
    def open_gap_s(self) -> float:
        """Spacing between stream opens (``pace_s`` for this kind)."""
        return self.spec.pace_s

    def _begin(self, h2: AttackConnection) -> None:
        self._open_next(h2)

    def _open_next(self, h2: AttackConnection) -> None:
        if not self._usable(h2) or len(h2.attack_streams) >= self.spec.streams:
            return
        frame = self._open_stream(h2, end_stream=False)
        if frame is None:
            return
        h2.send_frame(frame)
        self.frames_sent += 1
        self.sim.schedule(self.open_gap_s, self._open_next, h2)


class SlowPostAgent(SlowHeadersAgent):
    """Slow headers plus a one-byte body trickle per ``pace_s``.

    The trickle keeps every stream looking alive to a first-byte
    timeout; only body-progress accounting catches it.
    """

    #: Streams open at burst pace -- ``pace_s`` is the *trickle*
    #: cadence for this kind (see :class:`AttackSpec`).
    _OPEN_GAP_S = 0.02

    @property
    def open_gap_s(self) -> float:
        return min(self.spec.pace_s, self._OPEN_GAP_S)

    def _begin(self, h2: AttackConnection) -> None:
        self._open_next(h2)
        self.sim.schedule(self.spec.pace_s, self._trickle, h2)

    def _trickle(self, h2: AttackConnection) -> None:
        if not self._usable(h2):
            return
        for stream_id in h2.attack_streams:
            if h2.can_send_data(stream_id, 1):
                h2.send_data_frame(fr.DataFrame(stream_id=stream_id,
                                                length=1))
                self.frames_sent += 1
        self.sim.schedule(self.spec.pace_s, self._trickle, h2)


class PingFloodAgent(_Http2AttackAgent):
    """PING at ``rate_per_s``; the mandatory inline ack doubles the
    frame-processing load."""

    def _begin(self, h2: AttackConnection) -> None:
        self._flood(h2)

    def _flood(self, h2: AttackConnection) -> None:
        if not self._usable(h2):
            return
        h2.send_frame(fr.PingFrame())
        self.frames_sent += 1
        self.sim.schedule(1.0 / self.spec.rate_per_s, self._flood, h2)


class SettingsFloodAgent(_Http2AttackAgent):
    """Non-ack SETTINGS at ``rate_per_s``; each forces a re-parse and a
    SETTINGS ack."""

    def _begin(self, h2: AttackConnection) -> None:
        self._flood(h2)

    def _flood(self, h2: AttackConnection) -> None:
        if not self._usable(h2):
            return
        h2.send_frame(fr.SettingsFrame(
            settings={SETTINGS_MAX_HEADER_LIST_SIZE: 65_536}))
        self.frames_sent += 1
        self.sim.schedule(1.0 / self.spec.rate_per_s, self._flood, h2)


class StreamResetChurnAgent(_Http2AttackAgent):
    """Open a stream and reset it in the same TLS record (rapid reset)."""

    def _begin(self, h2: AttackConnection) -> None:
        self._churn(h2)

    def _churn(self, h2: AttackConnection) -> None:
        if not self._usable(h2):
            return
        frame = self._open_stream(h2, end_stream=True)
        if frame is None:
            return
        reset = fr.RstStreamFrame(stream_id=frame.stream_id,
                                  error_code=int(ErrorCode.CANCEL))
        h2._send_record([frame, reset])
        self.frames_sent += 2
        # Opened-and-reset streams do not accumulate live state; drop
        # them from the tracking list so the 4096 bound never trips.
        h2.attack_streams.pop()
        self.sim.schedule(1.0 / self.spec.rate_per_s, self._churn, h2)


_AGENT_CLASSES = {
    "slow_preamble": SlowPreambleAgent,
    "slow_headers": SlowHeadersAgent,
    "slow_post": SlowPostAgent,
    "ping_flood": PingFloodAgent,
    "settings_flood": SettingsFloodAgent,
    "stream_reset_churn": StreamResetChurnAgent,
}


def make_agent(sim, stack, spec, server_addr: str = "server",
               port: int = 443) -> AttackAgent:
    """Build the agent class for ``spec.kind`` (spec or JSON-able dict)."""
    spec = AttackSpec.coerce(spec)
    if spec is None:
        raise ValueError("make_agent() requires a spec, got None")
    return _AGENT_CLASSES[spec.kind](sim, stack, spec,
                                     server_addr=server_addr, port=port)

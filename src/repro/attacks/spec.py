"""Attack specs: declarative, JSON-able slow-DoS workload descriptions.

A spec is data, not behaviour: it can ride inside a
:class:`repro.experiments.runner.RunSpec`'s params (and therefore inside
the cache key), cross a process boundary as JSON, and be compared for
equality -- the same contract as :class:`repro.faults.FaultPlan`.  The
agents in :mod:`repro.attacks.agents` turn a spec into seeded simulator
behaviour driving real TCP/TLS/HTTP/2 state machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: Recognised attack kinds (taxonomy in docs/DOS.md).
#:
#: ``slow_preamble``      -- dial TCP connections and never speak TLS:
#:                           each one parks a connection slot forever.
#: ``slow_headers``       -- open request streams with
#:                           ``HEADERS(END_STREAM=0)`` and go silent;
#:                           the announced body never arrives, so the
#:                           stream counts against
#:                           ``max_concurrent_streams`` forever.
#: ``slow_post``          -- like ``slow_headers``, but trickle one
#:                           body byte per ``pace_s`` per stream to
#:                           defeat a naive first-byte timeout.
#: ``ping_flood``         -- PING at ``rate_per_s``; every PING forces
#:                           an inline ack, doubling the damage.
#: ``settings_flood``     -- non-ack SETTINGS at ``rate_per_s``; each
#:                           one forces a SETTINGS ack and a settings
#:                           re-parse.
#: ``stream_reset_churn`` -- open a stream and reset it in the same TLS
#:                           record at ``rate_per_s`` (the rapid-reset
#:                           shape): the server books a stream, spawns
#:                           state, and tears it down, over and over.
ATTACK_KINDS = ("slow_preamble", "slow_headers", "slow_post",
                "ping_flood", "settings_flood", "stream_reset_churn")

#: Kinds whose load knob is ``streams`` (per connection).
_STREAM_KINDS = ("slow_headers", "slow_post")

#: Kinds whose load knob is ``rate_per_s``.
_RATE_KINDS = ("ping_flood", "settings_flood", "stream_reset_churn")


@dataclass(frozen=True)
class AttackSpec:
    """One deterministic slow-DoS workload."""

    kind: str
    #: Absolute simulation time the agent starts dialling.
    start_s: float = 0.0
    #: How long the agent keeps applying pressure after starting.
    duration_s: float = 30.0
    #: Connections the agent holds open (and, for ``slow_preamble``,
    #: re-dials when the server kills one).
    connections: int = 1
    #: Streams opened per connection (``slow_headers``/``slow_post``).
    streams: int = 16
    #: Control-frame (or open+reset pair) rate for the flood kinds.
    rate_per_s: float = 50.0
    #: Inter-action gap: stream-open spacing (``slow_headers``), body
    #: trickle cadence (``slow_post``), re-dial sweep (``slow_preamble``).
    pace_s: float = 1.0
    #: Path the stream-opening kinds request.
    target_path: str = "/"

    def validate(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind {self.kind!r} "
                             f"(expected one of {ATTACK_KINDS})")
        if self.start_s < 0:
            raise ValueError(f"{self.kind}: start_s must be >= 0, "
                             f"got {self.start_s}")
        if self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be > 0, "
                             f"got {self.duration_s}")
        if self.connections < 1:
            raise ValueError(f"{self.kind}: connections must be >= 1, "
                             f"got {self.connections}")
        if self.streams < 1:
            raise ValueError(f"{self.kind}: streams must be >= 1, "
                             f"got {self.streams}")
        if self.rate_per_s <= 0:
            raise ValueError(f"{self.kind}: rate_per_s must be > 0, "
                             f"got {self.rate_per_s}")
        if self.pace_s <= 0:
            raise ValueError(f"{self.kind}: pace_s must be > 0, "
                             f"got {self.pace_s}")
        if not self.target_path:
            raise ValueError(f"{self.kind}: target_path must be non-empty")

    @property
    def ends_at_s(self) -> float:
        return self.start_s + self.duration_s

    def to_jsonable(self) -> dict:
        return {"kind": self.kind, "start_s": self.start_s,
                "duration_s": self.duration_s,
                "connections": self.connections, "streams": self.streams,
                "rate_per_s": self.rate_per_s, "pace_s": self.pace_s,
                "target_path": self.target_path}

    @classmethod
    def from_jsonable(cls, data: dict) -> "AttackSpec":
        spec = cls(kind=data["kind"],
                   start_s=float(data.get("start_s", 0.0)),
                   duration_s=float(data.get("duration_s", 30.0)),
                   connections=int(data.get("connections", 1)),
                   streams=int(data.get("streams", 16)),
                   rate_per_s=float(data.get("rate_per_s", 50.0)),
                   pace_s=float(data.get("pace_s", 1.0)),
                   target_path=str(data.get("target_path", "/")))
        spec.validate()
        return spec

    @classmethod
    def coerce(cls, value: Any) -> Optional["AttackSpec"]:
        """Accept a spec, its JSON-able dict form, or None."""
        if value is None:
            return None
        if isinstance(value, AttackSpec):
            value.validate()
            return value
        if isinstance(value, dict):
            return cls.from_jsonable(value)
        raise TypeError(f"cannot build an AttackSpec from "
                        f"{type(value).__name__}")

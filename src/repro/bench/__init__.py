"""The benchmark trajectory layer (``repro bench``).

Speed claims in this repository are backed by machine-readable
snapshots, not prose: ``repro bench`` runs a fixed suite of seeded
workloads over the hot path (simulator event heap, packet/trace churn,
TCP reassembly, HPACK, a full attacked session), measures each one, and
writes one schema-versioned ``BENCH_<topic>.json`` per topic.  CI and
humans diff trajectories with ``repro bench --compare OLD NEW``.

Layout
------
``workloads``  the fixed, seeded workload suite (no wall-clock reads);
``measure``    the *only* module allowed to read the wall clock;
``snapshot``   the ``BENCH_<topic>.json`` schema and I/O;
``compare``    per-topic deltas and the regression-threshold policy;
``cli``        the ``repro bench`` subcommand.

See docs/BENCHMARKS.md for the schema, the threshold policy and the
performance playbook recording every optimization with its measured
before/after numbers.
"""

from repro.bench.compare import TIME_METRICS, compare_snapshots
from repro.bench.measure import Measurement, measure
from repro.bench.snapshot import SCHEMA_VERSION, BenchSnapshot
from repro.bench.workloads import SCALES, Scale, Workload, scale_by_name, workloads

__all__ = [
    "BenchSnapshot",
    "Measurement",
    "SCALES",
    "SCHEMA_VERSION",
    "Scale",
    "TIME_METRICS",
    "Workload",
    "compare_snapshots",
    "measure",
    "scale_by_name",
    "workloads",
]

"""The ``repro bench`` subcommand.

Two modes:

* ``repro bench [--topics a,b] [--scale full|smoke] [--repeats N]
  [--out-dir DIR]`` -- run the suite and write one
  ``BENCH_<topic>.json`` per topic (default: the current directory,
  i.e. the repository root when run from a checkout);
* ``repro bench --compare OLD NEW [--threshold F] [--advisory-time]``
  -- diff two snapshot sets (directories or single files) and exit
  nonzero on regression, so CI can gate on the trajectory.

Exit codes: 0 clean, 1 regression/failed run, 2 usage error.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.bench.compare import (DEFAULT_THRESHOLD, CompareUsageError,
                                 compare_snapshots, render_table)
from repro.bench.measure import environment, measure
from repro.bench.snapshot import BenchSnapshot, SnapshotError, load_location
from repro.bench.workloads import scale_by_name, workloads


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topics", default=None, metavar="A,B,...",
                        help="comma-separated topic subset "
                             "(default: the whole suite)")
    parser.add_argument("--scale", default="full",
                        help="workload scale: full (committed baseline) "
                             "or smoke (reduced local/CI suite)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per topic, best kept (default 3)")
    parser.add_argument("--out-dir", default=".", metavar="DIR",
                        help="where BENCH_<topic>.json files are written "
                             "(default: current directory)")
    parser.add_argument("--list", action="store_true", dest="list_topics",
                        help="list suite topics and exit")
    parser.add_argument("--compare", nargs=2, default=None,
                        metavar=("OLD", "NEW"),
                        help="diff two snapshot sets (directories or "
                             "files) instead of running workloads")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed events-per-second regression as a "
                             f"fraction (default {DEFAULT_THRESHOLD})")
    parser.add_argument("--advisory-time", action="store_true",
                        help="report time-metric regressions without "
                             "failing (counts stay strict); for diffs "
                             "across machines")


def run_bench_command(args: argparse.Namespace) -> int:
    if args.list_topics:
        for workload in workloads():
            print(f"{workload.topic:<16} v{workload.version}  "
                  f"{workload.description}")
        return 0
    if args.compare is not None:
        return _run_compare(args)
    return _run_suite(args)


def _run_compare(args: argparse.Namespace) -> int:
    old_path, new_path = args.compare
    try:
        old = load_location(old_path)
        new = load_location(new_path)
        deltas, problems, exit_code = compare_snapshots(
            old, new, threshold=args.threshold,
            advisory_time=args.advisory_time)
    except (SnapshotError, CompareUsageError) as exc:
        print(f"bench: {exc}")
        return 2
    print(render_table(deltas))
    for problem in problems:
        print(f"bench: {problem}")
    print(f"bench: compare {'clean' if exit_code == 0 else 'FAILED'} "
          f"({len(old)} topics old, {len(new)} new, "
          f"threshold -{args.threshold:.0%})")
    return exit_code


def _run_suite(args: argparse.Namespace) -> int:
    try:
        scale = scale_by_name(args.scale)
    except ValueError as exc:
        print(f"bench: {exc}")
        return 2
    suite = workloads()
    if args.topics is not None:
        wanted = [t.strip() for t in args.topics.split(",") if t.strip()]
        known = {w.topic for w in suite}
        unknown = [t for t in wanted if t not in known]
        if unknown or not wanted:
            print(f"bench: unknown topics {', '.join(unknown) or '(none)'}"
                  f"; known: {', '.join(sorted(known))}")
            return 2
        suite = tuple(w for w in suite if w.topic in wanted)
    if args.repeats < 1:
        print("bench: --repeats must be >= 1")
        return 2

    env = environment()
    written: List[str] = []
    print(f"{'topic':<16} {'events':>12} {'wall_ms':>10} "
          f"{'events/s':>12} {'peak_kb':>10}")
    for workload in suite:
        measurement = measure(lambda w=workload: w.run(scale),
                              repeats=args.repeats)
        snap = BenchSnapshot.from_measurement(
            workload.topic, workload.version, scale.name, measurement,
            environment=env)
        path = snap.write(args.out_dir)
        written.append(path)
        print(f"{workload.topic:<16} {measurement.events:>12} "
              f"{measurement.wall_time_s * 1e3:>10.1f} "
              f"{measurement.events_per_second:>12.0f} "
              f"{measurement.peak_tracemalloc_kb:>10.0f}")
    print(f"bench: wrote {len(written)} snapshot(s) "
          f"[scale={scale.name}, repeats={args.repeats}] to {args.out_dir}")
    return 0

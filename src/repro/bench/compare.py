"""Trajectory diffing: per-topic deltas and the regression policy.

Policy (documented in docs/BENCHMARKS.md):

* **Count metrics are strict.**  ``events`` must be byte-identical
  between snapshots of the same workload version and scale; any drift
  means the workload's semantics changed and the trajectory has to be
  re-baselined deliberately.  A mismatch is always a failure.
* **Time metrics are thresholded.**  ``events_per_second`` may regress
  by up to ``threshold`` (default 25%) before the comparison fails --
  wall time on shared CI machines is noisy.  ``--advisory-time``
  downgrades time regressions to warnings for environments (cross-host
  diffs) where timing is not comparable at all.
* **Memory metrics are advisory.**  Peak traced memory, allocation
  counts and RSS are printed, never gated on: allocator and platform
  details leak into them.
* Scale or workload-version mismatches are usage errors (exit 2), not
  regressions: the numbers are not comparable in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.snapshot import BenchSnapshot

#: Metric names gated by the threshold (higher is better).
TIME_METRICS = ("events_per_second",)
#: Metric names printed for trend watching, never gated.
ADVISORY_METRICS = ("wall_time_s", "peak_tracemalloc_kb",
                    "allocated_blocks", "peak_rss_kb")

#: Default allowed events-per-second regression (fraction).
DEFAULT_THRESHOLD = 0.25


class CompareUsageError(ValueError):
    """Snapshots that cannot be meaningfully compared (exit code 2)."""


@dataclass(frozen=True)
class Delta:
    """One metric's movement between two snapshots of a topic."""

    topic: str
    metric: str
    old: float
    new: float
    #: Fractional change, positive = metric increased.
    change: float
    #: "ok" | "improved" | "regressed" | "advisory" | "count-mismatch"
    status: str


def _change(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old


def compare_snapshots(old: Dict[str, BenchSnapshot],
                      new: Dict[str, BenchSnapshot],
                      threshold: float = DEFAULT_THRESHOLD,
                      advisory_time: bool = False,
                      ) -> Tuple[List[Delta], List[str], int]:
    """Diff two snapshot sets.

    Returns ``(deltas, problems, exit_code)`` where ``problems`` is the
    list of human-readable failure lines and ``exit_code`` is 0 (clean),
    1 (regression), raising :class:`CompareUsageError` for incomparable
    inputs.  Topics present on only one side are reported: missing from
    ``new`` is a regression (a topic silently dropped from the suite),
    new-only topics are informational.
    """
    if not 0.0 <= threshold < 1.0:
        raise CompareUsageError(f"threshold must be in [0, 1), "
                                f"got {threshold}")
    deltas: List[Delta] = []
    problems: List[str] = []
    exit_code = 0

    for topic in sorted(old):
        if topic not in new:
            problems.append(f"{topic}: missing from NEW snapshot set")
            exit_code = 1
            continue
        a, b = old[topic], new[topic]
        if a.workload_version != b.workload_version:
            raise CompareUsageError(
                f"{topic}: workload_version {a.workload_version} vs "
                f"{b.workload_version}; trajectories across workload "
                "changes are not comparable (re-baseline instead)")
        if a.scale != b.scale:
            raise CompareUsageError(
                f"{topic}: scale {a.scale!r} vs {b.scale!r}; run both "
                "sides at the same --scale")

        old_events = a.metrics.get("events", 0)
        new_events = b.metrics.get("events", 0)
        if old_events != new_events:
            deltas.append(Delta(topic, "events", old_events, new_events,
                                _change(old_events, new_events),
                                "count-mismatch"))
            problems.append(
                f"{topic}: events {old_events:.0f} -> {new_events:.0f}; "
                "deterministic counts must not drift (strict)")
            exit_code = 1
        else:
            deltas.append(Delta(topic, "events", old_events, new_events,
                                0.0, "ok"))

        for metric in TIME_METRICS:
            if metric not in a.metrics or metric not in b.metrics:
                continue
            o, n = a.metrics[metric], b.metrics[metric]
            change = _change(o, n)
            if change < -threshold:
                status = "advisory" if advisory_time else "regressed"
                deltas.append(Delta(topic, metric, o, n, change, status))
                line = (f"{topic}: {metric} {o:.0f} -> {n:.0f} "
                        f"({change:+.1%}, threshold -{threshold:.0%})")
                if advisory_time:
                    problems.append(f"advisory: {line}")
                else:
                    problems.append(line)
                    exit_code = 1
            else:
                status = "improved" if change > threshold else "ok"
                deltas.append(Delta(topic, metric, o, n, change, status))

        for metric in ADVISORY_METRICS:
            if metric not in a.metrics or metric not in b.metrics:
                continue
            o, n = a.metrics[metric], b.metrics[metric]
            deltas.append(Delta(topic, metric, o, n, _change(o, n),
                                "advisory"))

        # Workload-specific aux metrics (e.g. runner_dispatch's per-cell
        # overheads) shared by both sides: advisory, like memory -- the
        # policy gates only on the named strict/time metrics above.
        handled = {"events", "repeats", *TIME_METRICS, *ADVISORY_METRICS}
        for metric in sorted(set(a.metrics) & set(b.metrics) - handled):
            o, n = a.metrics[metric], b.metrics[metric]
            deltas.append(Delta(topic, metric, o, n, _change(o, n),
                                "advisory"))

    return deltas, problems, exit_code


def render_table(deltas: List[Delta]) -> str:
    """Fixed-width delta table, one line per (topic, metric)."""
    lines = [f"{'topic':<16} {'metric':<22} {'old':>14} {'new':>14} "
             f"{'change':>9}  status"]
    for delta in deltas:
        change = ("     --" if delta.change == 0.0
                  else f"{delta.change:+.1%}")
        lines.append(f"{delta.topic:<16} {delta.metric:<22} "
                     f"{delta.old:>14.2f} {delta.new:>14.2f} "
                     f"{change:>9}  {delta.status}")
    return "\n".join(lines)

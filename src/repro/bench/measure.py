"""Measurement harness -- the only bench module that reads the clock.

Wall-clock reads are banned inside simulation code (lint rule DET002);
this module is on the explicit allowlist, exactly like the runner's
telemetry.  Keep every ``perf_counter``/timestamp call here so the
allowlist stays one module wide.

Two passes per workload:

* a **timed** pass -- ``repeats`` runs, best (minimum) wall time kept,
  with a ``gc.collect()`` before each run so collector debt from the
  previous run is not billed to this one;
* an **allocation** pass -- one run under :mod:`tracemalloc` for the
  peak traced memory, plus the net ``sys.getallocatedblocks`` delta.

The deterministic event count must agree across every run; a mismatch
means the workload broke its own determinism contract and is raised
immediately rather than written into a snapshot.
"""

from __future__ import annotations

import gc
import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Measurement:
    """Everything measured about one workload run."""

    events: int
    wall_time_s: float
    events_per_second: float
    peak_tracemalloc_kb: float
    allocated_blocks: int
    peak_rss_kb: float
    repeats: int
    #: Workload-reported auxiliary metrics (e.g. per-cell dispatch
    #: overhead), best (minimum) value per key across the timed
    #: repeats.  Merged into the snapshot's metrics; compare treats
    #: them as advisory.
    aux: Dict[str, float] = field(default_factory=dict)


def _split(outcome) -> "tuple":
    """A workload returns its event count, optionally with an aux
    metrics dict: ``int`` or ``(int, {name: float})``."""
    if isinstance(outcome, tuple):
        count, aux = outcome
        return int(count), dict(aux)
    return int(outcome), {}


def measure(run: Callable[[], int], repeats: int = 3) -> Measurement:
    """Measure ``run`` (a zero-arg workload closure returning its event
    count); best-of-``repeats`` wall time, one allocation pass."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    best = float("inf")
    events = None
    aux: Dict[str, float] = {}
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        count, run_aux = _split(run())
        elapsed = time.perf_counter() - start
        if events is None:
            events = count
        elif count != events:
            raise RuntimeError(
                f"non-deterministic workload: {count} events vs {events} "
                "on an earlier repeat")
        for name, value in run_aux.items():
            aux[name] = min(aux.get(name, float("inf")), float(value))
        best = min(best, elapsed)
    assert events is not None

    gc.collect()
    blocks_before = sys.getallocatedblocks()
    tracemalloc.start()
    try:
        alloc_count, _ = _split(run())
        _, peak_traced = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    blocks_after = sys.getallocatedblocks()
    if alloc_count != events:
        raise RuntimeError(
            f"non-deterministic workload: {alloc_count} events under "
            f"tracemalloc vs {events} timed")

    peak_rss_kb = 0.0
    if resource is not None:
        # ru_maxrss is the process high-water mark (kilobytes on Linux):
        # monotone across topics, so only the first topic's value is
        # attributable; recorded for trend watching, never gated on.
        peak_rss_kb = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

    return Measurement(
        events=events,
        wall_time_s=best,
        events_per_second=events / best if best > 0 else 0.0,
        peak_tracemalloc_kb=peak_traced / 1024.0,
        allocated_blocks=max(0, blocks_after - blocks_before),
        peak_rss_kb=peak_rss_kb,
        repeats=repeats,
        aux=aux,
    )


def environment() -> Dict[str, str]:
    """Provenance recorded into snapshots (informational only; compare
    never gates on these fields)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }

"""``BENCH_<topic>.json``: the schema-versioned snapshot format.

One file per topic at the repository root is the committed baseline of
the performance trajectory.  The schema is versioned independently of
the workloads: ``schema_version`` covers the *file shape*,
``workload_version`` covers the *meaning of the numbers* (compare
refuses to diff across either).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.measure import Measurement

#: Bump when the JSON shape below changes incompatibly.
SCHEMA_VERSION = 1

#: File name pattern for snapshots.
FILE_PREFIX = "BENCH_"


class SnapshotError(ValueError):
    """A snapshot file that cannot be interpreted."""


@dataclass
class BenchSnapshot:
    """The parsed (or to-be-written) contents of one ``BENCH_*.json``."""

    topic: str
    workload_version: int
    scale: str
    metrics: Dict[str, float]
    environment: Dict[str, str] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_measurement(cls, topic: str, workload_version: int, scale: str,
                         measurement: Measurement,
                         environment: Optional[Dict[str, str]] = None,
                         ) -> "BenchSnapshot":
        metrics = {
            "events": measurement.events,
            "wall_time_s": measurement.wall_time_s,
            "events_per_second": measurement.events_per_second,
            "peak_tracemalloc_kb": measurement.peak_tracemalloc_kb,
            "allocated_blocks": measurement.allocated_blocks,
            "peak_rss_kb": measurement.peak_rss_kb,
            "repeats": measurement.repeats,
        }
        # Workload-reported aux metrics (fixed names above win on
        # collision); compare treats names it does not know as advisory.
        for name, value in sorted(measurement.aux.items()):
            metrics.setdefault(name, value)
        return cls(
            topic=topic,
            workload_version=workload_version,
            scale=scale,
            metrics=metrics,
            environment=dict(environment or {}),
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "topic": self.topic,
            "workload_version": self.workload_version,
            "scale": self.scale,
            "metrics": dict(self.metrics),
            "environment": dict(self.environment),
        }

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "BenchSnapshot":
        if not isinstance(data, dict):
            raise SnapshotError(f"{source}: snapshot must be a JSON object")
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SnapshotError(
                f"{source}: unsupported schema_version {version!r} "
                f"(this build reads {SCHEMA_VERSION})")
        try:
            topic = data["topic"]
            workload_version = int(data["workload_version"])
            scale = data["scale"]
            metrics = data["metrics"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"{source}: malformed snapshot: {exc}")
        if not isinstance(topic, str) or not topic:
            raise SnapshotError(f"{source}: topic must be a non-empty string")
        if not isinstance(metrics, dict) or "events" not in metrics \
                or "events_per_second" not in metrics:
            raise SnapshotError(
                f"{source}: metrics must include at least 'events' and "
                "'events_per_second'")
        environment = data.get("environment") or {}
        if not isinstance(environment, dict):
            raise SnapshotError(f"{source}: environment must be an object")
        return cls(topic=topic, workload_version=workload_version,
                   scale=str(scale), metrics=dict(metrics),
                   environment=dict(environment))

    def write(self, directory: str) -> str:
        """Write ``BENCH_<topic>.json`` into ``directory``; returns path."""
        os.makedirs(directory, exist_ok=True)
        path = snapshot_path(directory, self.topic)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path: str) -> "BenchSnapshot":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SnapshotError(f"{path}: unreadable snapshot: {exc}")
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}: invalid JSON: {exc}")
        return cls.from_dict(data, source=path)


def snapshot_path(directory: str, topic: str) -> str:
    return os.path.join(directory, f"{FILE_PREFIX}{topic}.json")


def load_location(path: str) -> Dict[str, BenchSnapshot]:
    """Load snapshots from a directory (every ``BENCH_*.json`` in it) or
    from a single snapshot file.  Returns ``{topic: snapshot}``."""
    snapshots: Dict[str, BenchSnapshot] = {}
    if os.path.isdir(path):
        names: List[str] = sorted(
            n for n in os.listdir(path)
            if n.startswith(FILE_PREFIX) and n.endswith(".json"))
        if not names:
            raise SnapshotError(f"{path}: no {FILE_PREFIX}*.json files")
        for name in names:
            snap = BenchSnapshot.read(os.path.join(path, name))
            snapshots[snap.topic] = snap
        return snapshots
    snap = BenchSnapshot.read(path)
    snapshots[snap.topic] = snap
    return snapshots

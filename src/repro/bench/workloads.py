"""The fixed, seeded workload suite behind ``repro bench``.

Every workload is a pure function of its :class:`Scale`: it builds its
own seeded state, runs a deterministic amount of work, and returns the
number of *events* it processed (the unit each topic's events-per-second
metric is expressed in).  The returned count must be byte-identical
across processes and platforms -- ``repro bench --compare`` enforces
that strictly, so a change in a count is a semantic change to the hot
path and has to be re-baselined deliberately.

No workload reads the wall clock (that is :mod:`repro.bench.measure`'s
job) and none touches ambient state: the linter's DET/CACHE families
apply here exactly as they do to experiment cells.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

#: Bump a workload's ``version`` whenever its definition changes shape
#: (different op mix, different seeds, different scale fields): compare
#: refuses to diff snapshots across workload versions rather than
#: reporting a bogus regression.
_SEED = 20260807


@dataclass(frozen=True)
class Scale:
    """Knobs sizing one run of the suite.  ``full`` is the committed
    baseline scale; ``smoke`` is a reduced suite for quick local runs."""

    name: str
    heap_events: int
    trace_packets: int
    stream_bytes: int
    hpack_blocks: int
    session_loads: int
    lint_passes: int
    taint_passes: int
    dispatch_cells: int
    dos_probe_events: int


SCALES: Tuple[Scale, ...] = (
    Scale(name="full", heap_events=300_000, trace_packets=60_000,
          stream_bytes=80_000_000, hpack_blocks=6_000, session_loads=2,
          lint_passes=2, taint_passes=2, dispatch_cells=24,
          dos_probe_events=300_000),
    Scale(name="smoke", heap_events=60_000, trace_packets=12_000,
          stream_bytes=12_000_000, hpack_blocks=1_200, session_loads=1,
          lint_passes=1, taint_passes=1, dispatch_cells=8,
          dos_probe_events=60_000),
)


def scale_by_name(name: str) -> Scale:
    """Resolve a scale name; raises ``ValueError`` on unknown names."""
    for scale in SCALES:
        if scale.name == name:
            return scale
    raise ValueError(f"unknown scale {name!r}; "
                     f"choose from {', '.join(s.name for s in SCALES)}")


@dataclass(frozen=True)
class Workload:
    """One benchmark topic: a name, a version, and its runner."""

    topic: str
    version: int
    description: str
    run: Callable[[Scale], int]


# -- event_heap: the simulator's scheduling core ---------------------------

def _noop() -> None:
    return None


def _run_event_heap(scale: Scale) -> int:
    """Self-rescheduling timers churning the event heap.

    Each tick schedules its successor *and* a decoy event it immediately
    cancels, so the heap sees the schedule/cancel/pop mix a real session
    produces (RTO timers are armed and disarmed constantly).
    """
    from repro.simnet.engine import Simulator

    sim = Simulator(seed=_SEED)
    rng = sim.rng("bench-heap")

    def tick() -> None:
        decoy = sim.schedule(5.0, _noop)
        decoy.cancel()
        sim.schedule(0.001 + rng.random() * 0.01, tick)

    for _ in range(64):
        sim.schedule(rng.random() * 0.01, tick)
    sim.run(max_events=scale.heap_events)
    return sim.processed_events


# -- packet_trace: per-packet object churn + capture -----------------------

def _run_packet_trace(scale: Scale) -> int:
    """The middlebox transit cost: build packets carrying TLS record
    slices, derive their wire views, and capture them in a
    :class:`~repro.simnet.trace.TraceRecorder`, then run the trace's
    record reassembly and retransmission queries the adversary runs.
    """
    from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT
    from repro.simnet.packet import HEADER_OVERHEAD, Packet
    from repro.simnet.trace import TraceRecorder
    from repro.tcp.segment import RecordSlice, TcpSegment
    from repro.tls.record import APPLICATION_DATA, TlsRecord

    rng = random.Random(_SEED)
    recorder = TraceRecorder()
    mss = 1370
    record: Optional[TlsRecord] = None
    rec_offset = 0
    seq = 0
    now = 0.0
    sizes = (220, 900, 1380, 4200, 16000, 48000)
    for i in range(scale.trace_packets):
        now += 0.0002
        if i % 11 == 10:
            # A client-side pure ACK (no payload, no records).
            ack_seg = TcpSegment(src="client", dst="server", src_port=40001,
                                 dst_port=443, seq=0, ack_no=seq,
                                 payload_len=0)
            packet = Packet(src="client", dst="server",
                            size=HEADER_OVERHEAD, segment=ack_seg,
                            created_at=now)
            recorder(now, CLIENT_TO_SERVER, packet.wire_view(), False)
            continue
        if record is None or rec_offset >= record.wire_len:
            record = TlsRecord(content_type=APPLICATION_DATA,
                               payload_len=rng.choice(sizes))
            rec_offset = 0
        length = min(mss, record.wire_len - rec_offset)
        slices = (RecordSlice(record=record, offset=rec_offset,
                              length=length),)
        rec_offset += length
        retx = 1 if i % 97 == 96 else 0
        seg = TcpSegment(src="server", dst="client", src_port=443,
                         dst_port=40001, seq=seq, ack_no=0,
                         payload_len=length, slices=slices,
                         retx_count=retx)
        seq += length
        packet = Packet(src="server", dst="client",
                        size=length + HEADER_OVERHEAD, segment=seg,
                        created_at=now)
        recorder(now, SERVER_TO_CLIENT, packet.wire_view(),
                 i % 211 == 210)
    completed = recorder.completed_records(SERVER_TO_CLIENT)
    retx_packets = recorder.retransmitted_packets(SERVER_TO_CLIENT)
    app = recorder.application_packets(SERVER_TO_CLIENT)
    return scale.trace_packets + len(completed) + len(retx_packets) + len(app)


# -- tcp_reassembly: send-side slicing + receive-side reordering ------------

def _run_tcp_reassembly(scale: Scale) -> int:
    """Drive :class:`SendBuffer`/:class:`ReceiveBuffer` with the segment
    mix of a lossy link: mostly in-order, with held-back (out-of-order)
    spans, duplicate re-deliveries, and periodic ACK releases.
    """
    from repro.tcp.buffer import ReceiveBuffer, SendBuffer
    from repro.tls.record import APPLICATION_DATA, TlsRecord

    rng = random.Random(_SEED + 1)
    send = SendBuffer()
    delivered = [0]

    def deliver(slices, dup) -> None:
        delivered[0] += len(slices)

    recv = ReceiveBuffer(deliver, deliver_duplicates=True)
    mss = 1370
    sizes = (800, 1370, 2740, 9000, 32000)
    written = 0
    while written < scale.stream_bytes:
        record = TlsRecord(content_type=APPLICATION_DATA,
                           payload_len=rng.choice(sizes))
        send.write(record)
        written += record.wire_len

    segments = 0
    seq = 0
    held = []
    total = send.total_written
    while seq < total or held:
        if held and (seq >= total or rng.random() < 0.4):
            h_seq, h_len, h_slices = held.pop(0 if rng.random() < 0.5
                                              else -1)
            recv.on_segment(h_seq, h_len, h_slices)
            segments += 1
            continue
        length = min(mss, total - seq)
        slices = send.slice_stream(seq, length)
        roll = rng.random()
        if roll < 0.05 and len(held) < 8:
            held.append((seq, length, slices))
        elif roll < 0.08:
            recv.on_segment(seq, length, slices)
            recv.on_segment(seq, length, slices)  # duplicate delivery
            segments += 1
        else:
            recv.on_segment(seq, length, slices)
        segments += 1
        seq += length
        if segments % 64 == 0:
            send.release(recv.rcv_nxt)
    send.release(recv.rcv_nxt)
    return segments + delivered[0]


# -- hpack: header compression on both ends --------------------------------

def _run_hpack(scale: Scale) -> int:
    """Encode and decode realistic request/response header blocks
    through a stateful encoder/decoder pair (dynamic-table churn
    included: cookies and paths recur, sizes force evictions)."""
    from repro.http2.hpack import HpackDecoder, HpackEncoder

    rng = random.Random(_SEED + 2)
    encoder = HpackEncoder()
    decoder = HpackDecoder()
    paths = tuple(f"/assets/obj_{i:03d}.bin" for i in range(48))
    cookies = tuple(f"session={i:032d}" for i in range(12))
    agents = ("Mozilla/5.0 (X11; Linux x86_64) repro-bench/1.0",
              "Mozilla/5.0 (Macintosh) repro-bench/1.0")
    ops = 0
    for i in range(scale.hpack_blocks):
        if i % 2 == 0:
            headers = sorted({
                ":method": "GET",
                ":path": rng.choice(paths),
                ":scheme": "https",
                ":authority": "bench.example",
                "user-agent": rng.choice(agents),
                "accept": "*/*",
                "cookie": rng.choice(cookies),
            }.items())
        else:
            headers = sorted({
                ":status": "200",
                "content-type": "application/octet-stream",
                "content-length": str(rng.randrange(100, 1 << 20)),
                "server": "repro-h2",
                "cache-control": "max-age=3600",
            }.items())
        _, tokens = encoder.encode(headers)
        decoded = decoder.decode(tokens)
        ops += len(headers) + len(decoded)
    return ops


# -- lint: the whole-program analyzer over its own source -------------------

def _run_lint(scale: Scale) -> int:
    """A full analyzer pass over the installed ``repro`` package (the
    self-check workload), plus an explicit sweep of the flow-sensitive
    core: build every function's CFG and solve dominators and reaching
    definitions on it.  The event count is files + findings + blocks +
    solved facts -- a pure function of the committed source tree, so
    any drift in it means the analyzer or the tree changed shape.
    """
    from repro.lint.cfg import build_cfg
    from repro.lint.cli import package_root
    from repro.lint.dataflow import dominators, reaching_definitions
    from repro.lint.engine import build_project, lint_paths, load_contexts

    root = package_root()
    events = 0
    for _ in range(scale.lint_passes):
        report = lint_paths([root])
        events += report.files_checked + len(report.findings)
        project = build_project(load_contexts([root]))
        for key in sorted(project.functions):
            fn = project.functions[key]
            cfg = build_cfg(fn.node)
            events += len(cfg.blocks)
            events += sum(len(doms) for doms
                          in dominators(cfg).values())
            events += len(reaching_definitions(cfg, fn.node))
    return events


# -- taint: the interprocedural LEAK pass over the package ------------------

def _run_taint(scale: Scale) -> int:
    """The full interprocedural taint pass (every LEAK rule) over the
    installed ``repro`` package: summary fixpoints over the adversary
    and defense call graphs plus the tap-passivity sweep.  The event
    count is analyzed functions + summary rounds' worth of flow facts +
    findings -- a pure function of the committed tree, so drift means
    the analyzer or the boundary changed shape.
    """
    from repro.lint.cli import package_root
    from repro.lint.engine import build_project, load_contexts
    from repro.lint.taint import (LEAK_SPECS, _relevant_functions,
                                  _sink_functions, check_taint)

    root = package_root()
    events = 0
    for _ in range(scale.taint_passes):
        project = build_project(load_contexts([root]))
        findings = check_taint(
            project, {spec.code for spec in LEAK_SPECS} | {"LEAK003"})
        events += len(findings)
        for spec in LEAK_SPECS:
            sinks = _sink_functions(project, spec)
            events += len(sinks)
            events += len(_relevant_functions(project, sinks))
        events += sum(len(finding.trace) for finding in findings)
    return events


# -- runner_dispatch: per-cell overhead of the two pool architectures -------

def _dispatch_cell(seed: int) -> dict:
    """A near-empty grid cell: whatever time its run takes is dispatch
    overhead, which is exactly what this workload measures."""
    return {"value": seed % 7, "processed_events": 1, "sim_time_s": 0.0}


def _run_runner_dispatch(scale: Scale):
    """Fork-per-cell vs persistent-worker dispatch overhead.

    The same trivial grid runs through both process-backed dispatchers
    sequentially (one cell in flight at a time), so the difference in
    ``elapsed_s - sum(cell wall time)`` is purely the cost of getting a
    cell to a worker and its result back: process creation per cell for
    the old pool, one pipe round-trip for the persistent pool.  The
    aux metrics record each architecture's per-cell overhead; the
    event count stays a pure function of the specs.
    """
    from repro.experiments.runner import RunCache, RunSpec, run_grid

    specs = [RunSpec.make("repro.bench.workloads:_dispatch_cell", seed)
             for seed in range(scale.dispatch_cells)]
    # timeout_s forces process isolation at jobs=1: one fresh process
    # per cell, serialized -- the pre-persistent-pool architecture.
    forked = run_grid(specs, jobs=1, timeout_s=120.0,
                      cache=RunCache.disabled())
    pooled = run_grid(specs, workers=1, cache=RunCache.disabled())

    events = 0
    for grid in (forked, pooled):
        events += sum(m["value"] + m["processed_events"]
                      for m in grid.metrics())
    cells = float(len(specs))
    aux = {
        "fork_dispatch_s_per_cell":
            max(0.0, forked.elapsed_s - forked.wall_time_s) / cells,
        "worker_dispatch_s_per_cell":
            max(0.0, pooled.elapsed_s - pooled.wall_time_s) / cells,
    }
    return events, aux


# -- dos_detector: per-probe-event overhead of the DoS classifier -----------

class _BenchClock:
    """Minimal ``.now`` clock the detector samples (no simulator)."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class _BenchTcpConn:
    """Identity-keyed stand-in for a server-side TCP connection."""

    __slots__ = ()


class _BenchH2Conn:
    """Stand-in exposing the ``h2_conn.tls.conn`` chain the frame tap
    walks to key its per-connection tracks."""

    __slots__ = ("tls",)

    class _Tls:
        __slots__ = ("conn",)

        def __init__(self, conn) -> None:
            self.conn = conn

    def __init__(self, conn) -> None:
        self.tls = self._Tls(conn)


def _run_dos_detector(scale: Scale) -> int:
    """Feed the DoS detector a seeded probe-event stream shaped like a
    mixed attack/legitimate server: per-event cost of the taps is the
    whole measurement (the detector is on the hot probe path of every
    hardened run).  A handful of connections stay preamble-silent and
    others dangle request streams, trickle bodies, and flood control
    frames, so every rule -- inline rates and periodic sweeps --
    executes at realistic ratios.
    """
    from repro.http2 import frames as fr
    from repro.invariants.dos_detector import DosDetector

    rng = random.Random(_SEED + 3)
    clock = _BenchClock()
    detector = DosDetector(clock)
    tcp_conns = [_BenchTcpConn() for _ in range(32)]
    h2_conns = [_BenchH2Conn(conn) for conn in tcp_conns]
    greeted = [False] * len(tcp_conns)
    next_stream = [1] * len(tcp_conns)
    open_streams: list = [[] for _ in tcp_conns]

    for i in range(scale.dos_probe_events):
        clock.now += 0.0004
        index = rng.randrange(len(tcp_conns))
        if index < 4:
            # Preamble-silent connections: TCP liveness, no frames.
            detector.on_segment(tcp_conns[index], "recv", None)
            continue
        h2 = h2_conns[index]
        if not greeted[index]:
            greeted[index] = True
            detector.on_frame(h2, "recv", fr.SettingsFrame(
                settings={1: 4096}), False)
            continue
        roll = rng.random()
        if roll < 0.15:
            detector.on_segment(tcp_conns[index], "recv", None)
        elif roll < 0.35:
            stream_id = next_stream[index]
            next_stream[index] += 2
            open_streams[index].append(stream_id)
            detector.on_frame(h2, "recv", fr.HeadersFrame(
                stream_id=stream_id, end_stream=rng.random() < 0.5), False)
        elif roll < 0.60 and open_streams[index]:
            stream_id = rng.choice(open_streams[index])
            detector.on_frame(h2, "recv", fr.DataFrame(
                stream_id=stream_id, length=rng.choice((1, 1, 40, 1200)),
                end_stream=rng.random() < 0.1), False)
        elif roll < 0.75:
            detector.on_frame(h2, "recv", fr.PingFrame(), False)
        elif roll < 0.85:
            detector.on_frame(h2, "recv", fr.SettingsFrame(
                settings={4: 65_535}), False)
        elif open_streams[index]:
            stream_id = open_streams[index].pop(0)
            detector.on_frame(h2, "recv", fr.RstStreamFrame(
                stream_id=stream_id), False)
        else:
            detector.on_frame(h2, "recv", fr.PingFrame(ack=True), False)
    detector.finalize(clock.now)
    return detector.events + len(detector.flags)


# -- session: the figure5-style macro workload ------------------------------

def _run_session(scale: Scale) -> int:
    """Full attacked sessions (browser + HTTP/2 + TCP + adversary
    pipeline), the macro workload every experiment multiplies."""
    from repro.core.phases import AttackConfig
    from repro.experiments.session import SessionConfig, run_session

    total = 0
    for seed in range(scale.session_loads):
        result = run_session(SessionConfig(seed=seed, attack=AttackConfig()))
        total += result.processed_events
    return total


def workloads() -> Tuple[Workload, ...]:
    """The suite, in its canonical run order."""
    return (
        Workload("event_heap", 1,
                 "simulator heap: schedule/cancel/pop timer churn",
                 _run_event_heap),
        Workload("packet_trace", 1,
                 "packet construction, wire views and trace capture",
                 _run_packet_trace),
        Workload("tcp_reassembly", 1,
                 "TCP send-buffer slicing + out-of-order reassembly",
                 _run_tcp_reassembly),
        Workload("hpack", 1,
                 "HPACK encode/decode with dynamic-table churn",
                 _run_hpack),
        Workload("lint", 1,
                 "whole-program analyzer self-check + CFG/dataflow sweep",
                 _run_lint),
        Workload("taint", 1,
                 "interprocedural LEAK taint pass over the package",
                 _run_taint),
        Workload("runner_dispatch", 1,
                 "fork-per-cell vs persistent-worker dispatch overhead",
                 _run_runner_dispatch),
        Workload("dos_detector", 1,
                 "DoS-detector probe taps over a mixed traffic stream",
                 _run_dos_detector),
        Workload("session", 1,
                 "full attacked page loads (figure5-style macro run)",
                 _run_session),
    )

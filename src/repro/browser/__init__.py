"""Browser model.

Executes :class:`~repro.website.sitemap.PageLoadPlan` scripts over an
HTTP/2 client with the behaviours the paper's attack depends on:
speculative parsing (embedded requests while the HTML is still
arriving), JS-triggered request bursts after the HTML completes, and a
stall detector that resets pending streams with ``RST_STREAM`` and
re-requests missing objects -- the reaction the targeted-drop phase of
the attack provokes.
"""

from repro.browser.browser import Browser, BrowserConfig, PageLoadResult, RequestEvent

__all__ = ["Browser", "BrowserConfig", "PageLoadResult", "RequestEvent"]

"""Page-load engine."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.http2.client import ClientStream, Http2Client
from repro.website.sitemap import PageLoadPlan, PlannedRequest


@dataclass
class BrowserConfig:
    """Client-side behaviour knobs (Firefox-like defaults)."""

    #: Stall window: the channel is considered dead when less than
    #: ``stall_min_bytes`` arrived over the last ``stall_timeout_s``
    #: while requests are outstanding; the browser then resets its
    #: pending streams (the Section IV-D behaviour -- a trickle of
    #: leaked retransmissions must not keep a dead-looking page alive).
    stall_timeout_s: float = 3.0
    #: Below ~8 KB/s the page is effectively dead: a trickle of leaked
    #: retransmissions through an 80 % drop burst must not count as
    #: progress, or the browser never resets and never re-requests.
    stall_min_bytes: int = 24_576
    stall_check_interval_s: float = 0.25
    #: Pause after a reset before re-requesting missing objects.
    reset_backoff_s: float = 0.5
    #: Gap between consecutive re-requests.
    rerequest_gap_s: float = 0.02
    #: Resets tolerated before declaring the load broken.
    max_resets: int = 3
    page_timeout_s: float = 30.0
    #: Fresh-connection attempts after the transport dies (GOAWAY or
    #: TCP teardown).  0 keeps the legacy behaviour -- a dead
    #: connection breaks the load immediately; fault-tolerant profiles
    #: enable a couple of retries.
    max_reconnects: int = 0
    #: First pause before redialling; doubles per attempt.
    reconnect_backoff_s: float = 0.25
    #: Ceiling on the reconnect backoff.
    reconnect_backoff_cap_s: float = 2.0


@dataclass
class RequestEvent:
    """One GET issued by the browser (ground truth for evaluation)."""

    time: float
    path: str
    stream_id: int
    is_rerequest: bool = False


@dataclass
class PageLoadResult:
    """Outcome of one page load."""

    success: bool
    broken: bool
    duration_s: float
    resets: int
    requests: List[RequestEvent]
    completed_paths: List[str]
    plan: PageLoadPlan
    #: Fresh connections dialled after transport failures.
    reconnects: int = 0

    @property
    def permutation(self):
        return self.plan.meta.get("permutation")


class Browser:
    """Drives one page load over one HTTP/2 connection."""

    def __init__(self, sim, client: Http2Client, plan: PageLoadPlan,
                 config: Optional[BrowserConfig] = None,
                 on_done: Optional[Callable[[PageLoadResult], None]] = None):
        self.sim = sim
        self.client = client
        self.plan = plan
        self.config = config or BrowserConfig()
        self.on_done = on_done

        self._needed: Set[str] = set(plan.uncached_paths())
        # Insertion-ordered dict as an ordered set: completion order is
        # part of the result (completed_paths) and membership tests run
        # on every stream completion.
        self._completed: Dict[str, None] = {}
        self._requests: List[RequestEvent] = []
        self._weights: Dict[str, int] = {r.path: r.weight
                                         for r in plan.all_requests()}
        self._resets = 0
        self._reconnects = 0
        self._reconnecting = False
        self._scripted_fired = False
        self._head_fired = False
        self._body_fired = False
        self._finished = False
        self._started_at = 0.0
        self._progress_history: Deque[Tuple[float, int]] = deque()
        self._stall_timer = None
        self._timeout_timer = None
        self.result: Optional[PageLoadResult] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin the load: connect, then run the plan."""
        self._started_at = self.sim.now
        self._timeout_timer = self.sim.schedule(self.config.page_timeout_s,
                                                self._on_page_timeout)
        self.client.connect(self._on_connected)

    def _on_connected(self) -> None:
        self.client.on_push = self._on_push
        self._schedule_phase(self.plan.initial, self._after_initial)
        self._stall_timer = self.sim.schedule(
            self.config.stall_check_interval_s, self._check_stalls)

    def _on_push(self, stream) -> None:
        """A server-pushed stream satisfies its path like a response."""
        stream.on_complete = self._on_stream_complete

    def _after_initial(self) -> None:
        self.sim.schedule(self.plan.html.gap_s, self._request_html)

    def _request_html(self) -> None:
        if self._finished:
            return
        self._issue(self.plan.html, html=True)
        # Preload hints fire with the document request, before any HTML
        # bytes arrive.
        self._schedule_phase(self.plan.preload)

    # -- request plumbing --------------------------------------------------------

    def _schedule_phase(self, requests: List[PlannedRequest],
                        after: Optional[Callable[[], None]] = None,
                        rerequest: bool = False) -> None:
        """Issue a phase's requests sequentially, honouring gaps."""
        pending = [r for r in requests if not r.cached]

        def issue_next(index: int) -> None:
            if self._finished:
                return
            if index >= len(pending):
                if after is not None:
                    after()
                return
            request = pending[index]
            self._issue(request, is_rerequest=rerequest)
            next_gap = (pending[index + 1].gap_s
                        if index + 1 < len(pending) else 0.0)
            self.sim.schedule(next_gap, issue_next, index + 1)

        if not pending:
            if after is not None:
                after()
            return
        self.sim.schedule(pending[0].gap_s, issue_next, 0)

    def _issue(self, request: PlannedRequest, html: bool = False,
               is_rerequest: bool = False) -> ClientStream:
        stream = self.client.request(
            request.path, weight=request.weight,
            on_complete=self._on_stream_complete)
        self._requests.append(RequestEvent(
            time=self.sim.now, path=request.path,
            stream_id=stream.stream_id, is_rerequest=is_rerequest))
        if html or request.path == self.plan.html.path:
            stream.on_first_byte = self._on_html_first_byte
            stream.on_progress = self._on_html_progress
        return stream

    # -- HTML-driven triggers ----------------------------------------------------

    def _on_html_first_byte(self, _stream: ClientStream) -> None:
        if not self._head_fired:
            self._head_fired = True
            self._schedule_phase(self.plan.head_resources)

    def _on_html_progress(self, stream: ClientStream) -> None:
        if self._body_fired or stream.content_length is None:
            return
        if stream.bytes_received * 2 >= stream.content_length:
            self._body_fired = True
            self._schedule_phase(self.plan.body_resources)

    def _on_stream_complete(self, stream: ClientStream) -> None:
        if self._finished:
            return
        if stream.path in self._needed and stream.path not in self._completed:
            self._completed[stream.path] = None
        if stream.path == self.plan.html.path and not self._scripted_fired:
            self._scripted_fired = True
            self.sim.schedule(self.plan.exec_delay_s, self._fire_scripted)
        self._maybe_finish()

    def _fire_scripted(self) -> None:
        if self._finished:
            return
        missing = [r for r in self.plan.scripted
                   if r.path not in self._completed]
        self._schedule_phase(missing)

    # -- stall handling (RST_STREAM + re-request) -----------------------------------

    def _check_stalls(self) -> None:
        if self._finished:
            return
        self._stall_timer = self.sim.schedule(
            self.config.stall_check_interval_s, self._check_stalls)
        if self._reconnecting:
            # A redial is pending; judge nothing until it lands.
            return
        if self.client.broken:
            if self._reconnects >= self.config.max_reconnects:
                self._finish(broken=True)
            else:
                self._begin_reconnect()
            return
        now = self.sim.now
        total_bytes = sum(s.bytes_received for s in self.client.streams.values())
        self._progress_history.append((now, total_bytes))
        cutoff = now - self.config.stall_timeout_s
        while len(self._progress_history) > 1 and self._progress_history[1][0] <= cutoff:
            self._progress_history.popleft()

        pending = self.client.pending_streams()
        if not pending:
            return
        # Connection-level stall: reset only when the whole connection's
        # throughput over the window is negligible (the channel looks
        # dead, as under the paper's drop burst).  A queued request on a
        # healthy connection just waits, as real browsers with ~90 s
        # request timeouts do; and a trickle of leaked packets from an
        # 80 % drop burst must not count as life.
        window_start_time, window_start_bytes = self._progress_history[0]
        if now - window_start_time < self.config.stall_timeout_s:
            return
        if total_bytes - window_start_bytes >= self.config.stall_min_bytes:
            return
        oldest_pending = min(s.requested_at for s in pending)
        if now - oldest_pending < self.config.stall_timeout_s:
            return
        if self._resets >= self.config.max_resets:
            self._finish(broken=True)
            return
        self._resets += 1
        for stream in pending:
            self.client.reset_stream(stream)
        self.sim.schedule(self.config.reset_backoff_s, self._rerequest_missing)

    # -- connection-loss recovery (fresh connection + re-request) -----------

    def _begin_reconnect(self) -> None:
        """Schedule a redial with capped exponential backoff."""
        self._reconnecting = True
        self._reconnects += 1
        delay = min(self.config.reconnect_backoff_cap_s,
                    self.config.reconnect_backoff_s
                    * (2 ** (self._reconnects - 1)))
        self.sim.schedule(delay, self._do_reconnect)

    def _do_reconnect(self) -> None:
        if self._finished:
            return
        # Clear the flag before dialling: if this attempt also dies the
        # stall checker sees `broken` again and either retries (under
        # the cap) or declares the load broken.
        self._reconnecting = False
        self.client.reconnect(self._on_reconnected)

    def _on_reconnected(self) -> None:
        if self._finished:
            return
        # The dead connection's silence must not count against the
        # fresh one's stall window.
        self._progress_history = deque()
        self._rerequest_missing()

    def _rerequest_missing(self) -> None:
        if self._finished:
            return
        requested_before = {event.path for event in self._requests}
        missing = [path for path in self._ordered_needed()
                   if path in requested_before
                   and path not in self._completed
                   and not self._has_pending_stream(path)]
        requests = [
            PlannedRequest(path=path,
                           gap_s=0.0 if i == 0 else self.config.rerequest_gap_s,
                           weight=self._weights.get(path, 16))
            for i, path in enumerate(missing)
        ]
        self._schedule_phase(requests, rerequest=True)

    def _ordered_needed(self) -> List[str]:
        """Missing-object re-request order: document, scripted, the rest."""
        order: Dict[str, None] = {}
        if self.plan.html.path in self._needed:
            order[self.plan.html.path] = None
        for request in self.plan.scripted:
            if not request.cached:
                order[request.path] = None
        # Sorted: set iteration order depends on string hash
        # randomization, which would make re-request order (and thus
        # the whole run) vary across interpreter invocations.
        for path in sorted(self._needed):
            order.setdefault(path, None)
        return list(order)

    def _has_pending_stream(self, path: str) -> bool:
        return any(s.path == path for s in self.client.pending_streams())

    # -- completion ----------------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self._finished:
            return
        # The scripted phase may not have fired yet even though every
        # already-issued request completed; only finish once every needed
        # path is done.
        if all(path in self._completed for path in self._needed):
            self._finish(broken=False)

    def _on_page_timeout(self) -> None:
        if not self._finished:
            self._finish(broken=True)

    def _finish(self, broken: bool) -> None:
        self._finished = True
        for timer in (self._stall_timer, self._timeout_timer):
            if timer is not None:
                timer.cancel()
        success = all(path in self._completed for path in self._needed)
        self.result = PageLoadResult(
            success=success and not broken,
            broken=broken,
            duration_s=self.sim.now - self._started_at,
            resets=self._resets,
            requests=list(self._requests),
            completed_paths=list(self._completed),
            plan=self.plan,
            reconnects=self._reconnects,
        )
        if self.on_done is not None:
            self.on_done(self.result)

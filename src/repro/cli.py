"""Command-line interface: ``python -m repro <experiment> [options]``.

Each subcommand regenerates one paper artefact and prints the
measured-vs-paper table; ``attack`` runs a single annotated session.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser, default_n: int) -> None:
    parser.add_argument("-n", "--loads", type=int, default=default_n,
                        help=f"loads per measurement point "
                             f"(default {default_n}; the paper used 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (default 0)")


#: Subcommands backed by the parallel runner (repro.experiments.runner).
RUNNER_COMMANDS = ("table1", "figure5", "drops", "table2", "defenses",
                   "faults", "dos")


def _add_runner(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes for the experiment grid "
                             "(default 1; results are identical at any "
                             "job count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the on-disk run cache")
    parser.add_argument("--cache-dir", default=None,
                        help="run-cache location (default $REPRO_CACHE_DIR "
                             "or ~/.cache/repro-runs)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per grid cell; a cell "
                             "that overruns is killed and marked failed "
                             "(default: none)")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for a crashed/hung/raising "
                             "cell, with exponential backoff (default 0)")
    parser.add_argument("-w", "--workers", type=int, default=None,
                        metavar="N",
                        help="run the grid on N supervised persistent "
                             "worker processes (heartbeats, crash respawn, "
                             "poison-cell quarantine); overrides --jobs "
                             "dispatch, results stay identical")
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="append-only JSONL sweep ledger; an "
                             "interrupted run re-executed with the same "
                             "ledger resumes at exactly the missing "
                             "cells, even with --no-cache")


def _runner_kwargs(args) -> dict:
    from repro.experiments.runner import RunCache

    cache = RunCache(root=args.cache_dir, enabled=not args.no_cache)
    return {"jobs": args.jobs, "cache": cache,
            "cell_timeout_s": args.cell_timeout, "retries": args.retries,
            "workers": args.workers, "ledger": args.ledger}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Depending on HTTP/2 for Privacy? "
                    "Good Luck!' (DSN 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack",
                            help="run one attacked survey load (quickstart)")
    attack.add_argument("--seed", type=int, default=7)

    for name, default_n, help_text in (
            ("baseline", 40, "E1: baseline multiplexing (no adversary)"),
            ("table1", 30, "E2: Table I jitter sweep"),
            ("figure5", 20, "E3: Fig. 5 bandwidth sweep"),
            ("drops", 25, "E4: Section IV-D drop burst"),
            ("table2", 40, "E5: Table II attack accuracy"),
            ("defenses", 15, "E7b: defenses evaluation"),
            ("faults", 20, "EF: attack success under injected faults"),
            ("dos", 2, "DOS: slow-HTTP/2 attacks vs hardening vs "
                       "detection"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        _add_common(cmd, default_n)
        if name in RUNNER_COMMANDS:
            _add_runner(cmd)
        if name == "table1":
            cmd.add_argument("--style", choices=("spacing", "netem"),
                             default="spacing")

    sub.add_parser("size-estimation", help="E6: Fig. 1 micro-benchmark")

    chaos = sub.add_parser(
        "chaos",
        help="fuzz sessions (topologies x faults x defenses) with "
             "invariant monitors armed; minimize any failure to a "
             "reproducer spec")
    chaos.add_argument("--seeds", type=int, default=25,
                       help="fuzzed sessions to draw from the master seed "
                            "(default 25)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed of the campaign (default 0)")
    chaos.add_argument("--budget", type=int, default=200,
                       help="max shrinker session runs per violation "
                            "(default 200)")
    chaos.add_argument("--plan", default=None, metavar="FILE",
                       help="fault-plan JSON forced into every generated "
                            "spec (replaces the random fault events)")
    chaos.add_argument("--replay", default=None, metavar="FILE",
                       help="re-run one reproducer spec file and exit")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="report violations without minimizing them")
    chaos.add_argument("--out", default="chaos-reproducers",
                       help="directory for minimized reproducer specs "
                            "(default ./chaos-reproducers)")
    _add_runner(chaos)

    bench = sub.add_parser(
        "bench",
        help="run the seeded performance suite and write BENCH_<topic>"
             ".json snapshots; --compare OLD NEW diffs trajectories")
    from repro.bench.cli import add_bench_arguments
    add_bench_arguments(bench)

    lint = sub.add_parser("lint",
                          help="whole-program static checks (rule "
                               "families DET/SIM/CACHE/PROTO/PERF, "
                               "--fix for mechanical repairs)")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(lint)

    fingerprint = sub.add_parser("fingerprint",
                                 help="E7a: ML classification of traces")
    _add_common(fingerprint, 32)

    streaming = sub.add_parser("streaming",
                               help="E8 extension: streaming traffic")
    _add_common(streaming, 8)

    recovery = sub.add_parser("recovery-ablation",
                              help="modern vs legacy TCP recovery")
    _add_common(recovery, 15)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "attack":
        _run_attack(args.seed)
        return 0

    if args.command == "lint":
        from repro.lint.cli import run_lint_command
        return run_lint_command(args)

    if args.command == "bench":
        from repro.bench.cli import run_bench_command
        return run_bench_command(args)

    if args.command == "chaos":
        from repro.experiments.chaos import run_chaos_command
        return run_chaos_command(args, **_runner_kwargs(args))

    if args.command == "baseline":
        from repro.experiments.baseline import run_baseline
        result = run_baseline(n_loads=args.loads, base_seed=args.seed)
    elif args.command == "table1":
        from repro.experiments.table1 import run_table1
        result = run_table1(n_per_point=args.loads, base_seed=args.seed,
                            style=args.style, **_runner_kwargs(args))
    elif args.command == "figure5":
        from repro.experiments.figure5 import run_figure5
        result = run_figure5(n_per_point=args.loads, base_seed=args.seed,
                             **_runner_kwargs(args))
    elif args.command == "drops":
        from repro.experiments.drops import run_drops
        result = run_drops(n_per_point=args.loads, base_seed=args.seed,
                           **_runner_kwargs(args))
    elif args.command == "table2":
        from repro.experiments.table2 import run_table2
        result = run_table2(n_loads=args.loads, base_seed=args.seed,
                            **_runner_kwargs(args))
    elif args.command == "defenses":
        from repro.experiments.defenses_eval import run_defenses
        result = run_defenses(n_per_defense=args.loads, base_seed=args.seed,
                              **_runner_kwargs(args))
    elif args.command == "faults":
        from repro.experiments.faults_eval import run_faults_eval
        result = run_faults_eval(n_per_point=args.loads, base_seed=args.seed,
                                 **_runner_kwargs(args))
    elif args.command == "dos":
        from repro.experiments.dos_eval import run_dos_eval
        result = run_dos_eval(n_per_point=args.loads, base_seed=args.seed,
                              **_runner_kwargs(args))
    elif args.command == "size-estimation":
        from repro.experiments.size_estimation import run_size_estimation
        result = run_size_estimation()
    elif args.command == "fingerprint":
        from repro.experiments.fingerprinting import run_fingerprinting
        result = run_fingerprinting(n_loads=args.loads)
    elif args.command == "streaming":
        from repro.experiments.streaming import run_streaming
        result = run_streaming(n_sessions=args.loads, base_seed=args.seed)
    elif args.command == "recovery-ablation":
        from repro.experiments.ablations import run_recovery_ablation
        result = run_recovery_ablation(n_per_point=args.loads,
                                       base_seed=args.seed)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(2)

    print(result.table().to_text())
    verdicts = getattr(result, "verdict_lines", None)
    if verdicts is not None:
        for line in verdicts():
            print(line)
    for failure in getattr(result, "failures", ()) or ():
        print(f"failed cell: {failure}")
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        print(telemetry.line())
    return 0


def _run_attack(seed: int) -> None:
    from repro import AttackConfig, SessionConfig, run_session

    result = run_session(SessionConfig(seed=seed, attack=AttackConfig()))
    report = result.report
    print("phases:")
    for phase, when in sorted(report.phase_times.items(), key=lambda kv: kv[1]):
        print(f"  {when:7.3f}s  {phase}")
    print("adversary decoded:", report.predicted_labels)
    print("ground truth     :", ["html"] + list(result.permutation))
    party_sequence = [l for l in report.predicted_labels if l != "html"]
    correct = sum(1 for i, party in enumerate(result.permutation)
                  if i < len(party_sequence) and party_sequence[i] == party)
    print(f"positions recovered: {correct}/8; resets={result.load.resets}; "
          f"load {'ok' if result.load.success else 'FAILED'}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

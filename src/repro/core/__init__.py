"""The paper's contribution: the HTTP/2 serialization attack.

Components mirror the paper's adversary architecture (Section V):

* :mod:`repro.core.observer` -- the traffic monitor (``tshark`` role):
  counts GET-carrying records via the cleartext TLS content-type filter.
* :mod:`repro.core.controller` -- the network controller (``tc``/bash
  role): jitter spacing, bandwidth throttling, targeted drops.
* :mod:`repro.core.planner` -- computes the spacing a target object
  needs (Section IV-B's "calculated amount of jitter").
* :mod:`repro.core.phases` / :mod:`repro.core.adversary` -- the attack
  state machine (jitter -> throttle -> drop burst -> reset ->
  re-serialize) and the end-to-end attack API.
* :mod:`repro.core.estimator` -- object-size recovery from encrypted
  traces (the sub-MTU delimiter algorithm of Fig. 1).
* :mod:`repro.core.predictor` -- size -> identity matching and sequence
  prediction (the object prediction module).
* :mod:`repro.core.metrics` -- the degree-of-multiplexing metric
  (Section II-A) computed from ground truth, used for evaluation only.
"""

from repro.core.adversary import AttackReport, Http2SerializationAttack
from repro.core.deinterleave import PartialMatch, PartialMultiplexAnalyzer
from repro.core.controller import NetworkController
from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.metrics import (
    degree_of_multiplexing,
    object_serialized,
    serve_spans,
)
from repro.core.observer import TrafficMonitor
from repro.core.phases import AttackConfig, AttackPhase
from repro.core.planner import required_spacing_s, spacing_schedule
from repro.core.predictor import ObjectPredictor, SizeIdentityMap

__all__ = [
    "AttackConfig",
    "AttackPhase",
    "AttackReport",
    "Http2SerializationAttack",
    "NetworkController",
    "ObjectEstimate",
    "PartialMatch",
    "PartialMultiplexAnalyzer",
    "ObjectPredictor",
    "SizeEstimator",
    "SizeIdentityMap",
    "TrafficMonitor",
    "degree_of_multiplexing",
    "object_serialized",
    "required_spacing_s",
    "serve_spans",
    "spacing_schedule",
]

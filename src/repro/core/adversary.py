"""The end-to-end serialization attack (Section V).

:class:`Http2SerializationAttack` wires the traffic monitor, the network
controller and the phase state machine onto a compromised middlebox,
runs the jitter -> throttle -> drop -> serialize pipeline, and finally
recovers object identities from the capture with the size estimator and
predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller import NetworkController
from repro.core.deinterleave import PartialMatch, PartialMultiplexAnalyzer
from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.observer import RequestSighting, TrafficMonitor
from repro.core.phases import AttackConfig, AttackPhase
from repro.core.predictor import ObjectPredictor, Prediction, SizeIdentityMap
from repro.simnet.middlebox import Middlebox
from repro.simnet.trace import TraceRecorder


@dataclass
class AttackReport:
    """Everything the adversary learned from one session."""

    #: Ordered identified objects after the serialize phase began (the
    #: interesting window: re-served HTML + the 8 emblem images).
    predictions: List[Prediction]
    #: Same, as bare labels.
    predicted_labels: List[str]
    #: All size estimates over the whole session (diagnostics).
    all_estimates: List[ObjectEstimate]
    #: Estimates within the serialize window.
    window_estimates: List[ObjectEstimate]
    #: Phase transition times (phase name -> sim time).
    phase_times: Dict[str, float]
    #: GETs counted by the monitor.
    requests_observed: int
    #: Objects identified by the partial-multiplexing analyzer
    #: (Section VII extension): tail-residue + byte-conservation matches
    #: over the serialize window, usable even when runs interleave.
    partial_matches: List[PartialMatch] = field(default_factory=list)
    #: ``partial_matches`` mapped through the size map.
    partial_labels: List[str] = field(default_factory=list)


class Http2SerializationAttack:
    """One attack instance bound to one middlebox and capture."""

    def __init__(self, sim, middlebox: Middlebox, trace: TraceRecorder,
                 config: Optional[AttackConfig] = None,
                 size_map: Optional[SizeIdentityMap] = None,
                 census_sizes: Optional[List[int]] = None):
        self.sim = sim
        self.middlebox = middlebox
        self.trace = trace
        self.config = config or AttackConfig()
        self.config.validate()
        self.size_map = size_map
        #: The full site object-size census (the adversary can crawl its
        #: target); powers the partial-multiplexing analyzer.
        self.census_sizes = census_sizes

        self.monitor = TrafficMonitor(sim)
        self.controller = NetworkController(sim, middlebox)
        self.estimator = SizeEstimator()
        self.phase = AttackPhase.IDLE
        self.phase_times: Dict[str, float] = {}
        self._attached = False
        self._disrupt_started = 0.0
        self._last_get_time = None

    # -- lifecycle ------------------------------------------------------------

    def attach(self) -> None:
        """Install the monitor and the phase-1 policies."""
        if self._attached:
            raise RuntimeError("attack already attached")
        self._attached = True
        config = self.config
        self.middlebox.add_tap(self.monitor)

        if config.uniform_delay_s is not None:
            self.controller.set_uniform_delay(config.uniform_delay_s)
        if config.throttle_bps_at_start is not None:
            self.controller.set_bandwidth(config.throttle_bps_at_start,
                                          config.throttle_backlog_s)
        if config.spacing_s > 0:
            if config.phase1_style == "netem":
                self.controller.set_request_jitter(config.spacing_s,
                                                   config.netem_frac)
            else:
                self.controller.set_request_spacing(config.spacing_s)
        self._enter_phase(AttackPhase.SPACING)

        if config.trigger_request_index is not None:
            self.monitor.on_request_index(config.trigger_request_index,
                                          self._on_trigger)
        if config.release_spacing_after_request is not None:
            self.monitor.on_request_index(
                config.release_spacing_after_request, self._on_release)

    def _on_trigger(self, _sighting: RequestSighting) -> None:
        config = self.config
        self._enter_phase(AttackPhase.DISRUPT)
        self._disrupt_started = self.sim.now
        if config.throttle_bps_at_trigger is not None:
            self.controller.set_bandwidth(config.throttle_bps_at_trigger,
                                          config.throttle_backlog_s)
        if config.drop_rate > 0 and config.drop_duration_s > 0:
            self.controller.drop_application_packets(
                rate=config.drop_rate, duration_s=config.drop_duration_s)
        if config.stop_drops_on_rerequest:
            self.monitor.on_every_request(self._maybe_detect_rerequest)
            self.monitor.on_every_control(self._maybe_detect_reset)
        self.sim.schedule(config.drop_duration_s, self._enter_serialize)

    def _maybe_detect_reset(self, now: float) -> None:
        """A volley of small client records while the page is stalled is
        the RST_STREAM burst (Section IV-D): stop dropping immediately,
        before the re-requests even arrive, so the serialize spacing
        (including the warm-up hold) applies to every one of them."""
        if self.phase != AttackPhase.DISRUPT:
            return
        if now - self._disrupt_started < self.config.min_drop_s:
            return
        recent = [t for t in self.monitor.control_times
                  if now - t <= 0.5 and t >= self._disrupt_started]
        if len(recent) >= 3:
            self._enter_serialize()

    def _maybe_detect_rerequest(self, sighting: RequestSighting) -> None:
        """A GET after a quiet interval means the client reset its
        streams and is re-requesting: stop dropping, start serializing.

        The quiet-gap requirement keeps speculative requests triggered
        by leaked HTML bytes (20 % of packets survive the burst) from
        ending the burst prematurely.
        """
        if self.phase != AttackPhase.DISRUPT:
            return
        previous = self._last_get_time
        self._last_get_time = sighting.time
        if sighting.time - self._disrupt_started < self.config.min_drop_s:
            return
        if previous is not None and sighting.time - previous >= 1.5:
            self._enter_serialize()

    def _enter_serialize(self) -> None:
        if self.phase != AttackPhase.DISRUPT:
            return
        self._enter_phase(AttackPhase.SERIALIZE)
        self.controller.clear_drops()
        self.controller.clear_request_jitter()
        if self.config.serialize_spacing_s > 0:
            self.controller.set_request_spacing(
                self.config.serialize_spacing_s,
                initial_gap_s=self.config.serialize_initial_gap_s,
                initial_count=self.config.serialize_initial_count,
                hold_first_until=self.sim.now + self.config.serialize_warmup_s)

    def _on_release(self, _sighting: RequestSighting) -> None:
        self._enter_phase(AttackPhase.RELEASED)
        self.controller.clear_request_spacing()

    def _enter_phase(self, phase: AttackPhase) -> None:
        self.phase = phase
        self.phase_times[phase.value] = self.sim.now

    # -- analysis ----------------------------------------------------------------

    @property
    def serialize_started_at(self) -> Optional[float]:
        return self.phase_times.get(AttackPhase.SERIALIZE.value)

    def report(self) -> AttackReport:
        """Post-session analysis of the capture."""
        all_estimates = self.estimator.estimate_from_trace(self.trace)
        window_start = self.serialize_started_at
        if window_start is None:
            window_estimates = all_estimates
        else:
            window_estimates = [e for e in all_estimates
                                if e.end_time >= window_start]
        partial_matches: List[PartialMatch] = []
        partial_labels: List[str] = []
        if self.census_sizes:
            analyzer = PartialMultiplexAnalyzer(self.census_sizes)
            window_start = self.serialize_started_at or 0.0
            from repro.simnet.middlebox import SERVER_TO_CLIENT
            records = [r for r in self.trace.completed_records(
                SERVER_TO_CLIENT) if r.end_time >= window_start]
            partial_matches = analyzer.analyze(records)
            if self.size_map is not None:
                for match in partial_matches:
                    label = self.size_map.identify(match.size)
                    if label is not None and match.confident:
                        partial_labels.append(label)

        predictions: List[Prediction] = []
        if self.size_map is not None:
            predictor = ObjectPredictor(self.size_map)
            labels = list(self.size_map.labels)
            if "html" in labels:
                # The document is identified anywhere in the window; the
                # images are identified as the consecutive burst the
                # client is known to issue (assumption 5 of the paper).
                parties = [label for label in labels if label != "html"]
                run = predictor.predict_burst(window_estimates, parties)
                html_hits = [p for p in predictor.predict(window_estimates)
                             if p.label == "html"]
                predictions = html_hits[:1] + run
                if (not html_hits and "html" in partial_labels):
                    # The clean-estimate path missed the document, but
                    # the partial-multiplexing analyzer pinned it down
                    # by tail residue + byte conservation.
                    html_size = next(size for size, label in
                                     ((s, self.size_map.identify(s))
                                      for s in self.census_sizes or [])
                                     if label == "html")
                    match = next(m for m in partial_matches
                                 if m.confident
                                 and self.size_map.identify(m.size) == "html")
                    predictions = [Prediction(
                        label="html",
                        estimate=ObjectEstimate(size=html_size,
                                                start_time=match.end_time,
                                                end_time=match.end_time,
                                                n_records=0))] + run
            else:
                predictions = predictor.predict(window_estimates)
        return AttackReport(
            predictions=predictions,
            predicted_labels=[p.label for p in predictions],
            all_estimates=all_estimates,
            window_estimates=window_estimates,
            phase_times=dict(self.phase_times),
            requests_observed=self.monitor.request_count,
            partial_matches=partial_matches,
            partial_labels=partial_labels,
        )

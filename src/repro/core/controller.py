"""The adversary's network controller.

The paper drives ``tc netem``-style knobs from bash; here the same three
capabilities are policies installed on the compromised middlebox:

* request spacing ("jitter", Section IV-B),
* bandwidth throttling (Section IV-C),
* windowed targeted drops of application packets (Section IV-D).

Each setter replaces any previous policy of its kind, so the attack
phases can retune on the fly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.wire import carries_application_data, carries_request_any
from repro.simnet.middlebox import (
    CLIENT_TO_SERVER,
    SERVER_TO_CLIENT,
    Middlebox,
    NetemJitterPolicy,
    SpacingPolicy,
    TokenBucketPolicy,
    UniformDelayPolicy,
    WindowedDropPolicy,
)


class NetworkController:
    """Programmatic control surface over the compromised gateway."""

    def __init__(self, sim, middlebox: Middlebox):
        self.sim = sim
        self.middlebox = middlebox
        self._spacing: Optional[SpacingPolicy] = None
        self._netem: Optional[NetemJitterPolicy] = None
        self._throttle: Optional[TokenBucketPolicy] = None
        self._drop: Optional[WindowedDropPolicy] = None
        self._delay: Optional[UniformDelayPolicy] = None

    # -- jitter / spacing ---------------------------------------------------

    def set_request_spacing(self, gap_s: float,
                            initial_gap_s: Optional[float] = None,
                            initial_count: int = 0,
                            hold_first_until: Optional[float] = None,
                            ) -> SpacingPolicy:
        """Hold client->server GET packets to at least ``gap_s`` apart.

        This is the paper's jitter injector: "the first request can be
        delayed by 0 ms, second by d ms, the third by 2d ms, and so on,
        to achieve an inter-arrival spacing of d ms".  ``initial_gap_s``
        (over the first ``initial_count`` packets of each burst) covers
        objects that need a longer quiet window, e.g. the re-served
        HTML while the server's window is still recovering.
        """
        previous = self._spacing
        if previous is not None:
            self.middlebox.remove_policy(previous)
        self._spacing = SpacingPolicy(min_gap_s=gap_s,
                                      direction=CLIENT_TO_SERVER,
                                      match=carries_request_any,
                                      initial_gap_s=initial_gap_s,
                                      initial_count=initial_count)
        if previous is not None:
            # Retuning must not forget the queue: packets already
            # released keep spacing the ones that follow.
            self._spacing._last_release = previous._last_release
            self._spacing._last_arrival = previous._last_arrival
        if hold_first_until is not None:
            first_gap = initial_gap_s if initial_gap_s is not None else gap_s
            floor = hold_first_until - first_gap
            if (self._spacing._last_release is None
                    or self._spacing._last_release < floor):
                self._spacing._last_release = floor
                self._spacing._last_arrival = self.sim.now
        self.middlebox.add_policy(self._spacing)
        return self._spacing

    def clear_request_spacing(self) -> None:
        if self._spacing is not None:
            self.middlebox.remove_policy(self._spacing)
            self._spacing = None

    # -- netem-style jitter (Table I's knob) --------------------------------

    def set_request_jitter(self, mean_delay_s: float,
                           frac: float = 0.5) -> NetemJitterPolicy:
        """Delay each client->server GET packet independently by
        ``U(mean*(1-frac), mean*(1+frac))`` -- ``tc netem delay`` with
        variation, the paper's Table I jitter."""
        if self._netem is not None:
            self.middlebox.remove_policy(self._netem)
        self._netem = NetemJitterPolicy(self.sim, mean_delay_s,
                                        direction=CLIENT_TO_SERVER, frac=frac,
                                        match=carries_request_any)
        self.middlebox.add_policy(self._netem)
        return self._netem

    def clear_request_jitter(self) -> None:
        if self._netem is not None:
            self.middlebox.remove_policy(self._netem)
            self._netem = None

    # -- uniform delay (the Section IV-A negative control) ----------------------

    def set_uniform_delay(self, delay_s: float) -> UniformDelayPolicy:
        """Delay every client->server packet by a constant amount."""
        if self._delay is not None:
            self.middlebox.remove_policy(self._delay)
        self._delay = UniformDelayPolicy(delay_s, direction=CLIENT_TO_SERVER)
        self.middlebox.add_policy(self._delay)
        return self._delay

    def clear_uniform_delay(self) -> None:
        if self._delay is not None:
            self.middlebox.remove_policy(self._delay)
            self._delay = None

    # -- bandwidth ----------------------------------------------------------------

    def set_bandwidth(self, rate_bps: float,
                      max_backlog_s: float = 0.5) -> TokenBucketPolicy:
        """Throttle both directions to ``rate_bps`` (Section IV-C)."""
        if self._throttle is not None:
            self.middlebox.remove_policy(self._throttle)
        self._throttle = TokenBucketPolicy(rate_bps=rate_bps, direction=None,
                                           max_backlog_s=max_backlog_s)
        self.middlebox.add_policy(self._throttle)
        return self._throttle

    def clear_bandwidth(self) -> None:
        if self._throttle is not None:
            self.middlebox.remove_policy(self._throttle)
            self._throttle = None

    # -- targeted drops ---------------------------------------------------------------

    def drop_application_packets(self, rate: float, duration_s: float,
                                 direction: str = SERVER_TO_CLIENT,
                                 ) -> WindowedDropPolicy:
        """Drop ``rate`` of application packets for ``duration_s`` starting
        now (the Section IV-D reset-forcing burst)."""
        if self._drop is not None:
            self.middlebox.remove_policy(self._drop)
        now = self.sim.now
        self._drop = WindowedDropPolicy(
            self.sim, rate=rate, direction=direction,
            start_at=now, end_at=now + duration_s,
            match=carries_application_data)
        self.middlebox.add_policy(self._drop)
        return self._drop

    def clear_drops(self) -> None:
        if self._drop is not None:
            self.middlebox.remove_policy(self._drop)
            self._drop = None

    # -- bulk ----------------------------------------------------------------------------

    def clear_all(self) -> None:
        """Restore neutral forwarding."""
        self.clear_request_spacing()
        self.clear_request_jitter()
        self.clear_uniform_delay()
        self.clear_bandwidth()
        self.clear_drops()

    @property
    def spacing_policy(self) -> Optional[SpacingPolicy]:
        return self._spacing

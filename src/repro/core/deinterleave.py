"""Partial-multiplexing inference (the paper's Section VII extension).

"Another possible extension would be to infer the object identity even
when the object is partly multiplexed.  Our preliminary experiments
suggest that this is indeed possible, however, at the cost of employing
complex analysis techniques."

The analysis implemented here exploits two wire-derivable facts about an
interleaved run of TLS records:

1. **Tail residues.**  The server chunks every object into full DATA
   records (fixed payload, e.g. 1370 bytes) plus one final sub-full
   record.  However thoroughly the records interleave, each object
   contributes exactly one sub-full record, and its size equals
   ``size - (ceil(size / chunk) - 1) * chunk`` -- a residue the
   adversary can precompute for every object in its census.
2. **Byte conservation.**  The total application payload of the run
   equals the sum of the sizes of the objects inside it, so among the
   objects whose residues match the observed tails, the correct
   assignment is the one whose sizes sum to the observed total.

The result is the multiset of object identities inside the run (in tail
= completion order), recovered without ever serializing the traffic --
at the cost of a backtracking search over residue-ambiguous candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import CONTROL_RECORD_MAX_WIRE, RECORD_FRAMING
from repro.simnet.trace import CompletedRecord


@dataclass(frozen=True)
class PartialMatch:
    """One object identified inside an interleaved run."""

    size: int
    end_time: float
    #: False when the run's byte conservation check could not single out
    #: an assignment and this match is residue-only.
    confident: bool


def tail_payload(size: int, chunk: int) -> int:
    """Payload bytes of an object's final (sub-full or only) record."""
    if size <= 0:
        raise ValueError("size must be positive")
    full_records = (size - 1) // chunk
    return size - full_records * chunk


class PartialMultiplexAnalyzer:
    """Identify known-size objects inside interleaved record runs."""

    def __init__(self, census_sizes: Sequence[int],
                 chunk_payload: int = 1370,
                 record_framing: int = RECORD_FRAMING,
                 control_max_wire: int = CONTROL_RECORD_MAX_WIRE,
                 run_gap_s: float = 0.06,
                 max_search_nodes: int = 200_000):
        if not census_sizes:
            raise ValueError("empty census")
        self.census_sizes = sorted(set(census_sizes))
        self.chunk_payload = chunk_payload
        self.record_framing = record_framing
        self.control_max_wire = control_max_wire
        self.run_gap_s = run_gap_s
        self.max_search_nodes = max_search_nodes

        self._by_tail: Dict[int, List[int]] = {}
        for size in self.census_sizes:
            tail = tail_payload(size, chunk_payload)
            self._by_tail.setdefault(tail, []).append(size)

    # -- public API --------------------------------------------------------

    def analyze(self, records: Sequence[CompletedRecord],
                ) -> List[PartialMatch]:
        """Identify objects across all runs of a record sequence."""
        matches: List[PartialMatch] = []
        for run in self._split_runs(records):
            matches.extend(self._analyze_run(run))
        return matches

    # -- internals -------------------------------------------------------------

    def _split_runs(self, records: Sequence[CompletedRecord],
                    ) -> List[List[CompletedRecord]]:
        runs: List[List[CompletedRecord]] = []
        current: List[CompletedRecord] = []
        last_end: Optional[float] = None
        for record in records:
            if record.wire_len <= self.control_max_wire:
                continue
            if (last_end is not None
                    and record.start_time - last_end > self.run_gap_s
                    and current):
                runs.append(current)
                current = []
            current.append(record)
            last_end = record.end_time
        if current:
            runs.append(current)
        return runs

    def _analyze_run(self, run: List[CompletedRecord]) -> List[PartialMatch]:
        full_wire = self.chunk_payload + self.record_framing
        tails = [(record.wire_len - self.record_framing, record.end_time)
                 for record in run if record.wire_len < full_wire]
        if not tails:
            return []
        total_payload = sum(record.wire_len - self.record_framing
                            for record in run)

        candidates: List[List[int]] = []
        for tail, _ in tails:
            candidates.append(self._by_tail.get(tail, []))
        if any(not c for c in candidates):
            # Some tail matches nothing in the census; identify what we
            # can by residue alone, without conservation confidence.
            return self._residue_only(tails)

        assignment = self._search(candidates, total_payload)
        if assignment is None:
            return self._residue_only(tails)
        return [PartialMatch(size=size, end_time=when, confident=True)
                for size, (_, when) in zip(assignment, tails)]

    def _residue_only(self, tails: List[Tuple[int, float]],
                      ) -> List[PartialMatch]:
        matches = []
        for tail, when in tails:
            sizes = self._by_tail.get(tail, [])
            if len(sizes) == 1:
                matches.append(PartialMatch(size=sizes[0], end_time=when,
                                            confident=False))
        return matches

    def _search(self, candidates: List[List[int]],
                target: int) -> Optional[List[int]]:
        """Backtracking assignment: one candidate per tail, summing to
        ``target``.  Prunes with min/max remaining-sum bounds."""
        n = len(candidates)
        min_suffix = [0] * (n + 1)
        max_suffix = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            min_suffix[i] = min_suffix[i + 1] + min(candidates[i])
            max_suffix[i] = max_suffix[i + 1] + max(candidates[i])

        nodes = 0
        chosen: List[int] = []

        def backtrack(index: int, remaining: int) -> bool:
            nonlocal nodes
            nodes += 1
            if nodes > self.max_search_nodes:
                return False
            if index == n:
                return remaining == 0
            if not (min_suffix[index] <= remaining <= max_suffix[index]):
                return False
            for size in candidates[index]:
                chosen.append(size)
                if backtrack(index + 1, remaining - size):
                    return True
                chosen.pop()
            return False

        if backtrack(0, target):
            return list(chosen)
        return None

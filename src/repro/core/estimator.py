"""Object-size estimation from encrypted traffic (Fig. 1).

The estimator consumes the server -> client TLS application-data records
of a capture (sizes and timestamps only) and recovers object sizes with
the classic delimiter rule: interior records of an object ride full
(MTU-sized) packets; a record smaller than full size marks the object's
last packet.  Summing the per-record HTTP/2 payloads between delimiters
yields the object size.

The adversary knows the stack's constant framing overheads (TLS record
header + AEAD tag, HTTP/2 frame header) the same way the paper's
adversary knows its target's; both are public protocol constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.http2.frames import FRAME_HEADER_LEN
from repro.simnet.middlebox import SERVER_TO_CLIENT
from repro.simnet.trace import CompletedRecord, TraceRecorder
from repro.tls.record import AEAD_OVERHEAD, RECORD_HEADER_LEN

#: Per-record framing bytes between wire length and object payload.
RECORD_FRAMING = RECORD_HEADER_LEN + AEAD_OVERHEAD + FRAME_HEADER_LEN

#: Records at or below this wire length are HTTP/2 control frames or
#: response headers, not object data; they are skipped entirely.
CONTROL_RECORD_MAX_WIRE = 120


@dataclass(frozen=True)
class ObjectEstimate:
    """One recovered object transmission."""

    size: int
    start_time: float
    end_time: float
    n_records: int

    def matches(self, true_size: int, tolerance: int = 400) -> bool:
        """Whether the estimate identifies an object of ``true_size``."""
        return abs(self.size - true_size) <= tolerance


class SizeEstimator:
    """Delimiter-based size recovery over a capture."""

    def __init__(self, full_record_wire: int = 1400,
                 control_max_wire: int = CONTROL_RECORD_MAX_WIRE,
                 record_framing: int = RECORD_FRAMING,
                 time_gap_delimiter_s: float = 0.06):
        self.full_record_wire = full_record_wire
        self.control_max_wire = control_max_wire
        self.record_framing = record_framing
        #: A quiet gap this long between data records also delimits an
        #: object.  The sub-MTU rule alone misses boundaries that follow
        #: a full-sized record (e.g. loss-recovery retransmissions right
        #: before a re-served object); under the serializing attack
        #: consecutive objects are separated by the enforced request
        #: spacing, so a modest time threshold is unambiguous.
        self.time_gap_delimiter_s = time_gap_delimiter_s

    def estimate_from_trace(self, trace: TraceRecorder,
                            since: float = 0.0,
                            until: Optional[float] = None,
                            ) -> List[ObjectEstimate]:
        """Recover object sizes from the server->client records."""
        records = trace.completed_records(SERVER_TO_CLIENT, content_type=23)
        records = [r for r in records if r.end_time >= since
                   and (until is None or r.end_time <= until)]
        return self.estimate_from_records(records)

    def estimate_from_records(self, records: Sequence[CompletedRecord],
                              ) -> List[ObjectEstimate]:
        """Core delimiter algorithm over an ordered record sequence."""
        estimates: List[ObjectEstimate] = []
        current_size = 0
        current_records = 0
        current_start = 0.0
        last_end = 0.0

        def close(end_time: float) -> None:
            nonlocal current_size, current_records
            estimates.append(ObjectEstimate(
                size=current_size, start_time=current_start,
                end_time=end_time, n_records=current_records))
            current_size = 0
            current_records = 0

        for record in records:
            if record.wire_len <= self.control_max_wire:
                continue
            if (current_records > 0 and self.time_gap_delimiter_s > 0
                    and record.start_time - last_end > self.time_gap_delimiter_s):
                close(last_end)
            if current_records == 0:
                current_start = record.start_time
            current_size += max(0, record.wire_len - self.record_framing)
            current_records += 1
            last_end = record.end_time
            if record.wire_len < self.full_record_wire:
                # Sub-full record: the delimiting last packet of Fig. 1.
                close(record.end_time)
        if current_records:
            # Trailing run without a delimiter (capture cut mid-object).
            close(last_end)
        return estimates

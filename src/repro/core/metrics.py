"""Degree of multiplexing (Section II-A) and related ground-truth metrics.

The paper defines the degree of multiplexing of an object as "the
fraction of bytes of the object that is interleaved with those of
another object within the same TCP stream".  We operationalise it on
the server's transmission log: split the object's bytes into maximal
*runs* uninterrupted by foreign bytes (bytes of any other serve
instance landing inside the object's stream-offset span); the degree is
``1 - largest_run / total``.  An object transmitted as one
uninterrupted run has degree 0 -- the attack succeeds on an object only
when it reaches exactly that (Section V's criterion) -- and a heavily
interleaved object approaches 1.

These metrics read ground truth (which object each DATA frame belongs
to) and are therefore for evaluation only -- the adversary never sees
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class ServeSpan:
    """One serve instance's footprint in the TCP stream."""

    object_path: str
    serve_id: int
    duplicate: bool
    start_offset: int
    end_offset: int
    total_bytes: int
    #: (offset, length) of each DATA frame, in stream order.
    pieces: List[Tuple[int, int]]
    start_time: float
    end_time: float
    completed: bool


def serve_spans(tx_log: Sequence) -> Dict[Tuple[str, int], ServeSpan]:
    """Group a server transmission log into per-serve-instance spans."""
    spans: Dict[Tuple[str, int], ServeSpan] = {}
    for entry in tx_log:
        if not entry.is_data or not entry.object_path:
            continue
        key = (entry.object_path, entry.serve_id)
        span = spans.get(key)
        if span is None:
            spans[key] = ServeSpan(
                object_path=entry.object_path,
                serve_id=entry.serve_id,
                duplicate=entry.duplicate,
                start_offset=entry.tcp_offset,
                end_offset=entry.tcp_offset + entry.length,
                total_bytes=entry.length,
                pieces=[(entry.tcp_offset, entry.length)],
                start_time=entry.time,
                end_time=entry.time,
                completed=entry.end_stream,
            )
        else:
            span.end_offset = max(span.end_offset,
                                  entry.tcp_offset + entry.length)
            span.total_bytes += entry.length
            span.pieces.append((entry.tcp_offset, entry.length))
            span.end_time = entry.time
            span.completed = span.completed or entry.end_stream
    return spans


def _merge_intervals(intervals: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _gap_contains_foreign(gap_lo: int, gap_hi: int,
                          intervals: List[Tuple[int, int]]) -> bool:
    """Any foreign bytes in the half-open stream span [gap_lo, gap_hi)?"""
    for start, end in intervals:
        if end <= gap_lo:
            continue
        if start >= gap_hi:
            break
        return True
    return False


def degree_of_multiplexing(tx_log: Sequence, object_path: str,
                           serve_id: Optional[int] = None) -> float:
    """Degree of multiplexing of one serve instance of ``object_path``.

    With ``serve_id`` omitted the *first non-duplicate* serve instance
    is measured (the transmission the client's browser assembles).
    Returns a fraction in [0, 1]; raises ``KeyError`` when the object
    never appears in the log.
    """
    spans = serve_spans(tx_log)
    target = _select_span(spans, object_path, serve_id)
    others = [span for key, span in spans.items()
              if key != (target.object_path, target.serve_id)]
    foreign = _merge_intervals(
        (piece_offset, piece_offset + piece_len)
        for span in others for piece_offset, piece_len in span.pieces
        if piece_offset + piece_len > target.start_offset
        and piece_offset < target.end_offset
    )
    if not foreign or target.total_bytes == 0:
        return 0.0

    # Split the object's pieces into maximal runs uninterrupted by
    # foreign bytes; degree = 1 - largest run / total bytes.
    pieces = sorted(target.pieces)
    largest = 0
    current = 0
    prev_end: Optional[int] = None
    for offset, length in pieces:
        if prev_end is not None and (
                offset > prev_end
                and _gap_contains_foreign(prev_end, offset, foreign)):
            largest = max(largest, current)
            current = 0
        current += length
        prev_end = offset + length
    largest = max(largest, current)
    return 1.0 - largest / target.total_bytes


def object_serialized(tx_log: Sequence, object_path: str,
                      require_completed: bool = True) -> bool:
    """True when *some* non-duplicate serve of the object has degree 0.

    This is the attack's per-object success condition on the ground
    truth side: the object crossed the wire fully un-interleaved at
    least once (e.g. the post-reset re-serve).
    """
    spans = serve_spans(tx_log)
    for (path, serve_id), span in spans.items():
        if path != object_path or span.duplicate:
            continue
        if require_completed and not span.completed:
            continue
        if degree_of_multiplexing(tx_log, path, serve_id) == 0.0:
            return True
    return False


def _select_span(spans: Dict[Tuple[str, int], ServeSpan], object_path: str,
                 serve_id: Optional[int]) -> ServeSpan:
    if serve_id is not None:
        return spans[(object_path, serve_id)]
    candidates = [span for (path, _), span in spans.items()
                  if path == object_path and not span.duplicate]
    if not candidates:
        raise KeyError(f"object {object_path!r} not in transmission log")
    return min(candidates, key=lambda span: span.start_offset)


def mean_degree(tx_log: Sequence, object_paths: Iterable[str]) -> float:
    """Average degree over several objects (first non-dup serve each)."""
    degrees = [degree_of_multiplexing(tx_log, path) for path in object_paths]
    return sum(degrees) / len(degrees) if degrees else 0.0

"""The adversary's traffic monitor.

The paper implements this with ``tshark`` filtering
``ssl.record.content_type == 23`` and counting forwarded GET requests on
the client -> server path.  Here it is a middlebox tap that consumes
wire views only, counts request-carrying packets, and fires registered
triggers (e.g. "on the 6th GET, start the drop burst").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.wire import carries_request
from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT
from repro.simnet.packet import WireView


@dataclass
class RequestSighting:
    """One counted GET-carrying packet."""

    index: int
    time: float
    record_wire_len: int


class TrafficMonitor:
    """Counts GETs and exposes index-based triggers.

    ``skip_first`` discards that many leading request-sized records per
    capture: every HTTP/2 connection opens with the client's
    connection preface + SETTINGS, which rides a GET-sized
    application-data record that a naive content-type-23 counter would
    miscount (the paper's adversary knows the protocol preamble just as
    it knows the request sequence).
    """

    def __init__(self, sim, skip_first: int = 1):
        self.sim = sim
        self.skip_first = skip_first
        self._skipped = 0
        self.request_count = 0
        self.sightings: List[RequestSighting] = []
        self.app_packets_s2c = 0
        #: Small (sub-request-size) client application records: stream
        #: control frames.  A burst of these while the page is stalled is
        #: the client's RST_STREAM volley (Section IV-D).
        self.control_count = 0
        self.control_times: List[float] = []
        self._index_triggers: Dict[int, List[Callable[[RequestSighting], None]]] = {}
        self._every_request: List[Callable[[RequestSighting], None]] = []
        self._every_control: List[Callable[[float], None]] = []

    # Middlebox tap signature.
    def __call__(self, now: float, direction: str, view: WireView,
                 dropped: bool) -> None:
        if direction == SERVER_TO_CLIENT:
            if not dropped and view.has_application_data:
                self.app_packets_s2c += 1
            return
        if direction != CLIENT_TO_SERVER or dropped:
            return
        if not carries_request(view):
            if _carries_control_record(view):
                self.control_count += 1
                self.control_times.append(now)
                for callback in self._every_control:
                    callback(now)
            return
        if self._skipped < self.skip_first:
            self._skipped += 1
            return
        self.request_count += 1
        record_len = max((r.record_wire_len for r in view.records
                          if r.is_application_data and r.is_start), default=0)
        sighting = RequestSighting(index=self.request_count, time=now,
                                   record_wire_len=record_len)
        self.sightings.append(sighting)
        for callback in self._every_request:
            callback(sighting)
        for callback in self._index_triggers.pop(self.request_count, []):
            callback(sighting)

    def on_request_index(self, index: int,
                         callback: Callable[[RequestSighting], None]) -> None:
        """Fire ``callback`` when the ``index``-th GET is observed."""
        if index <= self.request_count:
            raise ValueError(f"request {index} already observed")
        self._index_triggers.setdefault(index, []).append(callback)

    def on_every_request(self,
                         callback: Callable[[RequestSighting], None]) -> None:
        """Fire ``callback`` for every GET observed."""
        self._every_request.append(callback)

    def on_every_control(self, callback: Callable[[float], None]) -> None:
        """Fire ``callback(now)`` for every small control record seen."""
        self._every_control.append(callback)

    def request_times(self) -> List[float]:
        """Observation times of all counted GETs."""
        return [s.time for s in self.sightings]


def _carries_control_record(view: WireView) -> bool:
    return any(r.is_application_data and r.is_start for r in view.records)

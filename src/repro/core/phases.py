"""Attack configuration and phase definitions (Section V).

The full pipeline, in the paper's order:

1. **SPACING** -- from attach time, hold client GETs ``spacing_s``
   apart (50 ms in the paper) and count them.
2. **DISRUPT** -- on the trigger GET (the 6th: the result HTML),
   throttle the path (800 Mbps) and drop ``drop_rate`` of the
   application packets on the server -> client path for
   ``drop_duration_s`` (80 % for 6 s), forcing the client to
   RST_STREAM everything.
3. **SERIALIZE** -- after the burst, raise the spacing to
   ``serialize_spacing_s`` (80 ms) so the re-requested HTML and the 8
   consecutive emblem images are each served alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class AttackPhase(Enum):
    """Where the attack state machine currently is."""

    IDLE = "idle"
    SPACING = "spacing"
    DISRUPT = "disrupt"
    SERIALIZE = "serialize"
    RELEASED = "released"


@dataclass
class AttackConfig:
    """All knobs of the serialization attack.

    Disabling pieces yields the paper's intermediate adversaries:
    ``trigger_request_index=None`` gives the jitter-only adversary of
    Table I; adding ``throttle_bps_at_start`` gives the Fig. 5 setup;
    the defaults give the full Section V pipeline.
    """

    #: Phase-1 GET spacing; 0 disables spacing entirely.
    spacing_s: float = 0.05
    #: Phase-1 jitter implementation: "spacing" is the deterministic
    #: hold-queue ramp ("first request by 0 ms, second by d ms, ...");
    #: "netem" is tc-netem-style independent per-packet delay with
    #: variation, which additionally reorders tightly spaced GETs (the
    #: Table I measurement setup).  The serialize phase always uses the
    #: deterministic ramp.
    phase1_style: str = "spacing"
    #: Variation fraction for the "netem" style.
    netem_frac: float = 0.5
    #: The Section IV-A negative control: constant extra delay on every
    #: client->server packet (cannot change inter-arrival times).
    uniform_delay_s: Optional[float] = None
    #: Post-reset GET spacing (the 80 ms of Section V).
    serialize_spacing_s: float = 0.08
    #: Extra-wide spacing for the first few re-requests of each burst:
    #: the re-served HTML is transmitted while the server's congestion
    #: window is still recovering from the drop burst and needs a
    #: longer quiet window than steady-state objects.
    serialize_initial_gap_s: float = 0.30
    serialize_initial_count: int = 2
    #: Hold even the first re-request this long after the burst ends, so
    #: the server finishes retransmitting the holes the burst left
    #: behind before the re-served object goes on the wire -- otherwise
    #: the recovery backlog convoys the re-serve into the next response.
    serialize_warmup_s: float = 0.8
    #: Which GET starts the disrupt phase; ``None`` = never (jitter only).
    trigger_request_index: Optional[int] = 6
    #: Throttle applied at attach time (the Fig. 5 experiment), if any.
    throttle_bps_at_start: Optional[float] = None
    #: Throttle applied at the trigger (the Section V pipeline), if any.
    throttle_bps_at_trigger: Optional[float] = 800e6
    throttle_backlog_s: float = 0.5
    #: Targeted drop burst parameters (Section IV-D).
    drop_rate: float = 0.8
    drop_duration_s: float = 6.0
    #: End the burst early when a GET appears after a quiet period --
    #: the client's post-reset re-request (the paper's "number of
    #: forwarded GET requests" stop criterion).  ``drop_duration_s``
    #: stays as the timer fallback.
    stop_drops_on_rerequest: bool = True
    #: Minimum burst length before the re-request detector may fire.
    min_drop_s: float = 1.0
    #: Single-target mode: once this many GETs have been observed, stop
    #: spacing so the rest of the load proceeds unhindered (keeps late
    #: targets from suffering the retransmission storm).  ``None`` keeps
    #: spacing active for the whole load (the all-objects attack).
    release_spacing_after_request: Optional[int] = None
    #: Size-match tolerance handed to the predictor.
    size_tolerance: int = 400

    def validate(self) -> None:
        """Sanity-check knob ranges."""
        if self.spacing_s < 0 or self.serialize_spacing_s < 0:
            raise ValueError("spacing must be non-negative")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be a probability")
        if self.drop_duration_s < 0:
            raise ValueError("drop_duration_s must be non-negative")
        if (self.trigger_request_index is not None
                and self.trigger_request_index < 1):
            raise ValueError("trigger_request_index must be >= 1")
        if self.phase1_style not in ("spacing", "netem"):
            raise ValueError(f"unknown phase1_style {self.phase1_style!r}")
        if not 0.0 <= self.netem_frac <= 1.0:
            raise ValueError("netem_frac must be in [0, 1]")


def uniform_delay_config(delay_s: float) -> AttackConfig:
    """The Section IV-A adversary: constant delay only (no effect)."""
    return AttackConfig(spacing_s=0.0, serialize_spacing_s=0.0,
                        trigger_request_index=None,
                        throttle_bps_at_trigger=None,
                        uniform_delay_s=delay_s)


def jitter_only_config(spacing_s: float,
                       style: str = "spacing") -> AttackConfig:
    """The Table I adversary: jitter only, no throttle, no drops."""
    return AttackConfig(spacing_s=spacing_s, serialize_spacing_s=spacing_s,
                        phase1_style=style,
                        trigger_request_index=None,
                        throttle_bps_at_trigger=None)


def jitter_plus_throttle_config(spacing_s: float, throttle_bps: float,
                                style: str = "spacing") -> AttackConfig:
    """The Fig. 5 adversary: jitter plus a session-long throttle."""
    return AttackConfig(spacing_s=spacing_s, serialize_spacing_s=spacing_s,
                        phase1_style=style,
                        trigger_request_index=None,
                        throttle_bps_at_trigger=None,
                        throttle_bps_at_start=throttle_bps)


def full_attack_config() -> AttackConfig:
    """The Section V pipeline with the paper's published parameters."""
    return AttackConfig()

"""Attack planning: how much spacing does a target object need?

Section IV-B: "The amount of jitter to be introduced should depend on
the size of the object of interest, the time elapsed since the previous
GET request, and the time interval before the issuance of the next GET
request by the client under normal network conditions."

These helpers compute that amount from the adversary's (coarse) model of
the path: an object is safe from multiplexing when the next request
reaches the server only after the object has fully drained, and the
drain time of a cwnd-limited transfer is a small number of RTTs.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def drain_time_s(object_size: int, rtt_s: float, init_cwnd_bytes: int = 14_000,
                 mss: int = 1400, server_think_s: float = 0.002) -> float:
    """Estimated wire time of an object under slow start.

    Doubling windows: the transfer needs ``ceil(log2(size/cwnd0 + 1))``
    round trips.  A small server think time covers worker spawn and
    first-chunk latency.
    """
    if object_size <= 0:
        raise ValueError("object_size must be positive")
    rounds = max(1, math.ceil(math.log2(object_size / init_cwnd_bytes + 1)))
    return server_think_s + rounds * rtt_s


def required_spacing_s(object_size: int, rtt_s: float,
                       init_cwnd_bytes: int = 14_000,
                       safety_factor: float = 1.5) -> float:
    """Inter-request spacing that serializes an object of this size."""
    return safety_factor * drain_time_s(object_size, rtt_s, init_cwnd_bytes)


def plan_attack(census_sizes: Sequence[int], rtt_s: float,
                trigger_request_index: int = 6,
                init_cwnd_bytes: int = 14_000):
    """Derive a full :class:`~repro.core.phases.AttackConfig` from the
    adversary's knowledge: the site's object census and the path RTT
    (measurable from the TCP/TLS handshake timing at the gateway).

    * phase-1 spacing covers the *median* object (enough to untangle
      typical bursts without holding the queue hostage),
    * the serialize spacing covers the largest *object of interest*
      style target (the upper quartile), with the initial gaps sized
      for a post-reset server still in slow start.
    """
    from repro.core.phases import AttackConfig

    if not census_sizes:
        raise ValueError("empty census")
    sizes = sorted(census_sizes)
    median = sizes[len(sizes) // 2]
    upper = sizes[(3 * len(sizes)) // 4]

    spacing = required_spacing_s(median, rtt_s, init_cwnd_bytes)
    serialize = required_spacing_s(upper, rtt_s, init_cwnd_bytes)
    # Post-reset the server restarts from roughly one segment; size the
    # first gaps for a quarter of the initial window.
    initial_gap = required_spacing_s(upper, rtt_s,
                                     max(init_cwnd_bytes // 4, 2800))
    return AttackConfig(
        spacing_s=round(spacing, 3),
        serialize_spacing_s=round(serialize, 3),
        serialize_initial_gap_s=round(max(initial_gap, 2 * serialize), 3),
        trigger_request_index=trigger_request_index,
    )


def spacing_schedule(natural_gaps_s: Sequence[float],
                     target_gap_s: float) -> List[float]:
    """Per-request hold times achieving ``target_gap_s`` spacing.

    Given the natural inter-request gaps (Table II rows 1-2), request
    ``k`` must be held ``max(0, k*d - sum(natural gaps up to k))`` --
    the paper's "first request delayed by 0 ms, second by d ms, third by
    2d ms" rule, corrected for time the client already spent.
    """
    holds: List[float] = [0.0]
    elapsed = 0.0
    for k, gap in enumerate(natural_gaps_s, start=1):
        elapsed += gap
        holds.append(max(0.0, k * target_gap_s - elapsed))
    return holds

"""Object identity prediction from size estimates.

The paper's adversary carries "a pre-compiled list of image size to
political party mapping which it leverages to complete the attack".
:class:`SizeIdentityMap` is that list; :class:`ObjectPredictor` turns an
ordered stream of size estimates into a predicted object sequence,
de-duplicating the repeated copies that retransmission-driven re-serves
produce (the adversary "cannot discern the retransmitted objects from
the actual ones", so it keeps the first sighting of each identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ObjectEstimate


class SizeIdentityMap:
    """size -> label lookup with tolerance."""

    def __init__(self, sizes_to_labels: Dict[int, str], tolerance: int = 400):
        if not sizes_to_labels:
            raise ValueError("empty size map")
        self._entries: List[Tuple[int, str]] = sorted(sizes_to_labels.items())
        self.tolerance = tolerance
        self._check_separation()

    def _check_separation(self) -> None:
        sizes = [size for size, _ in self._entries]
        for a, b in zip(sizes, sizes[1:]):
            if b - a <= 2 * self.tolerance:
                raise ValueError(
                    f"sizes {a} and {b} are closer than twice the tolerance;"
                    " matching would be ambiguous")

    def identify(self, size: int) -> Optional[str]:
        """The label whose size is within tolerance of ``size``, if any."""
        best_label, best_delta = None, self.tolerance + 1
        for true_size, label in self._entries:
            delta = abs(size - true_size)
            if delta < best_delta:
                best_label, best_delta = label, delta
        return best_label if best_delta <= self.tolerance else None

    @property
    def labels(self) -> List[str]:
        return [label for _, label in self._entries]


@dataclass
class Prediction:
    """One identified object in the encrypted stream."""

    label: str
    estimate: ObjectEstimate


class ObjectPredictor:
    """Ordered identity recovery over size estimates."""

    def __init__(self, size_map: SizeIdentityMap):
        self.size_map = size_map

    def predict(self, estimates: Sequence[ObjectEstimate],
                dedupe: bool = True) -> List[Prediction]:
        """Identify estimates in order; unknown sizes are skipped.

        With ``dedupe`` (the default), repeated sightings of the same
        identity keep only the first -- duplicate copies from the
        retransmission storm land on the same size and would otherwise
        corrupt the sequence.
        """
        predictions: List[Prediction] = []
        seen: set = set()
        for estimate in estimates:
            label = self.size_map.identify(estimate.size)
            if label is None:
                continue
            if dedupe and label in seen:
                continue
            seen.add(label)
            predictions.append(Prediction(label=label, estimate=estimate))
        return predictions

    def predict_sequence(self, estimates: Sequence[ObjectEstimate],
                         expected: Optional[Sequence[str]] = None,
                         ) -> List[str]:
        """Predicted label order, optionally restricted to ``expected``."""
        labels = [p.label for p in self.predict(estimates)]
        if expected is not None:
            allowed = set(expected)
            labels = [label for label in labels if label in allowed]
        return labels

    def predict_burst(self, estimates: Sequence[ObjectEstimate],
                      labels_of_interest: Sequence[str],
                      window_s: float = 2.5) -> List[Prediction]:
        """Find the densest time window of interesting objects.

        The paper's adversary knows (assumption 5) that its objects of
        interest -- the 8 emblem images -- are requested consecutively
        in one tight burst, so under the serializing attack their
        estimates land close together in time.  Isolated spurious
        matches elsewhere in the trace (recovery noise, duplicate
        serves) are excluded by choosing the ``window_s``-wide window
        containing the most *distinct* interesting labels; within the
        window, order is estimate order and repeats keep the first
        sighting.  Ties go to the later window.
        """
        interesting = set(labels_of_interest)
        hits = [(estimate.end_time, self.size_map.identify(estimate.size),
                 estimate) for estimate in estimates]
        hits = [(t, label, est) for t, label, est in hits
                if label in interesting]
        if not hits:
            return []

        best: List[Prediction] = []
        for i in range(len(hits)):
            window_start = hits[i][0]
            seen: set = set()
            run: List[Prediction] = []
            for t, label, est in hits[i:]:
                if t - window_start > window_s:
                    break
                if label in seen:
                    continue
                seen.add(label)
                run.append(Prediction(label=label, estimate=est))
            if len(run) >= len(best):
                best = run
        return best

    def predict_after_anchor(self, estimates: Sequence[ObjectEstimate],
                             anchor_label: str,
                             ) -> List[Prediction]:
        """Identify objects appearing *after* the last ``anchor_label``
        sighting.

        The paper's adversary knows the request sequence (assumption 5):
        the 8 emblem images are requested only after the result HTML
        executes, so everything before the final HTML-sized estimate is
        recovery noise and must not claim an identity.  Falls back to
        the whole sequence when the anchor never appears.
        """
        anchor_at: Optional[int] = None
        for i, estimate in enumerate(estimates):
            if self.size_map.identify(estimate.size) == anchor_label:
                anchor_at = i
        if anchor_at is None:
            return self.predict(estimates)
        anchored = self.predict(estimates[anchor_at:])
        return anchored

"""Shared wire-level predicates for the adversary.

Everything here consumes :class:`~repro.simnet.packet.WireView` only --
the cleartext-derivable information boundary of the paper's adversary.
"""

from __future__ import annotations

from repro.simnet.packet import WireView

#: TLS application-data records at or above this wire length are treated
#: as request (GET) records; smaller ones are control frames
#: (WINDOW_UPDATE 34 B, SETTINGS ack 30 B, RST_STREAM 34 B, PING 38 B).
#: The floor sits just above the 38-byte PING because HPACK dynamic
#: indexing shrinks *repeat* GETs (every header field already in the
#: table) to ~42-46 bytes on the wire -- the post-reset re-requests the
#: serialize phase must space are exactly such records.
REQUEST_RECORD_MIN_WIRE = 40

#: A full-sized DATA record (9-byte frame header + 1370 payload + TLS
#: framing) rides a packet of this size; anything smaller delimits an
#: object tail (Fig. 1).  Derivable on the wire from the modal packet size.
FULL_RECORD_WIRE = 1400


def carries_request(view: WireView) -> bool:
    """True when the packet carries the *start* of a GET-sized record.

    This is the live version of the paper's
    ``ssl.record.content_type == 23`` request counter.  Retransmitted
    copies (inferable from TCP sequence reuse) are excluded so the
    count tracks distinct requests.
    """
    if view.is_retransmit:
        return False
    return any(
        r.is_application_data and r.is_start
        and r.record_wire_len >= REQUEST_RECORD_MIN_WIRE
        for r in view.records
    )


def carries_request_any(view: WireView) -> bool:
    """Like :func:`carries_request` but retransmitted copies match too.

    Used by the spacing policy: held or retransmitted request copies
    must also be spaced, exactly as a netem qdisc would treat them.
    """
    return any(
        r.is_application_data and r.is_start
        and r.record_wire_len >= REQUEST_RECORD_MIN_WIRE
        for r in view.records
    )


def carries_application_data(view: WireView) -> bool:
    """Any TLS application-data bytes at all (the drop-phase matcher)."""
    return view.has_application_data

"""Defenses against the serialization attack.

Implements the classic size-obfuscation defenses from the literature the
paper cites (padding, morphing) and the paper's own future-work
proposals (randomized request order / priorities, server push):

* :mod:`repro.defenses.padding` -- bucket and exponential padding,
* :mod:`repro.defenses.morphing` -- distribution-targeted morphing,
* :mod:`repro.defenses.random_order` -- per-load image-order shuffling,
* :mod:`repro.defenses.push` -- push-the-images-with-the-HTML,
* :mod:`repro.defenses.batching` -- single-record request batching
  (un-spaceable GET bursts).
"""

from repro.defenses.batching import BatchingBrowser
from repro.defenses.morphing import MorphingDefense
from repro.defenses.padding import bucket_padding, exponential_padding
from repro.defenses.push import push_defense_server_config
from repro.defenses.random_order import shuffle_scripted_requests

__all__ = [
    "BatchingBrowser",
    "MorphingDefense",
    "bucket_padding",
    "exponential_padding",
    "push_defense_server_config",
    "shuffle_scripted_requests",
]

"""Request-batching defense (client-side, protocol-level).

The serialization attack's jitter phase works by holding individual
GET-carrying packets apart.  If the client writes all its burst
requests into a *single* TLS record (HTTP/2 allows many HEADERS frames
per record), the whole burst rides one TCP segment and there is nothing
for an on-path spacing queue to separate: the requests reach the server
simultaneously no matter what per-packet delays the gateway applies,
and the multi-worker server multiplexes the responses as usual.

This countermeasure emerged from the reproduction itself: while
calibrating the attack we found that client-side congestion collapse
accidentally coalesced GETs into shared segments and defeated the
spacing (see DESIGN.md).  Done deliberately, it is free -- no padding
overhead, no order shuffling -- though it only protects bursts the
application can batch, and the targeted-drop/reset phase must still be
answered separately (re-requests after a reset must be batched too,
which :class:`BatchingBrowser` does).
"""

from __future__ import annotations

from typing import List

from repro.browser.browser import Browser
from repro.website.sitemap import PlannedRequest


class BatchingBrowser(Browser):
    """A browser that issues each request phase as one batched record."""

    def _schedule_phase(self, requests: List[PlannedRequest],
                        after=None, rerequest: bool = False) -> None:
        pending = [r for r in requests if not r.cached]
        if not pending:
            if after is not None:
                after()
            return

        def fire() -> None:
            if self._finished:
                return
            from repro.browser.browser import RequestEvent
            streams = self.client.request_batch(
                [r.path for r in pending],
                on_complete=self._on_stream_complete)
            for request, stream in zip(pending, streams):
                self._requests.append(RequestEvent(
                    time=self.sim.now, path=request.path,
                    stream_id=stream.stream_id, is_rerequest=rerequest))
                if request.path == self.plan.html.path:
                    stream.on_first_byte = self._on_html_first_byte
                    stream.on_progress = self._on_html_progress
            if after is not None:
                after()

        self.sim.schedule(pending[0].gap_s, fire)

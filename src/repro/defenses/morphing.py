"""Traffic morphing: make every object's size mimic a cover distribution.

Wright et al.'s morphing idea, reduced to the response-size channel:
each served object is padded to a size drawn from a target distribution
conditioned on being at least the true size, so repeated loads of the
same object show different sizes.
"""

from __future__ import annotations

from typing import Callable, Sequence


class MorphingDefense:
    """Sampled-size padding hook.

    ``cover_sizes`` are sizes from the cover distribution (e.g. the
    site's own object census); each serve picks a cover size uniformly
    among those >= the true size (or pads 25 % when none qualifies).
    """

    def __init__(self, cover_sizes: Sequence[int]):
        if not cover_sizes:
            raise ValueError("cover_sizes must be non-empty")
        self.cover_sizes = sorted(cover_sizes)

    def __call__(self, size: int, rng) -> int:
        candidates = [s for s in self.cover_sizes if s >= size]
        if not candidates:
            return int(size * 1.25)
        return rng.choice(candidates)

    def pad_object(self) -> Callable:
        """The hook for :class:`~repro.http2.server.Http2ServerConfig`."""
        return self

"""Padding defenses: destroy size uniqueness at a bandwidth cost.

These are the "expensive" defenses (Section I of the paper) the HTTP/2
multiplexing schemes hoped to replace.  Both return ``pad_object``
hooks for :class:`repro.http2.server.Http2ServerConfig`.
"""

from __future__ import annotations

import math
from typing import Callable


def bucket_padding(bucket_bytes: int = 4096) -> Callable:
    """Pad every object up to the next multiple of ``bucket_bytes``.

    Objects within the same bucket become indistinguishable by size;
    with a 16 KB bucket all eight emblem images collapse into one or two
    size classes and the adversary's size map is useless.
    """
    if bucket_bytes <= 0:
        raise ValueError("bucket_bytes must be positive")

    def pad(size: int, _rng) -> int:
        return int(math.ceil(size / bucket_bytes) * bucket_bytes)

    return pad


def exponential_padding(base: float = 1.3) -> Callable:
    """Pad to the next power of ``base`` (logarithmic size classes).

    Bounded multiplicative overhead with coarser classes for larger
    objects -- the Panchenko-style compromise.
    """
    if base <= 1.0:
        raise ValueError("base must exceed 1")

    def pad(size: int, _rng) -> int:
        exponent = math.ceil(math.log(max(size, 1)) / math.log(base))
        return max(size, int(base ** exponent))

    return pad


def padding_overhead(sizes, pad: Callable, rng=None) -> float:
    """Fractional bandwidth overhead of a padding scheme over ``sizes``."""
    original = sum(sizes)
    padded = sum(pad(s, rng) for s in sizes)
    return (padded - original) / original if original else 0.0

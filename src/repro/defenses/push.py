"""Server-push defense (paper Section VII).

The server pushes all eight emblem images together with the result HTML
in one fixed, canonical order.  The client never requests them, so the
adversary's request spacing has nothing to hold, and the wire order is
constant across users -- the preference order never appears on the wire.
"""

from __future__ import annotations

from typing import Optional

from repro.http2.server import Http2ServerConfig
from repro.http2.settings import Http2Settings
from repro.website.isidewith import HTML_PATH, PARTIES, IsideWithSite


def push_defense_server_config(site: IsideWithSite,
                               base: Optional[Http2ServerConfig] = None,
                               ) -> Http2ServerConfig:
    """Server config that pushes the emblems with the HTML."""
    config = base or Http2ServerConfig()
    config.push_map = {
        HTML_PATH: [site.image_path(party) for party in PARTIES],
    }
    return config


def push_client_settings() -> Http2Settings:
    """Client settings accepting server push."""
    return Http2Settings(enable_push=True)

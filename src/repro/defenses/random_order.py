"""The paper's future-work defense: randomized request order.

Section VII: "the client can opt for a different priority/order of
object delivery every time, thereby confusing the adversary."  Even if
the adversary serializes every image and recovers every size, the wire
order no longer reveals the user's preference order.
"""

from __future__ import annotations

from typing import List

from repro.website.sitemap import PageLoadPlan, PlannedRequest


def shuffle_scripted_requests(plan: PageLoadPlan, rng) -> PageLoadPlan:
    """Shuffle the scripted (JS-driven) request order in place.

    Gap values stay attached to positions, not objects, so the timing
    pattern is unchanged -- only the order of identities moves.  The
    shuffled plan keeps ground truth (``meta['permutation']``) intact
    for evaluation; ``meta['wire_order']`` records what the adversary
    can at best recover.
    """
    scripted: List[PlannedRequest] = list(plan.scripted)
    gaps = [r.gap_s for r in scripted]
    rng.shuffle(scripted)
    plan.scripted = [
        PlannedRequest(path=r.path, gap_s=gap, weight=r.weight, cached=r.cached)
        for r, gap in zip(scripted, gaps)
    ]
    plan.meta["wire_order"] = tuple(r.path for r in plan.scripted)
    return plan

"""Experiment harnesses.

One module per paper artefact (see DESIGN.md's per-experiment index):

* :mod:`repro.experiments.session` -- shared single-session runner.
* :mod:`repro.experiments.runner` -- parallel grid runner with an
  on-disk result cache (see docs/EXPERIMENTS_GUIDE.md).
* :mod:`repro.experiments.workers` -- supervised persistent worker
  pool: heartbeats, crash respawn, poison-cell quarantine (see
  docs/RUNNER.md).
* :mod:`repro.experiments.ledger` -- crash-safe append-only sweep
  ledger for interrupt/resume.
* :mod:`repro.experiments.evaluation` -- success criteria (Section V).
* :mod:`repro.experiments.baseline` -- E1, baseline multiplexing.
* :mod:`repro.experiments.table1` -- E2, jitter sweep (Table I).
* :mod:`repro.experiments.figure5` -- E3, bandwidth sweep (Fig. 5).
* :mod:`repro.experiments.drops` -- E4, targeted-drop reset (IV-D).
* :mod:`repro.experiments.table2` -- E5, full-attack accuracy (Table II).
* :mod:`repro.experiments.size_estimation` -- E6, Fig. 1 micro-benchmark.
* :mod:`repro.experiments.fingerprinting` -- E7a, ML classification.
* :mod:`repro.experiments.defenses_eval` -- E7b, defenses.
* :mod:`repro.experiments.faults_eval` -- EF, attack success under
  injected infrastructure faults (see docs/FAULTS.md).
* :mod:`repro.experiments.ablations` -- scheduler / dup-serve /
  TCP-recovery-generation ablations.
* :mod:`repro.experiments.streaming` -- E8 extension, streaming traffic.
* :mod:`repro.experiments.quic_transfer` -- E9 extension, HTTP/3.
* :mod:`repro.experiments.viz` -- ASCII wire timelines.
"""

from repro.experiments.ledger import SweepLedger, open_ledger
from repro.experiments.runner import (
    GridError,
    GridResult,
    GridTelemetry,
    RunCache,
    RunResult,
    RunSpec,
    run_grid,
)
from repro.experiments.session import (
    SessionConfig,
    SessionResult,
    isidewith_size_map,
    run_session,
    run_sessions,
)
from repro.experiments.workers import WorkerStats

__all__ = ["SessionConfig", "SessionResult", "isidewith_size_map",
           "run_session", "run_sessions",
           "GridError", "GridResult", "GridTelemetry", "RunCache", "RunResult",
           "RunSpec", "run_grid",
           "SweepLedger", "WorkerStats", "open_ledger"]

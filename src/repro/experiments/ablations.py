"""Ablations of the design choices called out in DESIGN.md.

* **Scheduler** -- round-robin (the paper's multiplexing server) vs FIFO
  (multiplexing disabled, as most 2020 deployments ran) vs weighted.
  FIFO serialization makes even the *passive* size estimator work.
* **Duplicate-request service** -- the paper-observed re-serving of
  retransmitted GETs, on vs off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.phases import jitter_only_config
from repro.experiments.results import ResultTable
from repro.experiments.session import SessionConfig, run_session
from repro.http2.server import Http2ServerConfig
from repro.website.isidewith import HTML_PATH, IsideWithSite


@dataclass
class SchedulerPoint:
    """Baseline multiplexing under one scheduler."""

    scheduler: str
    html_nonmux_pct: float
    image_mean_degree_pct: float


@dataclass
class SchedulerAblation:
    n_per_point: int
    points: List[SchedulerPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Ablation: server multiplexing scheduler (no adversary)",
            ["scheduler", "HTML non-mux (%)", "image mean degree (%)"])
        for point in self.points:
            table.add_row(point.scheduler, point.html_nonmux_pct,
                          point.image_mean_degree_pct)
        return table


def run_scheduler_ablation(n_per_point: int = 30, base_seed: int = 0,
                           schedulers=("round-robin", "fifo", "weighted"),
                           ) -> SchedulerAblation:
    """Baseline (no adversary) multiplexing per scheduler."""
    points: List[SchedulerPoint] = []
    for scheduler in schedulers:
        nonmux = 0
        observed = 0
        image_degrees: List[float] = []
        for i in range(n_per_point):
            server = Http2ServerConfig(scheduler=scheduler)
            result = run_session(SessionConfig(seed=base_seed + i,
                                               server=server))
            try:
                nonmux += result.degree(HTML_PATH) == 0.0
                observed += 1
            except KeyError:
                pass
            for party in result.permutation:
                try:
                    image_degrees.append(
                        result.degree(IsideWithSite.image_path(party)))
                except KeyError:
                    pass
        points.append(SchedulerPoint(
            scheduler=scheduler,
            html_nonmux_pct=100.0 * nonmux / max(1, observed),
            image_mean_degree_pct=100.0 * sum(image_degrees)
                                  / max(1, len(image_degrees)),
        ))
    return SchedulerAblation(n_per_point=n_per_point, points=points)


@dataclass
class DupServePoint:
    """Retransmission-driven duplicate serves, mode on vs off."""

    serve_duplicates: bool
    duplicate_serves_per_load: float
    retransmissions_per_load: float


@dataclass
class DupServeAblation:
    n_per_point: int
    jitter_s: float
    points: List[DupServePoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Ablation: duplicate-GET service under jitter",
            ["serve duplicates", "dup serves/load", "retx/load"])
        for point in self.points:
            table.add_row("on" if point.serve_duplicates else "off",
                          point.duplicate_serves_per_load,
                          point.retransmissions_per_load)
        return table


def legacy_tcp_config(**kwargs):
    """A 2020-era loss-recovery stack: no TLP, no RACK pipeline, textbook
    exponential backoff.  Used to show that the paper's observed
    fragility (broken connections under the drop burst, decaying
    late-image success) is a property of the era's stacks."""
    from repro.tcp.connection import TcpConfig
    return TcpConfig(enable_tlp=False, enable_rack=False,
                     rto_backoff_cap=64, **kwargs)


@dataclass
class RecoveryPoint:
    """Attack outcome under one TCP recovery generation."""

    stack: str
    html_serialized_pct: float
    broken_pct: float
    mean_duration_s: float
    image_success_pct: float


@dataclass
class RecoveryAblation:
    n_per_point: int
    points: List[RecoveryPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Ablation: TCP loss-recovery generation under the full attack",
            ["stack", "HTML serialized (%)", "broken (%)",
             "load time (s)", "image sequence (%)"])
        for point in self.points:
            table.add_row(point.stack, point.html_serialized_pct,
                          point.broken_pct, point.mean_duration_s,
                          point.image_success_pct)
        return table


def run_recovery_ablation(n_per_point: int = 20,
                          base_seed: int = 0) -> RecoveryAblation:
    """Modern (TLP/RACK/F-RTO) vs legacy recovery under the attack."""
    from repro.core.phases import AttackConfig
    from repro.experiments.evaluation import sequence_accuracy
    from repro.tcp.connection import TcpConfig

    points: List[RecoveryPoint] = []
    for stack, server_tcp, client_tcp in (
            ("modern", None, None),
            ("legacy-2020",
             legacy_tcp_config(deliver_duplicates=True,
                               initial_ssthresh_bytes=48_000),
             legacy_tcp_config())):
        serialized = 0
        broken = 0
        duration = 0.0
        sequence = 0.0
        for i in range(n_per_point):
            result = run_session(SessionConfig(
                seed=base_seed + i, attack=AttackConfig(),
                server_tcp=server_tcp, client_tcp=client_tcp))
            serialized += result.serialized(HTML_PATH)
            broken += result.broken
            duration += result.duration_s
            sequence += sequence_accuracy(result)
        points.append(RecoveryPoint(
            stack=stack,
            html_serialized_pct=100.0 * serialized / n_per_point,
            broken_pct=100.0 * broken / n_per_point,
            mean_duration_s=duration / n_per_point,
            image_success_pct=100.0 * sequence / n_per_point,
        ))
    return RecoveryAblation(n_per_point=n_per_point, points=points)


def run_dupserve_ablation(n_per_point: int = 30, base_seed: int = 0,
                          jitter_s: float = 0.1) -> DupServeAblation:
    """High-jitter runs with duplicate service on vs off."""
    points: List[DupServePoint] = []
    for mode in (True, False):
        dup_serves = 0
        retx = 0
        for i in range(n_per_point):
            server = Http2ServerConfig(serve_duplicate_requests=mode)
            result = run_session(SessionConfig(
                seed=base_seed + i, server=server,
                attack=jitter_only_config(jitter_s)))
            dup_serves += sum(
                conn.duplicate_requests_served
                for conn in result.server.connections)
            retx += result.retransmissions
        points.append(DupServePoint(
            serve_duplicates=mode,
            duplicate_serves_per_load=dup_serves / n_per_point,
            retransmissions_per_load=retx / n_per_point,
        ))
    return DupServeAblation(n_per_point=n_per_point, jitter_s=jitter_s,
                            points=points)

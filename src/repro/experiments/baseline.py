"""E1 -- baseline multiplexing without the adversary (Section IV).

Paper observations this experiment reproduces:

* the result HTML's degree of multiplexing is ~98 % on loads where it
  multiplexes at all,
* a minority of loads (about a third -- warm caches) see it arrive
  un-multiplexed, which is Table I's 32 % baseline,
* the emblem images' degrees range from 80 to 99 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.results import ResultTable
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH, IsideWithSite


@dataclass
class BaselineResult:
    """Aggregated baseline multiplexing statistics."""

    n: int
    html_nonmux_pct: float
    html_degree_when_muxed: float
    image_mean_degree: float
    image_high_mux_pct: float
    image_nonmux_pct: float
    warm_pct: float
    mean_retransmissions: float

    def table(self) -> ResultTable:
        table = ResultTable(
            "E1: baseline multiplexing (no adversary)",
            ["metric", "measured", "paper"])
        table.add_row("HTML non-multiplexed loads (%)",
                      self.html_nonmux_pct, "32")
        table.add_row("HTML degree when multiplexed (%)",
                      self.html_degree_when_muxed * 100, "~98")
        table.add_row("image mean degree (%)",
                      self.image_mean_degree * 100, "80-99")
        table.add_row("images with degree > 0.8 (%)",
                      self.image_high_mux_pct, "most")
        table.add_row("loads with warm cache (%)", self.warm_pct, "n/a")
        return table


def run_baseline(n_loads: int = 100, base_seed: int = 0) -> BaselineResult:
    """Run ``n_loads`` clean sessions and aggregate degrees."""
    html_degrees: List[float] = []
    image_degrees: List[float] = []
    warm = 0
    retx = 0
    for i in range(n_loads):
        result = run_session(SessionConfig(seed=base_seed + i))
        warm += result.warm
        retx += result.retransmissions
        try:
            html_degrees.append(result.degree(HTML_PATH))
        except KeyError:
            pass
        for party in result.permutation:
            try:
                image_degrees.append(
                    result.degree(IsideWithSite.image_path(party)))
            except KeyError:
                pass

    muxed = [d for d in html_degrees if d > 0]
    return BaselineResult(
        n=n_loads,
        html_nonmux_pct=100.0 * sum(d == 0.0 for d in html_degrees)
                        / max(1, len(html_degrees)),
        html_degree_when_muxed=(sum(muxed) / len(muxed)) if muxed else 0.0,
        image_mean_degree=(sum(image_degrees) / len(image_degrees))
                          if image_degrees else 0.0,
        image_high_mux_pct=100.0 * sum(d > 0.8 for d in image_degrees)
                           / max(1, len(image_degrees)),
        image_nonmux_pct=100.0 * sum(d == 0.0 for d in image_degrees)
                         / max(1, len(image_degrees)),
        warm_pct=100.0 * warm / n_loads,
        mean_retransmissions=retx / n_loads,
    )

"""``repro chaos`` -- fuzz sessions with invariant monitors armed.

The fuzzer draws :class:`repro.invariants.ChaosSpec`s from a master
seed (random topologies x session configs x fault plans x defense
stacks), runs each as one monitored session through the parallel
runner, and -- when a conservation law breaks -- minimizes the failing
spec with greedy delta debugging
(:func:`repro.invariants.shrink_candidates`) down to a small reproducer
written to disk.  A violation is a *finding*, not a grid death: cells
catch :class:`repro.invariants.InvariantViolation` and return it as
structured metrics, so one broken law never hides another.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.phases import AttackConfig
from repro.defenses.morphing import MorphingDefense
from repro.defenses.padding import bucket_padding
from repro.defenses.random_order import shuffle_scripted_requests
from repro.experiments.runner import GridTelemetry, RunCache, RunSpec, run_grid
from repro.experiments.session import SessionConfig, run_session
from repro.faults.plan import FaultPlan
from repro.http2.server import Http2ServerConfig
from repro.http2.settings import Http2Settings
from repro.invariants import ChaosSpec, InvariantViolation, generate_spec, \
    shrink_candidates
from repro.browser.browser import BrowserConfig
from repro.simnet.topology import TopologyConfig
from repro.website.objects import WebObject
from repro.website.sitemap import PageLoadPlan, PlannedRequest, Site

#: Runner cell for one fuzzed session.
CELL = "repro.experiments.chaos:run_cell"

#: Path of the synthetic page's document.
HTML_PATH = "/index.html"


class ChaosSite(Site):
    """Synthetic site shaped by a spec: one HTML page plus N objects."""

    def __init__(self, html_size: int, object_sizes: Sequence[int]):
        super().__init__("chaos", "chaos.test")
        self.add(WebObject(HTML_PATH, html_size, content_type="text/html",
                           cacheable=False))
        for i, size in enumerate(object_sizes):
            self.add(WebObject(f"/obj/{i}", size))

    def plan_load(self, rng, page_id: int = 0) -> PageLoadPlan:
        """One page load: HTML, then the objects split across the
        parser-triggered and script-triggered phases (so random-order
        and batching defenses have something to act on)."""
        paths = [p for p in sorted(self.objects) if p != HTML_PATH]
        head = [PlannedRequest(p, gap_s=rng.uniform(0.0002, 0.004))
                for p in paths[::2]]
        scripted = [PlannedRequest(p, gap_s=rng.uniform(0.0002, 0.004))
                    for p in paths[1::2]]
        return PageLoadPlan(
            initial=[],
            html=PlannedRequest(HTML_PATH, weight=32),
            head_resources=head,
            scripted=scripted,
            exec_delay_s=rng.uniform(0.01, 0.06),
        )


def _session_config(spec: ChaosSpec) -> SessionConfig:
    """Assemble the monitored session a spec describes."""
    topology = TopologyConfig(
        client_bandwidth_bps=spec.client_bandwidth_bps,
        client_propagation_s=spec.client_propagation_s,
        server_propagation_s=spec.server_propagation_s,
        natural_jitter_mean_s=spec.natural_jitter_mean_s,
        natural_loss_rate=spec.natural_loss_rate,
        buffer_bytes=spec.buffer_bytes,
    )
    server = Http2ServerConfig(scheduler=spec.scheduler)
    config = SessionConfig(
        seed=spec.seed,
        topology=topology,
        server=server,
        browser=BrowserConfig(max_reconnects=spec.max_reconnects),
        attack=AttackConfig() if spec.attack else None,
        time_limit_s=spec.time_limit_s,
        site_factory=lambda: ChaosSite(spec.html_size, spec.object_sizes),
        client_settings=Http2Settings(
            initial_window_size=spec.initial_window_size),
        faults=[dict(event) for event in spec.fault_events] or None,
        monitors=True,
    )
    if spec.defense == "padding":
        server.pad_object = bucket_padding(16_384)
    elif spec.defense == "morphing":
        sizes = sorted(set(spec.object_sizes)) or [spec.html_size]
        server.pad_object = MorphingDefense(sizes).pad_object()
    elif spec.defense == "random-order":
        config.plan_transform = shuffle_scripted_requests
    elif spec.defense == "batching":
        from repro.defenses.batching import BatchingBrowser
        config.browser_class = BatchingBrowser
    elif spec.defense != "none":
        raise ValueError(f"unknown defense {spec.defense!r}")
    return config


def run_cell(seed: int, spec: dict) -> dict:
    """One monitored fuzzed session (JSON-able metrics).

    An invariant violation is reported *in* the metrics -- the cell
    still succeeds, so the grid completes and every violation across
    the campaign is visible, not just the first.
    """
    chaos_spec = ChaosSpec.from_jsonable(spec)
    try:
        result = run_session(_session_config(chaos_spec))
    except InvariantViolation as exc:
        violation = exc.violation
        return {
            "ok": False,
            "violation": violation.to_jsonable(),
            "broken_load": True,
            "sim_time_s": violation.at_s,
            "processed_events": 0,
        }
    return {
        "ok": True,
        "violation": None,
        "broken_load": bool(result.broken),
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


@dataclass
class ChaosFinding:
    """One violation, its minimized reproducer, and where it was saved."""

    index: int
    violation: dict
    spec: ChaosSpec
    minimized: ChaosSpec
    shrink_steps: List[str] = field(default_factory=list)
    shrink_runs: int = 0
    reproducer_path: Optional[str] = None


@dataclass
class ChaosResult:
    """Outcome of one chaos campaign."""

    seeds: int
    findings: List[ChaosFinding]
    #: Cells that died for non-invariant reasons (crash/timeout), as
    #: ``(index, error)`` pairs -- still a failed campaign.
    crashes: List[tuple]
    telemetry: Optional[GridTelemetry] = None

    @property
    def clean(self) -> bool:
        return not self.findings and not self.crashes


def shrink_failure(spec: ChaosSpec, violation_code: str,
                   budget: int = 200) -> tuple:
    """Greedy delta debugging: keep any single-step reduction that still
    reproduces ``violation_code``, restart from it, stop at a fixpoint
    or after ``budget`` session runs.  Returns
    ``(minimized_spec, steps_taken, runs_spent)``.
    """
    current = spec
    steps: List[str] = []
    runs = 0
    progress = True
    while progress and runs < budget:
        progress = False
        for description, candidate in shrink_candidates(current):
            if runs >= budget:
                break
            runs += 1
            try:
                metrics = run_cell(candidate.seed, candidate.to_jsonable())
            except Exception:
                continue  # candidate crashed differently; not a reduction
            violation = metrics.get("violation")
            if violation is not None and violation["code"] == violation_code:
                current = candidate
                steps.append(description)
                progress = True
                break
    return current, steps, runs


def write_reproducer(out_dir: Path, finding: ChaosFinding) -> Path:
    """Persist one minimized reproducer spec as JSON."""
    out_dir.mkdir(parents=True, exist_ok=True)
    code = finding.violation["code"].lower().replace("_", "-")
    path = out_dir / f"repro-{code}-{finding.index:04d}.json"
    payload = {
        "violation": finding.violation,
        "spec": finding.minimized.to_jsonable(),
        "original_spec": finding.spec.to_jsonable(),
        "shrink_steps": finding.shrink_steps,
        "shrink_runs": finding.shrink_runs,
        "replay": f"python -m repro chaos --replay {path}",
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def run_chaos(seeds: int = 25, master_seed: int = 0,
              plan: Optional[FaultPlan] = None,
              shrink: bool = True, shrink_budget: int = 200,
              out_dir: str = "chaos-reproducers",
              jobs: Optional[int] = None, cache: Optional[RunCache] = None,
              cell_timeout_s: Optional[float] = None,
              retries: int = 0, workers: Optional[int] = None,
              ledger=None) -> ChaosResult:
    """Run one chaos campaign; see module docstring."""
    chaos_specs = [generate_spec(master_seed, i) for i in range(seeds)]
    if plan is not None:
        events = tuple(plan.sorted().to_jsonable())
        chaos_specs = [ChaosSpec.from_jsonable(
            dict(s.to_jsonable(), fault_events=list(events)))
            for s in chaos_specs]

    grid_specs = [RunSpec.make(CELL, s.seed, spec=s.to_jsonable())
                  for s in chaos_specs]
    telemetry = GridTelemetry()
    grid = run_grid(grid_specs, jobs=jobs, cache=cache,
                    timeout_s=cell_timeout_s, retries=retries,
                    workers=workers, ledger=ledger, strict=False)
    telemetry.add(grid)

    findings: List[ChaosFinding] = []
    crashes: List[tuple] = []
    for index, result in enumerate(grid.results):
        if result.failed:
            crashes.append((index, result.error))
            continue
        violation = result.metrics.get("violation")
        if violation is None:
            continue
        finding = ChaosFinding(index=index, violation=violation,
                               spec=chaos_specs[index],
                               minimized=chaos_specs[index])
        if shrink:
            minimized, steps, runs = shrink_failure(
                chaos_specs[index], violation["code"], budget=shrink_budget)
            finding.minimized = minimized
            finding.shrink_steps = steps
            finding.shrink_runs = runs
        finding.reproducer_path = str(
            write_reproducer(Path(out_dir), finding))
        findings.append(finding)

    return ChaosResult(seeds=seeds, findings=findings, crashes=crashes,
                       telemetry=telemetry)


# -- CLI ------------------------------------------------------------------


def _load_fault_plan(path: str) -> FaultPlan:
    """Parse a fault-plan JSON file; raises ValueError with a one-line
    reason on anything malformed."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise ValueError(f"{path}: a fault plan is a JSON *list* of "
                         f"events, got {type(data).__name__}")
    try:
        return FaultPlan.from_jsonable(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from exc


def _load_replay_spec(path: str) -> ChaosSpec:
    """Parse a reproducer file (or bare spec JSON); one-line errors."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if isinstance(data, dict) and "spec" in data:
        data = data["spec"]
    try:
        return ChaosSpec.from_jsonable(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path} is not a chaos spec: {exc}") from exc


def run_chaos_command(args, jobs: Optional[int] = None,
                      cache: Optional[RunCache] = None,
                      cell_timeout_s: Optional[float] = None,
                      retries: int = 0,
                      workers: Optional[int] = None,
                      ledger=None) -> int:
    """Back the ``repro chaos`` subcommand.  Exit codes: 0 all laws
    held, 1 violation or crashed cell, 2 usage error."""
    if args.seeds <= 0:
        print(f"error: --seeds must be a positive integer, got {args.seeds}",
              file=_stderr())
        return 2
    if args.budget <= 0:
        print(f"error: --budget must be a positive integer, got {args.budget}",
              file=_stderr())
        return 2

    plan: Optional[FaultPlan] = None
    if args.plan is not None:
        try:
            plan = _load_fault_plan(args.plan)
        except ValueError as exc:
            print(f"error: invalid fault plan: {exc}", file=_stderr())
            return 2

    if args.replay is not None:
        try:
            spec = _load_replay_spec(args.replay)
        except ValueError as exc:
            print(f"error: invalid reproducer: {exc}", file=_stderr())
            return 2
        metrics = run_cell(spec.seed, spec.to_jsonable())
        violation = metrics.get("violation")
        if violation is None:
            print(f"replay of {args.replay}: all invariants held "
                  f"(sim_time={metrics['sim_time_s']:.3f}s)")
            return 0
        print(f"replay of {args.replay}: [{violation['code']}] "
              f"t={violation['at_s']:.6f}s {violation['where']}: "
              f"{violation['message']}")
        return 1

    result = run_chaos(seeds=args.seeds, master_seed=args.seed, plan=plan,
                       shrink=not args.no_shrink, shrink_budget=args.budget,
                       out_dir=args.out, jobs=jobs, cache=cache,
                       cell_timeout_s=cell_timeout_s, retries=retries,
                       workers=workers, ledger=ledger)

    for finding in result.findings:
        violation = finding.violation
        print(f"VIOLATION #{finding.index}: [{violation['code']}] "
              f"t={violation['at_s']:.6f}s {violation['where']}: "
              f"{violation['message']}")
        if finding.shrink_steps:
            print(f"  shrunk in {finding.shrink_runs} runs: "
                  + "; ".join(finding.shrink_steps))
        print(f"  reproducer: {finding.reproducer_path}")
    for index, error in result.crashes:
        print(f"CRASHED cell #{index}: {error}")

    if result.telemetry is not None:
        print(result.telemetry.line())
    if result.clean:
        print(f"chaos: {result.seeds} seeds, all invariants held")
        return 0
    print(f"chaos: {len(result.findings)} violation(s), "
          f"{len(result.crashes)} crash(es) across {result.seeds} seeds")
    return 1


def _stderr():
    import sys
    return sys.stderr

"""Fingerprinting dataset builders (run sessions, emit feature matrices).

Two experiment families:

* **Sequence recovery** (:func:`build_first_party_dataset`) -- the
  paper's actual target: can a classifier read the user's *top party*
  from the encrypted trace?  Without the attack, multiplexing garbles
  the object sizes and accuracy sits near chance (1/8); with the
  serialization attack the first emblem image is directly readable.
* **Page fingerprinting** (:func:`build_page_dataset`) -- the classic
  HTTP/1.x attack from the paper's related work, run against our H1
  and H2 stacks over a generated site.

These builders *drive simulations*, which makes them experiments-layer
code; the pure feature/label container they fill
(:class:`repro.analysis.fingerprint.FingerprintDataset`) and the
classifiers that consume it stay in the analysis layer.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.features import (
    TraceFeatureExtractor,
    known_size_rank_feature,
)
from repro.analysis.fingerprint import FingerprintDataset
from repro.browser.browser import BrowserConfig
from repro.core.phases import AttackConfig
from repro.experiments.session import SessionConfig, run_session
from repro.http1.client import Http1Client
from repro.http1.server import Http1Server
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.website.generator import RandomSiteBuilder
from repro.website.isidewith import PARTIES, PARTY_IMAGE_SIZES


def build_first_party_dataset(n_loads: int = 48, mode: str = "attack",
                              base_seed: int = 100) -> FingerprintDataset:
    """Traces of survey loads labelled with the user's first party.

    ``mode``:

    * ``"attack"`` -- full serialization attack; features are the
      decoded burst positions (the adversary's canonical decoding, so
      the classifier measures how learnable the decoded signal is).
    * ``"jitter"`` -- jitter-only adversary: traces are *partly*
      multiplexed, the regime the paper's future work targets;
      features are size-map-anchored ranks.
    * ``"none"`` -- no adversary (the privacy H2 was hoped to give).
    """
    if mode not in ("attack", "jitter", "none"):
        raise ValueError(f"unknown mode {mode!r}")
    from repro.core.phases import jitter_only_config

    rows: List[np.ndarray] = []
    labels: List[str] = []
    decoded_hits = 0
    party_sizes = [PARTY_IMAGE_SIZES[p] for p in PARTIES]
    for i in range(n_loads):
        if mode == "attack":
            attack_config = AttackConfig()
        elif mode == "jitter":
            attack_config = jitter_only_config(0.05)
        else:
            attack_config = None
        config = SessionConfig(seed=base_seed + i, attack=attack_config)
        result = run_session(config)
        if mode == "attack" and result.report is not None:
            # The adversary's decoded burst: position of each party in
            # the predicted sequence (9 = not recovered).
            sequence = [label for label in result.report.predicted_labels
                        if label != "html"]
            positions = {label: j + 1 for j, label in enumerate(sequence)}
            rows.append(np.array([float(positions.get(p, 9))
                                  for p in PARTIES]))
            if sequence and sequence[0] == result.permutation[0]:
                decoded_hits += 1
        else:
            since = 0.0
            if result.report is not None:
                since = result.report.phase_times.get("serialize", 0.0)
            rows.append(known_size_rank_feature(result.trace, party_sizes,
                                                since=since))
        labels.append(result.permutation[0])
    return FingerprintDataset(
        X=np.vstack(rows), y=np.array(labels),
        meta={"mode": mode, "n_loads": n_loads,
              "decoded_first_party_accuracy": decoded_hits / n_loads
              if mode == "attack" else None},
    )


def build_page_dataset(n_pages: int = 8, loads_per_page: int = 6,
                       protocol: str = "h2", base_seed: int = 300,
                       ) -> FingerprintDataset:
    """Page-load traces over a generated site, labelled by page."""
    if protocol not in ("h1", "h2"):
        raise ValueError(f"unknown protocol {protocol!r}")
    extractor = TraceFeatureExtractor()
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for page_id in range(n_pages):
        for rep in range(loads_per_page):
            seed = base_seed + page_id * 101 + rep
            if protocol == "h2":
                trace = _h2_page_trace(page_id, seed, n_pages)
            else:
                trace = _h1_page_trace(page_id, seed, n_pages)
            rows.append(extractor.extract(trace))
            labels.append(page_id)
    return FingerprintDataset(
        X=np.vstack(rows), y=np.array(labels),
        meta={"protocol": protocol, "n_pages": n_pages,
              "loads_per_page": loads_per_page},
    )


def _h2_page_trace(page_id: int, seed: int, n_pages: int):
    config = SessionConfig(
        seed=seed,
        site_factory=lambda: RandomSiteBuilder(n_pages=n_pages).build(),
        page_id=page_id,
        browser=BrowserConfig(page_timeout_s=20.0),
        time_limit_s=25.0,
    )
    return run_session(config).trace


def _h1_page_trace(page_id: int, seed: int, n_pages: int):
    """One HTTP/1.1 page load: HTML first, embedded objects pipelined."""
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim, TopologyConfig())
    site = RandomSiteBuilder(n_pages=n_pages).build()
    Http1Server(sim, topo.server, site)
    client = Http1Client(sim, topo.client, "server")
    page = site.pages[page_id]
    state = {"done": 0, "total": 1 + len(page.embedded)}

    def on_complete(_exchange) -> None:
        state["done"] += 1

    def on_html(_exchange) -> None:
        state["done"] += 1
        for path in page.embedded:
            client.request(path, on_complete=on_complete)

    client.connect(lambda: client.request(page.html_path, on_complete=on_html))
    while state["done"] < state["total"] and sim.now < 20.0:
        sim.run(until=sim.now + 0.5)
    sim.run(until=sim.now + 0.3)
    return topo.trace

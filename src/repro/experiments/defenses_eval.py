"""E7b -- defenses against the serialization attack (Section VII).

Runs the full attack against: no defense, bucket padding, morphing,
randomized image order (the paper's proposal), and server push, and
reports how much of the preference order survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.phases import AttackConfig
from repro.defenses.morphing import MorphingDefense
from repro.defenses.padding import bucket_padding
from repro.defenses.push import push_client_settings, push_defense_server_config
from repro.defenses.random_order import shuffle_scripted_requests
from repro.experiments.evaluation import sequence_accuracy
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session
from repro.http2.server import Http2ServerConfig
from repro.website.isidewith import (
    HTML_PATH,
    PARTY_IMAGE_SIZES,
    build_isidewith_site,
)

#: Runner cell for one (seed, defense) grid point.
CELL = "repro.experiments.defenses_eval:run_cell"


@dataclass
class DefenseOutcome:
    """Attack effectiveness under one defense."""

    name: str
    sequence_accuracy_pct: float
    html_identified_pct: float
    load_success_pct: float


@dataclass
class DefensesResult:
    """All defenses side by side."""

    n_per_defense: int
    outcomes: List[DefenseOutcome]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            "E7b: attack vs defenses (sequence recovery)",
            ["defense", "order recovered (%)", "HTML identified (%)",
             "page loads ok (%)"])
        for outcome in self.outcomes:
            table.add_row(outcome.name, outcome.sequence_accuracy_pct,
                          outcome.html_identified_pct,
                          outcome.load_success_pct)
        return table


def _session_config(seed: int, defense: str) -> SessionConfig:
    config = SessionConfig(seed=seed, attack=AttackConfig())
    if defense == "padding":
        server = Http2ServerConfig()
        server.pad_object = bucket_padding(16_384)
        config.server = server
    elif defense == "morphing":
        server = Http2ServerConfig()
        server.pad_object = MorphingDefense(
            sorted(PARTY_IMAGE_SIZES.values())).pad_object()
        config.server = server
    elif defense == "random-order":
        config.plan_transform = shuffle_scripted_requests
    elif defense == "push":
        site = build_isidewith_site()
        config.server = push_defense_server_config(site)
        config.client_settings = push_client_settings()
    elif defense == "batching":
        from repro.defenses.batching import BatchingBrowser
        config.browser_class = BatchingBrowser
    elif defense != "none":
        raise ValueError(f"unknown defense {defense!r}")
    return config


DEFENSES = ("none", "padding", "morphing", "random-order", "push",
            "batching")


def run_cell(seed: int, defense: str) -> dict:
    """One attacked load under one defense (JSON-able metrics).

    The spec carries the defense *name*, never the configured
    :class:`SessionConfig` -- the config holds callables and server
    objects that neither pickle for workers nor hash for the cache.
    """
    result = run_session(_session_config(seed, defense))
    identified = (result.report is not None
                  and "html" in result.report.predicted_labels)
    return {
        "sequence_accuracy": sequence_accuracy(result),
        "html_identified": bool(identified),
        "load_ok": bool(result.load is not None and result.load.success),
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_defenses(n_per_defense: int = 30, base_seed: int = 0,
                 defenses: Sequence[str] = DEFENSES,
                 jobs: Optional[int] = None,
                 cache: Optional[RunCache] = None,
                 cell_timeout_s: Optional[float] = None,
                 retries: int = 0,
                 workers: Optional[int] = None,
                 ledger=None) -> DefensesResult:
    """Run the attack under each defense."""
    specs = [RunSpec.make(CELL, base_seed + i, defense=defense)
             for defense in defenses for i in range(n_per_defense)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)

    by_defense: Dict[str, List[dict]] = {d: [] for d in defenses}
    for result in grid:
        by_defense[result.spec.kwargs()["defense"]].append(result.metrics)

    outcomes: List[DefenseOutcome] = []
    for defense in defenses:
        cells = by_defense[defense]
        outcomes.append(DefenseOutcome(
            name=defense,
            sequence_accuracy_pct=100.0 * sum(c["sequence_accuracy"]
                                              for c in cells)
                                  / n_per_defense,
            html_identified_pct=100.0 * sum(c["html_identified"]
                                            for c in cells) / n_per_defense,
            load_success_pct=100.0 * sum(c["load_ok"]
                                         for c in cells) / n_per_defense,
        ))
    return DefensesResult(n_per_defense=n_per_defense, outcomes=outcomes,
                          telemetry=GridTelemetry().add(grid))

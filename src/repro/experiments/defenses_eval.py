"""E7b -- defenses against the serialization attack (Section VII).

Runs the full attack against: no defense, bucket padding, morphing,
randomized image order (the paper's proposal), and server push, and
reports how much of the preference order survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.phases import AttackConfig
from repro.defenses.morphing import MorphingDefense
from repro.defenses.padding import bucket_padding
from repro.defenses.push import push_client_settings, push_defense_server_config
from repro.defenses.random_order import shuffle_scripted_requests
from repro.experiments.evaluation import sequence_accuracy
from repro.experiments.results import ResultTable
from repro.experiments.session import SessionConfig, run_session
from repro.http2.server import Http2ServerConfig
from repro.website.isidewith import (
    HTML_PATH,
    PARTY_IMAGE_SIZES,
    build_isidewith_site,
)


@dataclass
class DefenseOutcome:
    """Attack effectiveness under one defense."""

    name: str
    sequence_accuracy_pct: float
    html_identified_pct: float
    load_success_pct: float


@dataclass
class DefensesResult:
    """All defenses side by side."""

    n_per_defense: int
    outcomes: List[DefenseOutcome]

    def table(self) -> ResultTable:
        table = ResultTable(
            "E7b: attack vs defenses (sequence recovery)",
            ["defense", "order recovered (%)", "HTML identified (%)",
             "page loads ok (%)"])
        for outcome in self.outcomes:
            table.add_row(outcome.name, outcome.sequence_accuracy_pct,
                          outcome.html_identified_pct,
                          outcome.load_success_pct)
        return table


def _session_config(seed: int, defense: str) -> SessionConfig:
    config = SessionConfig(seed=seed, attack=AttackConfig())
    if defense == "padding":
        server = Http2ServerConfig()
        server.pad_object = bucket_padding(16_384)
        config.server = server
    elif defense == "morphing":
        server = Http2ServerConfig()
        server.pad_object = MorphingDefense(
            sorted(PARTY_IMAGE_SIZES.values())).pad_object()
        config.server = server
    elif defense == "random-order":
        config.plan_transform = shuffle_scripted_requests
    elif defense == "push":
        site = build_isidewith_site()
        config.server = push_defense_server_config(site)
        config.client_settings = push_client_settings()
    elif defense == "batching":
        from repro.defenses.batching import BatchingBrowser
        config.browser_class = BatchingBrowser
    elif defense != "none":
        raise ValueError(f"unknown defense {defense!r}")
    return config


DEFENSES = ("none", "padding", "morphing", "random-order", "push",
            "batching")


def run_defenses(n_per_defense: int = 30, base_seed: int = 0,
                 defenses=DEFENSES) -> DefensesResult:
    """Run the attack under each defense."""
    outcomes: List[DefenseOutcome] = []
    for defense in defenses:
        sequence_total = 0.0
        html_identified = 0
        load_ok = 0
        for i in range(n_per_defense):
            result = run_session(_session_config(base_seed + i, defense))
            sequence_total += sequence_accuracy(result)
            if result.report is not None:
                html_identified += "html" in result.report.predicted_labels
            load_ok += (result.load is not None and result.load.success)
        outcomes.append(DefenseOutcome(
            name=defense,
            sequence_accuracy_pct=100.0 * sequence_total / n_per_defense,
            html_identified_pct=100.0 * html_identified / n_per_defense,
            load_success_pct=100.0 * load_ok / n_per_defense,
        ))
    return DefensesResult(n_per_defense=n_per_defense, outcomes=outcomes)

"""DOS -- slow-HTTP/2 attacks vs. server hardening vs. detection.

Sweeps attack kind x intensity x server profile over the runner and
answers three questions per cell:

1. **Exhaustion** -- does the attack drive the *open* (unhardened)
   server out of a finite resource (accept slots, stream slots, or
   control-frame processing)?
2. **Goodput** -- what fraction of a legitimate page load, started
   ``LEGIT_START_S`` into the attack, still completes?  The hardened
   profile must keep this >= 90%.
3. **Detection** -- does the passive
   :class:`~repro.invariants.dos_detector.DosDetector` flag the attack
   in sim time, and stay silent on the legitimate-slow-client control
   (kind ``"none"`` on a 2 Mbps / 150 ms access link, the traffic shape
   naive timeouts misclassify)?

Attack and legitimate client share one host TCP stack (a host carries a
single transport), exactly like malware riding a victim's machine.  The
cell's :class:`~repro.attacks.spec.AttackSpec` rides inside the
:class:`~repro.experiments.runner.RunSpec` params, so it is hashed into
the cache key like a fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks import ATTACK_KINDS, AttackSpec, make_agent
from repro.browser.browser import Browser, BrowserConfig
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.http2.client import Http2Client, Http2ClientConfig
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.invariants import DosDetector
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpConfig
from repro.website.isidewith import build_isidewith_site

#: Runner cell for one (seed, kind, profile, intensity) grid point.
CELL = "repro.experiments.dos_eval:run_cell"

#: Server profiles swept by the experiment.
PROFILES = ("open", "hardened")

#: Control "kind": no attack, legitimate client on a slow access link.
CONTROL_KIND = "none"

#: Accept-table size: small enough that a slow-preamble attack can
#: plausibly fill it within one cell.
MAX_CONNECTIONS = 8

#: When the legitimate load starts, relative to the attack at t=0.
LEGIT_START_S = 3.0

#: How long each attack applies pressure.
ATTACK_DURATION_S = 12.0

#: Simulated time budget after the legitimate load starts.
TAIL_S = 15.0


def server_config(profile: str) -> Http2ServerConfig:
    """The swept server profiles.

    Hardened budgets sit deliberately *above* the detector thresholds
    (detect-then-shield) and *below* every attack intensity swept here;
    see docs/DOS.md for the full ladder.
    """
    if profile == "open":
        return Http2ServerConfig(max_connections=MAX_CONNECTIONS)
    if profile == "hardened":
        return Http2ServerConfig(
            max_connections=MAX_CONNECTIONS,
            handshake_timeout_s=2.5,
            preamble_timeout_s=2.5,
            header_timeout_s=3.0,
            body_progress_timeout_s=1.0,
            max_pings_per_s=30.0,
            max_settings_per_s=15.0,
            max_resets_per_s=25.0,
            max_open_streams=32,
            max_queued_frames=2000,
            reap_slowest_at_capacity=True,
        )
    raise ValueError(f"unknown server profile {profile!r} "
                     f"(expected one of {PROFILES})")


def attack_spec(kind: str, intensity: float) -> AttackSpec:
    """Scale one attack kind by ``intensity`` (1.0 = reference load)."""
    if kind == "slow_preamble":
        return AttackSpec(kind, duration_s=ATTACK_DURATION_S,
                          connections=max(1, round(MAX_CONNECTIONS
                                                   * intensity)),
                          pace_s=0.5)
    if kind in ("slow_headers", "slow_post"):
        return AttackSpec(kind, duration_s=ATTACK_DURATION_S,
                          streams=max(1, round(160 * intensity)),
                          pace_s=0.02 if kind == "slow_headers" else 1.25)
    rates = {"ping_flood": 120.0, "settings_flood": 80.0,
             "stream_reset_churn": 60.0}
    return AttackSpec(kind, duration_s=ATTACK_DURATION_S,
                      rate_per_s=rates[kind] * intensity)


def _exhausted(server: Http2Server, kind: str) -> bool:
    """Kind-specific open-server resource-exhaustion witness."""
    if kind == "slow_preamble":
        return server.refused_connections > 0
    if kind in ("slow_headers", "slow_post"):
        return any(c.refused_streams > 0 for c in server.connections)
    if kind == "ping_flood":
        return sum(c.pings_received for c in server.connections) >= 600
    if kind == "settings_flood":
        return sum(c.settings_received for c in server.connections) >= 400
    if kind == "stream_reset_churn":
        return sum(c.resets_received for c in server.connections) >= 300
    return False


def run_cell(seed: int, kind: str, profile: str, intensity: float,
             attack: Optional[dict]) -> dict:
    """One attacked (or control) legitimate load (JSON-able metrics)."""
    sim = Simulator(seed=seed)
    # The control models a legitimate-but-slow client: a 2 Mbps access
    # link with 150 ms propagation stretches its handshake and transfer
    # times toward naive-timeout territory.
    topo_config = (TopologyConfig(client_bandwidth_bps=2_000_000,
                                  client_propagation_s=0.15)
                   if kind == CONTROL_KIND else TopologyConfig())
    topo = StandardTopology(sim, topo_config)
    site = build_isidewith_site()

    server = Http2Server(sim, topo.server, site, server_config(profile),
                         tcp_config=TcpConfig(deliver_duplicates=True,
                                              initial_ssthresh_bytes=48_000))
    detector = DosDetector(sim)
    detector.attach(server)  # before any traffic: probes propagate on accept

    client = Http2Client(sim, topo.client, server_addr="server", port=443,
                         config=Http2ClientConfig(authority=site.authority),
                         tcp_config=TcpConfig(deliver_duplicates=False))

    agent = None
    spec = AttackSpec.coerce(attack)
    if spec is not None:
        # The attacker rides the legitimate host's (single) TCP stack.
        agent = make_agent(sim, client.tcp, spec)
        agent.start()

    plan = site.plan_load(sim.rng("plan"), warm=False)
    holder: Dict[str, Browser] = {}

    def _start_browser() -> None:
        browser = Browser(sim, client, plan, BrowserConfig())
        holder["browser"] = browser
        browser.start()

    sim.schedule(LEGIT_START_S, _start_browser)

    time_limit = LEGIT_START_S + TAIL_S
    exhausted_at: Optional[float] = None
    while sim.now < time_limit:
        sim.run(until=min(sim.now + 0.5, time_limit))
        if exhausted_at is None and _exhausted(server, kind):
            exhausted_at = sim.now
        browser = holder.get("browser")
        if (agent is None and browser is not None
                and browser.result is not None):
            break  # control cell: done once the page settles
    detector.finalize(sim.now)

    needed = set(plan.uncached_paths())
    browser = holder.get("browser")
    if browser is not None and browser.result is not None:
        completed = set(browser.result.completed_paths)
    else:
        # Load still wedged at the cutoff: count what actually landed.
        completed = {stream.path for stream in client.completed}
    goodput_pct = 100.0 * len(needed & completed) / max(1, len(needed))

    return {
        "kind": kind,
        "profile": profile,
        "intensity": intensity,
        "goodput_pct": goodput_pct,
        "exhausted": exhausted_at is not None,
        "exhausted_at_s": exhausted_at,
        "detected": detector.detected,
        "detect_codes": detector.codes(),
        "detect_latency_s": detector.first_flag_at,
        "dials": agent.dials if agent is not None else 0,
        "attack_frames": agent.frames_sent if agent is not None else 0,
        "refused_connections": server.refused_connections,
        "shed_connections": server.shed_connections,
        "reaped_connections": server.reaped_connections,
        "timed_out_connections": server.timed_out_connections,
        "timed_out_streams": sum(c._hardening.timed_out_streams
                                 for c in server.connections
                                 if c._hardening is not None),
        "sim_time_s": sim.now,
        "processed_events": sim.processed_events,
    }


@dataclass
class DosPoint:
    """Aggregates at one (kind, profile, intensity) grid point."""

    kind: str
    profile: str
    intensity: float
    mean_goodput_pct: float
    detected_pct: float
    mean_detect_latency_s: Optional[float]
    exhausted_pct: float
    mean_shed: float
    mean_reaped: float
    n_ok: int
    n_cells: int


@dataclass
class DosEvalResult:
    """Attack kind x intensity x server-profile sweep."""

    n_per_point: int
    intensities: Tuple[float, ...]
    points: List[DosPoint]
    #: ``"kind=K profile=P intensity=I seed=S: reason"`` per failed cell.
    failures: List[str]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            "DOS: slow-HTTP/2 attacks vs hardening vs detection",
            ["kind", "profile", "intensity", "goodput (%)", "detected (%)",
             "latency (s)", "exhausted (%)", "shed", "reaped", "ok cells"])
        for point in self.points:
            table.add_row(
                point.kind, point.profile, point.intensity,
                point.mean_goodput_pct, point.detected_pct,
                (point.mean_detect_latency_s
                 if point.mean_detect_latency_s is not None else "-"),
                point.exhausted_pct, point.mean_shed, point.mean_reaped,
                f"{point.n_ok}/{point.n_cells}")
        return table

    def verdict_lines(self) -> List[str]:
        """Greppable pass/fail summary (the CI dos-smoke contract)."""
        top = max(self.intensities) if self.intensities else 0.0
        attack = [p for p in self.points if p.kind != CONTROL_KIND]
        controls = [p for p in self.points if p.kind == CONTROL_KIND]

        flagged = [p for p in attack if p.detected_pct >= 100.0]
        false_pos = [p for p in controls if p.detected_pct > 0.0]
        hardened = [p for p in attack if p.profile == "hardened"]
        min_goodput = min((p.mean_goodput_pct for p in hardened),
                          default=0.0)
        exhaust = [p for p in attack
                   if p.profile == "open" and p.intensity == top]
        exhausted = [p for p in exhaust if p.exhausted_pct >= 100.0]

        lines = []
        lines.append(
            f"dos: attack cells flagged: "
            f"{'ALL' if len(flagged) == len(attack) else 'MISSING'} "
            f"({len(flagged)}/{len(attack)})")
        lines.append(
            f"dos: control false positives: "
            f"{'NONE' if not false_pos else 'FOUND'} "
            f"({len(false_pos)}/{len(controls)})")
        lines.append(
            f"dos: hardened goodput >= 90%: "
            f"{'PASS' if min_goodput >= 90.0 else 'FAIL'} "
            f"(min {min_goodput:.1f}%)")
        lines.append(
            f"dos: unhardened exhaustion: "
            f"{'ALL' if len(exhausted) == len(exhaust) else 'MISSING'} "
            f"({len(exhausted)}/{len(exhaust)})")
        return lines


def run_dos_eval(n_per_point: int = 2, base_seed: int = 0,
                 kinds: Sequence[str] = ATTACK_KINDS,
                 intensities: Sequence[float] = (0.5, 1.0),
                 profiles: Sequence[str] = PROFILES,
                 jobs: Optional[int] = None,
                 cache: Optional[RunCache] = None,
                 cell_timeout_s: Optional[float] = None,
                 retries: int = 0,
                 workers: Optional[int] = None,
                 ledger=None) -> DosEvalResult:
    """Sweep attack kind x intensity x profile, plus slow-client controls."""
    specs = []
    for profile in profiles:
        for i in range(n_per_point):
            seed = base_seed + i
            specs.append(RunSpec.make(CELL, seed, kind=CONTROL_KIND,
                                      profile=profile, intensity=0.0,
                                      attack=None))
            for kind in kinds:
                for intensity in intensities:
                    spec = attack_spec(kind, intensity)
                    specs.append(RunSpec.make(
                        CELL, seed, kind=kind, profile=profile,
                        intensity=intensity,
                        attack=spec.to_jsonable()))
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries, workers=workers,
                    ledger=ledger, strict=False)

    by_point: Dict[Tuple[str, str, float], List[dict]] = {}
    attempted: Dict[Tuple[str, str, float], int] = {}
    failures: List[str] = []
    for result in grid:
        kwargs = result.spec.kwargs()
        key = (kwargs["kind"], kwargs["profile"], kwargs["intensity"])
        attempted[key] = attempted.get(key, 0) + 1
        if result.failed:
            failures.append(f"kind={key[0]} profile={key[1]} "
                            f"intensity={key[2]} "
                            f"seed={result.spec.seed}: {result.error}")
        else:
            by_point.setdefault(key, []).append(result.metrics)

    points: List[DosPoint] = []
    for key in sorted(attempted):
        kind, profile, intensity = key
        cells = by_point.get(key, [])
        n = max(1, len(cells))
        latencies = [c["detect_latency_s"] for c in cells
                     if c["detect_latency_s"] is not None]
        points.append(DosPoint(
            kind=kind, profile=profile, intensity=intensity,
            mean_goodput_pct=sum(c["goodput_pct"] for c in cells) / n,
            detected_pct=100.0 * sum(c["detected"] for c in cells) / n,
            mean_detect_latency_s=(sum(latencies) / len(latencies)
                                   if latencies else None),
            exhausted_pct=100.0 * sum(c["exhausted"] for c in cells) / n,
            mean_shed=sum(c["shed_connections"] for c in cells) / n,
            mean_reaped=sum(c["reaped_connections"] for c in cells) / n,
            n_ok=len(cells),
            n_cells=attempted[key],
        ))
    return DosEvalResult(n_per_point=n_per_point,
                         intensities=tuple(intensities),
                         points=points, failures=failures,
                         telemetry=GridTelemetry().add(grid))

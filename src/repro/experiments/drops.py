"""E4 -- targeted packet drops force the Reset Stream (Section IV-D).

The paper: with jitter and throttling applied, dropping 80 % of the
application packets on the server -> client path from the 6th GET until
the client resets yields a ~90 % rate of the object of interest being
transmitted non-multiplexed after the reset; pushing the drop rate
higher breaks the connection instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.phases import AttackConfig
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH

#: Runner cell for one (seed, drop rate) grid point.
CELL = "repro.experiments.drops:run_cell"


@dataclass
class DropPoint:
    """Measurements at one drop rate."""

    drop_rate: float
    html_serialized_pct: float
    html_identified_pct: float
    reset_happened_pct: float
    broken_pct: float


@dataclass
class DropsResult:
    """Drop-rate sweep around the paper's 80 % operating point."""

    n_per_point: int
    points: List[DropPoint]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            "E4 / Section IV-D: reset-forcing drop burst",
            ["drop rate (%)", "HTML serialized (%)", "HTML identified (%)",
             "client reset (%)", "broken (%)"])
        for point in self.points:
            table.add_row(point.drop_rate * 100, point.html_serialized_pct,
                          point.html_identified_pct,
                          point.reset_happened_pct, point.broken_pct)
        return table


def run_cell(seed: int, drop_rate: float) -> dict:
    """One attacked load at one drop rate (JSON-able metrics)."""
    attack = replace(AttackConfig(), drop_rate=drop_rate)
    result = run_session(SessionConfig(seed=seed, attack=attack))
    identified = (result.report is not None
                  and "html" in result.report.predicted_labels)
    return {
        "serialized": bool(result.serialized(HTML_PATH)),
        "identified": bool(identified),
        "reset": bool(result.load is not None and result.load.resets > 0),
        "broken": bool(result.broken),
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_drops(n_per_point: int = 100, base_seed: int = 0,
              drop_rates: Sequence[float] = (0.5, 0.8, 0.95),
              jobs: Optional[int] = None,
              cache: Optional[RunCache] = None,
              cell_timeout_s: Optional[float] = None,
              retries: int = 0,
              workers: Optional[int] = None,
              ledger=None) -> DropsResult:
    """Sweep the drop rate; 0.8 is the paper's setting."""
    specs = [RunSpec.make(CELL, base_seed + i, drop_rate=rate)
             for rate in drop_rates for i in range(n_per_point)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)

    by_rate: Dict[float, List[dict]] = {r: [] for r in drop_rates}
    for result in grid:
        by_rate[result.spec.kwargs()["drop_rate"]].append(result.metrics)

    points: List[DropPoint] = []
    for rate in drop_rates:
        cells = by_rate[rate]
        points.append(DropPoint(
            drop_rate=rate,
            html_serialized_pct=100.0 * sum(c["serialized"]
                                            for c in cells) / n_per_point,
            html_identified_pct=100.0 * sum(c["identified"]
                                            for c in cells) / n_per_point,
            reset_happened_pct=100.0 * sum(c["reset"]
                                           for c in cells) / n_per_point,
            broken_pct=100.0 * sum(c["broken"] for c in cells) / n_per_point,
        ))
    return DropsResult(n_per_point=n_per_point, points=points,
                       telemetry=GridTelemetry().add(grid))

"""E4 -- targeted packet drops force the Reset Stream (Section IV-D).

The paper: with jitter and throttling applied, dropping 80 % of the
application packets on the server -> client path from the 6th GET until
the client resets yields a ~90 % rate of the object of interest being
transmitted non-multiplexed after the reset; pushing the drop rate
higher breaks the connection instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.core.phases import AttackConfig
from repro.experiments.results import ResultTable
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH


@dataclass
class DropPoint:
    """Measurements at one drop rate."""

    drop_rate: float
    html_serialized_pct: float
    html_identified_pct: float
    reset_happened_pct: float
    broken_pct: float


@dataclass
class DropsResult:
    """Drop-rate sweep around the paper's 80 % operating point."""

    n_per_point: int
    points: List[DropPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "E4 / Section IV-D: reset-forcing drop burst",
            ["drop rate (%)", "HTML serialized (%)", "HTML identified (%)",
             "client reset (%)", "broken (%)"])
        for point in self.points:
            table.add_row(point.drop_rate * 100, point.html_serialized_pct,
                          point.html_identified_pct,
                          point.reset_happened_pct, point.broken_pct)
        return table


def run_drops(n_per_point: int = 100, base_seed: int = 0,
              drop_rates: Sequence[float] = (0.5, 0.8, 0.95),
              ) -> DropsResult:
    """Sweep the drop rate; 0.8 is the paper's setting."""
    points: List[DropPoint] = []
    for rate in drop_rates:
        serialized = 0
        identified = 0
        resets = 0
        broken = 0
        for i in range(n_per_point):
            attack = replace(AttackConfig(), drop_rate=rate)
            result = run_session(SessionConfig(seed=base_seed + i,
                                               attack=attack))
            serialized += result.serialized(HTML_PATH)
            if result.report is not None:
                identified += "html" in result.report.predicted_labels
            resets += (result.load is not None and result.load.resets > 0)
            broken += result.broken
        points.append(DropPoint(
            drop_rate=rate,
            html_serialized_pct=100.0 * serialized / n_per_point,
            html_identified_pct=100.0 * identified / n_per_point,
            reset_happened_pct=100.0 * resets / n_per_point,
            broken_pct=100.0 * broken / n_per_point,
        ))
    return DropsResult(n_per_point=n_per_point, points=points)

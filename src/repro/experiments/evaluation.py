"""Success criteria (Section V).

The paper: "We consider our attack to be successful only when the
adversary is able to bring down the degree of multiplexing of the object
of interest to 0% and identify it from the encrypted traffic."

Two evaluation modes mirror Table II's two rows:

* **one object at a time** -- the adversary cares about a single object;
  success requires that object serialized and its size identified
  anywhere in the serialize window (order is irrelevant for one object).
* **all objects at a time** -- the adversary reconstructs the full
  preference order; image *i* succeeds only when it is serialized *and*
  the predicted sequence names the right party at position *i*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.session import SessionResult
from repro.website.isidewith import HTML_PATH, IsideWithSite


@dataclass
class Table2Outcome:
    """Per-session evaluation against the Table II criteria."""

    html_single: bool
    html_all: bool
    image_single: List[bool]
    image_all: List[bool]
    broken: bool
    resets: int

    @property
    def all_correct(self) -> bool:
        return self.html_all and all(self.image_all)


def evaluate_table2(result: SessionResult) -> Table2Outcome:
    """Apply the paper's success criteria to one attack session."""
    if result.report is None:
        raise ValueError("session ran without an attack")
    permutation = list(result.permutation)
    labels = result.report.predicted_labels
    party_sequence = [label for label in labels if label != "html"]
    identified = set(labels)

    html_serialized = result.serialized(HTML_PATH)
    html_identified = "html" in identified
    html_single = html_serialized and html_identified
    html_all = html_single

    image_single: List[bool] = []
    image_all: List[bool] = []
    for position, party in enumerate(permutation):
        path = IsideWithSite.image_path(party)
        serialized = result.serialized(path)
        image_single.append(serialized and party in identified)
        in_position = (position < len(party_sequence)
                       and party_sequence[position] == party)
        image_all.append(serialized and in_position)

    return Table2Outcome(
        html_single=html_single,
        html_all=html_all,
        image_single=image_single,
        image_all=image_all,
        broken=result.broken,
        resets=result.load.resets if result.load else 0,
    )


def aggregate_table2(outcomes: Sequence[Table2Outcome]) -> Dict[str, object]:
    """Success percentages in the layout of the paper's Table II."""
    n = len(outcomes)
    if n == 0:
        raise ValueError("no outcomes to aggregate")

    def pct(values) -> float:
        return 100.0 * sum(values) / n

    return {
        "n": n,
        "single": [pct([o.html_single for o in outcomes])]
                  + [pct([o.image_single[i] for o in outcomes])
                     for i in range(8)],
        "all": [pct([o.html_all for o in outcomes])]
               + [pct([o.image_all[i] for o in outcomes]) for i in range(8)],
        "broken_pct": pct([o.broken for o in outcomes]),
        "mean_resets": sum(o.resets for o in outcomes) / n,
    }


def sequence_accuracy(result: SessionResult) -> float:
    """Fraction of the 8 positions the adversary got right."""
    permutation = list(result.permutation)
    if result.report is None:
        return 0.0
    party_sequence = [label for label in result.report.predicted_labels
                      if label != "html"]
    correct = sum(1 for i, party in enumerate(permutation)
                  if i < len(party_sequence) and party_sequence[i] == party)
    return correct / len(permutation)

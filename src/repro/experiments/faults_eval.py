"""EF -- attack robustness under injected infrastructure faults.

The paper's attack assumes a quiet, reliable path: the gateway stays
up, the server never restarts, links do not flap.  This experiment
measures how the serialization attack degrades when that assumption
breaks -- sweeping a fault-intensity knob that scales the number and
length of deterministic link flaps, middlebox crashes, server stalls
and connection aborts injected into each session
(:func:`repro.faults.plan_for_intensity`).

Each cell carries its fault plan *inside* the
:class:`~repro.experiments.runner.RunSpec` params, so the plan is part
of the cache key and a cached cell can never be replayed against a
different schedule.  The sweep runs ``strict=False``: a cell that dies
anyway (worker crash, cell timeout) is reported with its reason rather
than aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.browser.browser import BrowserConfig
from repro.core.phases import AttackConfig
from repro.experiments.results import ResultTable
from repro.faults import plan_for_intensity
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH, HTML_SIZE

#: Runner cell for one (seed, intensity) grid point.
CELL = "repro.experiments.faults_eval:run_cell"

#: Fresh connections the browser may dial per session in this
#: experiment (the recovery behaviour under test).
MAX_RECONNECTS = 2


@dataclass
class FaultPoint:
    """Aggregates at one fault intensity."""

    intensity: float
    html_serialized_pct: float
    html_identified_pct: float
    broken_pct: float
    mean_reconnects: float
    mean_stream_retries: float
    #: Mean absolute error of the adversary's best HTML size estimate,
    #: over the sessions where it produced any estimate at all.
    mean_size_error_bytes: float
    #: Successfully measured sessions / attempted sessions.
    n_ok: int
    n_cells: int


@dataclass
class FaultsEvalResult:
    """Fault-intensity sweep of the attack pipeline."""

    n_per_point: int
    points: List[FaultPoint]
    #: ``"intensity=I seed=S: reason"`` per permanently failed cell.
    failures: List[str]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            "EF: attack success vs injected fault intensity",
            ["intensity", "HTML serialized (%)", "HTML identified (%)",
             "broken (%)", "reconnects", "stream retries",
             "size err (B)", "ok cells"])
        for point in self.points:
            table.add_row(point.intensity, point.html_serialized_pct,
                          point.html_identified_pct, point.broken_pct,
                          point.mean_reconnects, point.mean_stream_retries,
                          point.mean_size_error_bytes,
                          f"{point.n_ok}/{point.n_cells}")
        return table


def run_cell(seed: int, intensity: float, plan: list) -> dict:
    """One attacked, fault-injected load (JSON-able metrics).

    ``plan`` is the JSON form of the cell's :class:`FaultPlan`; passing
    it explicitly (rather than regenerating from the seed inside) keeps
    the schedule visible in the spec and hashed into the cache key.
    """
    config = SessionConfig(
        seed=seed,
        attack=AttackConfig(),
        browser=BrowserConfig(max_reconnects=MAX_RECONNECTS),
        faults=plan,
    )
    result = run_session(config)
    identified = (result.report is not None
                  and "html" in result.report.predicted_labels)
    size_error: Optional[int] = None
    if result.report is not None and result.report.window_estimates:
        size_error = min(abs(e.size - HTML_SIZE)
                         for e in result.report.window_estimates)
    load = result.load
    return {
        "intensity": intensity,
        "serialized": bool(result.serialized(HTML_PATH)),
        "identified": bool(identified),
        "broken": bool(result.broken),
        "reset": bool(load is not None and load.resets > 0),
        "reconnects": int(load.reconnects) if load is not None else 0,
        "stream_retries": int(result.client.stream_retries),
        "faults_applied": len(result.injector.applied
                              if result.injector is not None else ()),
        "size_error_bytes": size_error,
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_faults_eval(n_per_point: int = 40, base_seed: int = 0,
                    intensities: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
                    jobs: Optional[int] = None,
                    cache: Optional[RunCache] = None,
                    cell_timeout_s: Optional[float] = None,
                    retries: int = 0,
                    workers: Optional[int] = None,
                    ledger=None) -> FaultsEvalResult:
    """Sweep fault intensity; 0.0 is the paper's quiet-path baseline."""
    specs = []
    for intensity in intensities:
        for i in range(n_per_point):
            seed = base_seed + i
            plan = plan_for_intensity(intensity, seed)
            specs.append(RunSpec.make(CELL, seed, intensity=intensity,
                                      plan=plan.to_jsonable()))
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries, workers=workers,
                    ledger=ledger, strict=False)

    by_intensity: Dict[float, List[dict]] = {i: [] for i in intensities}
    cells_attempted: Dict[float, int] = {i: 0 for i in intensities}
    failures: List[str] = []
    for result in grid:
        intensity = result.spec.kwargs()["intensity"]
        cells_attempted[intensity] += 1
        if result.failed:
            failures.append(f"intensity={intensity} "
                            f"seed={result.spec.seed}: {result.error}")
        else:
            by_intensity[intensity].append(result.metrics)

    points: List[FaultPoint] = []
    for intensity in intensities:
        cells = by_intensity[intensity]
        n = max(1, len(cells))
        errors = [c["size_error_bytes"] for c in cells
                  if c["size_error_bytes"] is not None]
        points.append(FaultPoint(
            intensity=intensity,
            html_serialized_pct=100.0 * sum(c["serialized"]
                                            for c in cells) / n,
            html_identified_pct=100.0 * sum(c["identified"]
                                            for c in cells) / n,
            broken_pct=100.0 * sum(c["broken"] for c in cells) / n,
            mean_reconnects=sum(c["reconnects"] for c in cells) / n,
            mean_stream_retries=sum(c["stream_retries"] for c in cells) / n,
            mean_size_error_bytes=(sum(errors) / len(errors)
                                   if errors else 0.0),
            n_ok=len(cells),
            n_cells=cells_attempted[intensity],
        ))
    return FaultsEvalResult(n_per_point=n_per_point, points=points,
                            failures=failures,
                            telemetry=GridTelemetry().add(grid))

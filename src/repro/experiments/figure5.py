"""E3 -- Figure 5: effect of bandwidth limitation (Section IV-C).

The paper throttles the gateway to 1000 / 800 / 500 / 100 / 1 Mbps with
50 ms jitter active and observes (a) retransmissions falling
monotonically as bandwidth drops, and (b) the fraction of loads with the
HTML non-multiplexed peaking around 800 Mbps and degrading toward
1 Mbps, where connections start breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.phases import jitter_plus_throttle_config
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH

#: The paper's bandwidth points (bits per second).
BANDWIDTH_VALUES_BPS = (1_000e6, 800e6, 500e6, 100e6, 1e6)

#: Runner cell for one (seed, jitter, bandwidth) grid point.
CELL = "repro.experiments.figure5:run_cell"


@dataclass
class BandwidthPoint:
    """Measurements at one throttle setting."""

    bandwidth_bps: float
    nonmux_pct: float
    mean_retransmissions: float
    broken_pct: float
    mean_duration_s: float


@dataclass
class Figure5Result:
    """The full bandwidth sweep."""

    n_per_point: int
    jitter_s: float
    points: List[BandwidthPoint]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            f"E3 / Fig. 5: bandwidth sweep (jitter={self.jitter_s*1000:.0f} ms)",
            ["bandwidth (Mbps)", "success/non-mux (%)", "retx/load",
             "broken (%)", "load time (s)"])
        for point in self.points:
            table.add_row(
                point.bandwidth_bps / 1e6,
                point.nonmux_pct,
                point.mean_retransmissions,
                point.broken_pct,
                point.mean_duration_s,
            )
        return table


def run_cell(seed: int, jitter_s: float, bandwidth_bps: float) -> dict:
    """One simulated load at one throttle setting (JSON-able metrics)."""
    attack = jitter_plus_throttle_config(jitter_s, bandwidth_bps)
    result = run_session(SessionConfig(seed=seed, attack=attack))
    try:
        nonmux = bool(result.degree(HTML_PATH) == 0.0)
        observed = True
    except KeyError:
        nonmux = False
        observed = False
    return {
        "nonmux": nonmux,
        "observed": observed,
        "retransmissions": result.retransmissions,
        "broken": bool(result.broken),
        "duration_s": result.duration_s,
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_figure5(n_per_point: int = 100, base_seed: int = 0,
                jitter_s: float = 0.05,
                bandwidths: Sequence[float] = BANDWIDTH_VALUES_BPS,
                jobs: Optional[int] = None,
                cache: Optional[RunCache] = None,
                cell_timeout_s: Optional[float] = None,
                retries: int = 0,
                workers: Optional[int] = None,
                ledger=None) -> Figure5Result:
    """Run the Fig. 5 sweep."""
    specs = [RunSpec.make(CELL, base_seed + i, jitter_s=jitter_s,
                          bandwidth_bps=bandwidth)
             for bandwidth in bandwidths for i in range(n_per_point)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)

    by_bandwidth: Dict[float, List[dict]] = {b: [] for b in bandwidths}
    for result in grid:
        by_bandwidth[result.spec.kwargs()["bandwidth_bps"]].append(
            result.metrics)

    points: List[BandwidthPoint] = []
    for bandwidth in bandwidths:
        cells = by_bandwidth[bandwidth]
        nonmux = sum(c["nonmux"] for c in cells)
        observed = sum(c["observed"] for c in cells)
        points.append(BandwidthPoint(
            bandwidth_bps=bandwidth,
            nonmux_pct=100.0 * nonmux / max(1, observed),
            mean_retransmissions=sum(c["retransmissions"]
                                     for c in cells) / n_per_point,
            broken_pct=100.0 * sum(c["broken"] for c in cells) / n_per_point,
            mean_duration_s=sum(c["duration_s"]
                                for c in cells) / n_per_point,
        ))
    return Figure5Result(n_per_point=n_per_point, jitter_s=jitter_s,
                         points=points,
                         telemetry=GridTelemetry().add(grid))

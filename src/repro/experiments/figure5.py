"""E3 -- Figure 5: effect of bandwidth limitation (Section IV-C).

The paper throttles the gateway to 1000 / 800 / 500 / 100 / 1 Mbps with
50 ms jitter active and observes (a) retransmissions falling
monotonically as bandwidth drops, and (b) the fraction of loads with the
HTML non-multiplexed peaking around 800 Mbps and degrading toward
1 Mbps, where connections start breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.phases import jitter_plus_throttle_config
from repro.experiments.results import ResultTable
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH

#: The paper's bandwidth points (bits per second).
BANDWIDTH_VALUES_BPS = (1_000e6, 800e6, 500e6, 100e6, 1e6)


@dataclass
class BandwidthPoint:
    """Measurements at one throttle setting."""

    bandwidth_bps: float
    nonmux_pct: float
    mean_retransmissions: float
    broken_pct: float
    mean_duration_s: float


@dataclass
class Figure5Result:
    """The full bandwidth sweep."""

    n_per_point: int
    jitter_s: float
    points: List[BandwidthPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            f"E3 / Fig. 5: bandwidth sweep (jitter={self.jitter_s*1000:.0f} ms)",
            ["bandwidth (Mbps)", "success/non-mux (%)", "retx/load",
             "broken (%)", "load time (s)"])
        for point in self.points:
            table.add_row(
                point.bandwidth_bps / 1e6,
                point.nonmux_pct,
                point.mean_retransmissions,
                point.broken_pct,
                point.mean_duration_s,
            )
        return table


def run_figure5(n_per_point: int = 100, base_seed: int = 0,
                jitter_s: float = 0.05,
                bandwidths: Sequence[float] = BANDWIDTH_VALUES_BPS,
                ) -> Figure5Result:
    """Run the Fig. 5 sweep."""
    points: List[BandwidthPoint] = []
    for bandwidth in bandwidths:
        nonmux = 0
        observed = 0
        retx = 0
        broken = 0
        duration = 0.0
        for i in range(n_per_point):
            attack = jitter_plus_throttle_config(jitter_s, bandwidth)
            result = run_session(SessionConfig(seed=base_seed + i,
                                               attack=attack))
            retx += result.retransmissions
            broken += result.broken
            duration += result.duration_s
            try:
                nonmux += result.degree(HTML_PATH) == 0.0
                observed += 1
            except KeyError:
                pass
        points.append(BandwidthPoint(
            bandwidth_bps=bandwidth,
            nonmux_pct=100.0 * nonmux / max(1, observed),
            mean_retransmissions=retx / n_per_point,
            broken_pct=100.0 * broken / n_per_point,
            mean_duration_s=duration / n_per_point,
        ))
    return Figure5Result(n_per_point=n_per_point, jitter_s=jitter_s,
                         points=points)

"""E7a -- ML classification of encrypted traces (Section VII future work).

Two questions:

1. Can standard classifiers read the user's *first party* from a trace?
   Near chance (12.5 %) without the attack; near perfect with it.
2. The classic page-fingerprinting attack over H1 vs H2 on a generated
   site (the related-work baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.crossval import cross_validate
from repro.analysis.forest import RandomForestClassifier
from repro.analysis.knn import KNeighborsClassifier
from repro.analysis.nbayes import GaussianNBClassifier
from repro.experiments.datasets import (
    build_first_party_dataset,
    build_page_dataset,
)
from repro.experiments.results import ResultTable

CLASSIFIERS: Dict[str, Callable] = {
    "kNN (k=3)": lambda: KNeighborsClassifier(k=3),
    "naive Bayes": lambda: GaussianNBClassifier(),
    "random forest": lambda: RandomForestClassifier(n_trees=15, max_depth=8),
}


@dataclass
class FingerprintingResult:
    """Cross-validated accuracies for both question families."""

    decoded_first_party_pct: float
    #: The Section VII tail-residue analyzer run *passively* (no
    #: adversary): first-party and full-order recovery rates.
    passive_partial_first_pct: float
    passive_partial_order_pct: float
    first_party_attack: Dict[str, float]
    first_party_jitter: Dict[str, float]
    first_party_none: Dict[str, float]
    page_h1: Dict[str, float]
    page_h2: Dict[str, float]

    def table(self) -> ResultTable:
        table = ResultTable(
            "E7a: reading the first party / page id from encrypted traces",
            ["task", "method", "accuracy (%)", "chance (%)"])
        table.add_row("first party, full attack", "deterministic decode",
                      self.decoded_first_party_pct, 12.5)
        table.add_row("first party, no adversary", "tail-residue analyzer",
                      self.passive_partial_first_pct, 12.5)
        table.add_row("full order, no adversary", "tail-residue analyzer",
                      self.passive_partial_order_pct, 0.002)
        for name, accuracy in self.first_party_attack.items():
            table.add_row("first party, full attack", name,
                          accuracy * 100, 12.5)
        for name, accuracy in self.first_party_jitter.items():
            table.add_row("first party, jitter only (partly muxed)", name,
                          accuracy * 100, 12.5)
        for name, accuracy in self.first_party_none.items():
            table.add_row("first party, no adversary", name,
                          accuracy * 100, 12.5)
        for name, accuracy in self.page_h1.items():
            table.add_row("page id, HTTP/1.1", name, accuracy * 100,
                          100.0 / 8)
        for name, accuracy in self.page_h2.items():
            table.add_row("page id, HTTP/2", name, accuracy * 100,
                          100.0 / 8)
        return table


def _evaluate(dataset, n_folds: int = 4) -> Dict[str, float]:
    return {
        name: cross_validate(factory, dataset.X, dataset.y,
                             n_folds=n_folds)["mean_accuracy"]
        for name, factory in CLASSIFIERS.items()
    }


def _passive_partial_rates(n_loads: int, base_seed: int = 700):
    """Run the tail-residue analyzer passively over clean loads."""
    from repro.core.deinterleave import PartialMultiplexAnalyzer
    from repro.experiments.session import (SessionConfig, isidewith_size_map,
                                           run_session)
    from repro.simnet.middlebox import SERVER_TO_CLIENT

    first_hits = 0
    order_hits = 0
    for i in range(n_loads):
        result = run_session(SessionConfig(seed=base_seed + i))
        census = [obj.size for obj in result.site.objects.values()]
        analyzer = PartialMultiplexAnalyzer(census)
        size_map = isidewith_size_map(result.site)
        matches = analyzer.analyze(
            result.trace.completed_records(SERVER_TO_CLIENT))
        seen = set()
        sequence = []
        for match in matches:
            if not match.confident:
                continue
            label = size_map.identify(match.size)
            if label and label != "html" and label not in seen:
                seen.add(label)
                sequence.append(label)
        permutation = list(result.permutation)
        first_hits += bool(sequence) and sequence[0] == permutation[0]
        order_hits += sequence == permutation
    return (100.0 * first_hits / n_loads, 100.0 * order_hits / n_loads)


def run_fingerprinting(n_loads: int = 48, n_pages: int = 8,
                       loads_per_page: int = 5) -> FingerprintingResult:
    """Build all datasets and cross-validate every classifier."""
    passive_first, passive_order = _passive_partial_rates(max(10, n_loads // 3))
    attack = build_first_party_dataset(n_loads=n_loads, mode="attack")
    jitter = build_first_party_dataset(n_loads=n_loads, mode="jitter")
    none = build_first_party_dataset(n_loads=n_loads, mode="none")
    h1 = build_page_dataset(n_pages=n_pages, loads_per_page=loads_per_page,
                            protocol="h1")
    h2 = build_page_dataset(n_pages=n_pages, loads_per_page=loads_per_page,
                            protocol="h2")
    return FingerprintingResult(
        decoded_first_party_pct=100.0 * (
            attack.meta["decoded_first_party_accuracy"] or 0.0),
        passive_partial_first_pct=passive_first,
        passive_partial_order_pct=passive_order,
        first_party_attack=_evaluate(attack),
        first_party_jitter=_evaluate(jitter),
        first_party_none=_evaluate(none),
        page_h1=_evaluate(h1),
        page_h2=_evaluate(h2),
    )

"""Crash-safe sweep ledger: append-only JSONL with atomic rotation.

The run cache answers "has this exact cell ever been computed?"; the
ledger answers "where was *this sweep* when it died?".  They overlap on
the happy path, but the ledger keeps its promise even with the cache
disabled (``--no-cache``), which is how the resume acceptance scenario
is specified: a SIGTERM'd or kill -9'd sweep re-run against the same
ledger executes exactly the cells whose ``done`` entries are missing.

Durability model
----------------
One JSON object per line, appended and fsynced before the supervisor
acknowledges the cell, so every acknowledged entry survives a power
cut.  A process killed mid-append leaves at most one truncated final
line; :meth:`SweepLedger.load` tolerates (and drops) unparseable lines
instead of refusing the whole file.  Rotation (:meth:`rotate`) compacts
superseded entries -- retried cells, stale failures -- by writing the
live set to a temporary file, fsyncing it, and atomically replacing the
ledger, so a crash during rotation leaves either the old or the new
file, never a mix.

Entry kinds
-----------
``done``    a completed cell: ``key``, ``spec``, ``record``, ``attempts``.
``failed``  a permanently failed cell: ``key``, ``spec``, ``reason``,
            ``attempts`` and a ``poison`` flag for quarantined cells.
``event``   a worker-health event (serialized
            :class:`repro.invariants.violations.Violation`), kept for
            audit, never replayed.

Only ``done`` entries are recalled on resume; ``failed`` entries are
informational -- a resumed sweep re-attempts failed cells, because the
point of resuming is to finish the work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when the entry shape changes incompatibly.
LEDGER_FORMAT = 1


class SweepLedger:
    """Append-only JSONL record of one (or more) sweep's progress.

    The supervisor process is the only writer; workers never touch the
    ledger.  Opening an existing file replays it into ``completed`` /
    ``failed`` maps (last entry per key wins) and then appends.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        #: key -> latest ``done`` entry.
        self.completed: Dict[str, Dict[str, Any]] = {}
        #: key -> latest ``failed`` entry (informational; not replayed).
        self.failed: Dict[str, Dict[str, Any]] = {}
        #: Lines on disk that a compaction would drop.
        self.superseded = 0
        self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        # A torn final append leaves a line with no newline; gluing the
        # next entry onto it would corrupt that entry too.  Terminate
        # the fragment so every append starts on a fresh line.
        try:
            if self.path.stat().st_size > 0:
                with self.path.open("rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    if probe.read(1) != b"\n":
                        self._handle.write("\n")
                        self._handle.flush()
        except OSError:
            pass

    # -- replay ------------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        live = 0
        total = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            total += 1
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn final append (or hand-damage): drop the line,
                # keep everything that parsed.
                continue
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind")
            key = entry.get("key")
            if kind == "done" and isinstance(key, str) \
                    and isinstance(entry.get("record"), dict):
                self.completed[key] = entry
                self.failed.pop(key, None)
                live += 1
            elif kind == "failed" and isinstance(key, str):
                self.failed[key] = entry
                live += 1
        self.superseded = max(0, total - live)

    # -- append ------------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        # No sort_keys: a replayed ``record`` must round-trip with the
        # exact key order the cell produced, or resumed grids would not
        # be byte-identical to uninterrupted ones.
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def record_done(self, key: str, spec: Dict[str, Any],
                    record: Dict[str, Any], attempts: int = 1) -> None:
        """Durably record a completed cell (callable more than once per
        key; the latest entry wins on replay)."""
        if key in self.completed or key in self.failed:
            self.superseded += 1
        entry = {"kind": "done", "format": LEDGER_FORMAT, "key": key,
                 "spec": spec, "record": record, "attempts": attempts}
        self._append(entry)
        self.completed[key] = entry
        self.failed.pop(key, None)

    def record_failed(self, key: str, spec: Dict[str, Any], reason: str,
                      attempts: int, poison: bool = False) -> None:
        """Durably record a permanent cell failure."""
        if key in self.completed or key in self.failed:
            self.superseded += 1
        entry = {"kind": "failed", "format": LEDGER_FORMAT, "key": key,
                 "spec": spec, "reason": reason, "attempts": attempts,
                 "poison": poison}
        self._append(entry)
        self.failed[key] = entry

    def record_event(self, violation: Dict[str, Any]) -> None:
        """Append a worker-health event (audit trail only)."""
        self._append({"kind": "event", "format": LEDGER_FORMAT,
                      "violation": violation})

    # -- recall ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The ``done`` entry for ``key``, or None."""
        return self.completed.get(key)

    # -- rotation ----------------------------------------------------------

    def rotate(self) -> None:
        """Compact the file down to the live entries, atomically.

        Written to a temp file, fsynced, then ``os.replace``d over the
        ledger -- an interrupted rotation leaves the previous file
        intact.  Worker-health ``event`` lines are dropped (they were
        audit trail for the runs that appended them).
        """
        tmp = self.path.with_name(self.path.name + f".{os.getpid()}.rot")
        entries: List[Dict[str, Any]] = []
        for key in sorted(self.completed):
            entries.append(self.completed[key])
        for key in sorted(self.failed):
            entries.append(self.failed[key])
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = self.path.open("a", encoding="utf-8")
        self.superseded = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_ledger(path: Union[str, Path], fsync: bool = True) -> SweepLedger:
    """Open (creating if needed) the sweep ledger at ``path``."""
    return SweepLedger(path, fsync=fsync)


__all__ = ["LEDGER_FORMAT", "SweepLedger", "open_ledger"]

"""E9 (extension) -- does the serialization attack transfer to HTTP/3?

QUIC changes both sides of the fight:

* *for* the adversary: requests are still individual datagrams whose
  sizes give them away, so the spacing queue works unchanged;
* *against* the adversary: everything is encrypted (no TLS record
  headers, no TCP sequence numbers), so GET counting and object
  delimiting must work from packet sizes and timing alone, and there is
  no transport head-of-line blocking to amplify the drop burst.

The experiment runs the image-burst scenario (the 8 emblem images
requested back-to-back) over HTTP/3-lite, passively and under the
spacing attack, and reports sequence recovery plus ground-truth
serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.metrics import object_serialized
from repro.core.predictor import ObjectPredictor, SizeIdentityMap
from repro.experiments.results import ResultTable
from repro.quic.h3 import H3Client, H3Server
from repro.simnet.engine import Simulator
from repro.simnet.middlebox import CLIENT_TO_SERVER, SpacingPolicy
from repro.simnet.packet import HEADER_OVERHEAD
from repro.simnet.topology import StandardTopology
from repro.website.isidewith import (
    PARTIES,
    PARTY_IMAGE_SIZES,
    build_isidewith_site,
)

#: QUIC per-packet overhead visible to the estimator: link/IP/UDP header
#: share plus QUIC short header + AEAD tag + one STREAM frame header.
QUIC_PACKET_OVERHEAD = HEADER_OVERHEAD + 12 + 16 + 8
#: A full-sized H3 DATA packet on this stack.
FULL_QUIC_PACKET = QUIC_PACKET_OVERHEAD + 1150


def quic_request_matcher(view) -> bool:
    """Spacing-policy matcher for an encrypted QUIC wire: request-sized
    datagrams (bigger than pure ACKs, smaller than padded handshake or
    full DATA packets).  Sizes are all the adversary has."""
    return 120 <= view.size <= 420


@dataclass
class QuicEstimate:
    """Recovered object size from packet sizes alone."""

    size: int
    end_time: float


class QuicPacketEstimator:
    """Sub-full-packet + time-gap delimiting over encrypted datagrams."""

    def __init__(self, time_gap_s: float = 0.06,
                 min_packet: int = 200):
        self.time_gap_s = time_gap_s
        self.min_packet = min_packet

    def estimate(self, trace) -> List[QuicEstimate]:
        from repro.simnet.middlebox import SERVER_TO_CLIENT
        estimates: List[QuicEstimate] = []
        current = 0
        last_time: Optional[float] = None
        for captured in trace.packets(SERVER_TO_CLIENT):
            size = captured.view.size
            if size < self.min_packet:
                continue  # ACKs / control
            if (last_time is not None and current
                    and captured.time - last_time > self.time_gap_s):
                estimates.append(QuicEstimate(size=current,
                                              end_time=last_time))
                current = 0
            current += max(0, size - QUIC_PACKET_OVERHEAD)
            last_time = captured.time
            if size < FULL_QUIC_PACKET:
                estimates.append(QuicEstimate(size=current,
                                              end_time=captured.time))
                current = 0
        if current and last_time is not None:
            estimates.append(QuicEstimate(size=current, end_time=last_time))
        return estimates


@dataclass
class QuicPoint:
    condition: str
    sequence_accuracy_pct: float
    images_serialized_pct: float


@dataclass
class QuicTransferResult:
    n_sessions: int
    points: List[QuicPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "E9 (extension): the attack on HTTP/3-lite (fully encrypted wire)",
            ["condition", "order recovered (%)", "images serialized (%)"])
        for point in self.points:
            table.add_row(point.condition, point.sequence_accuracy_pct,
                          point.images_serialized_pct)
        return table


def _run_session(seed: int, spacing_s: Optional[float]):
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim)
    site = build_isidewith_site()
    server = H3Server(sim, topo.server, site)
    if spacing_s:
        topo.middlebox.add_policy(SpacingPolicy(
            min_gap_s=spacing_s, direction=CLIENT_TO_SERVER,
            match=quic_request_matcher))
    client = H3Client(sim, topo.client, "server")

    rng = sim.rng("quic-plan")
    permutation = list(PARTIES)
    rng.shuffle(permutation)
    paths = ([("/api/results/summary", 0.0008)]
             + [(f"/img/emblem-{p}.png", rng.uniform(0.0002, 0.002))
                for p in permutation]
             + [("/js/share-widgets.js", 0.001)])
    done = {"count": 0}

    def issue(index: int) -> None:
        if index >= len(paths):
            return
        path, _ = paths[index]
        client.request(path, on_complete=lambda s: done.__setitem__(
            "count", done["count"] + 1))
        next_gap = paths[index + 1][1] if index + 1 < len(paths) else 0.0
        sim.schedule(next_gap, issue, index + 1)

    client.connect(lambda: issue(0))
    while done["count"] < len(paths) and sim.now < 25.0:
        sim.run(until=sim.now + 0.5)
    sim.run(until=sim.now + 0.3)
    return permutation, topo.trace, server, site


def run_quic_transfer(n_sessions: int = 10,
                      base_seed: int = 0) -> QuicTransferResult:
    """Passive vs spacing-attack over the HTTP/3-lite stack."""
    size_map = SizeIdentityMap({size: party for party, size
                                in PARTY_IMAGE_SIZES.items()})
    estimator = QuicPacketEstimator()
    points: List[QuicPoint] = []
    for condition, spacing in (("passive (multiplexed)", None),
                               ("spacing attack (80 ms)", 0.08)):
        accuracy = 0.0
        serialized = 0.0
        for i in range(n_sessions):
            permutation, trace, server, site = _run_session(
                base_seed + i, spacing)
            estimates = estimator.estimate(trace)
            from repro.core.estimator import ObjectEstimate
            as_objects = [ObjectEstimate(size=e.size, start_time=e.end_time,
                                         end_time=e.end_time, n_records=1)
                          for e in estimates]
            predictor = ObjectPredictor(size_map)
            sequence = [p.label for p in predictor.predict_burst(
                as_objects, list(PARTIES))]
            hits = sum(1 for a, b in zip(sequence, permutation) if a == b)
            accuracy += hits / len(permutation)
            serialized += sum(
                object_serialized(server.tx_log, site.image_path(p))
                for p in permutation) / len(permutation)
        points.append(QuicPoint(
            condition=condition,
            sequence_accuracy_pct=100.0 * accuracy / n_sessions,
            images_serialized_pct=100.0 * serialized / n_sessions,
        ))
    return QuicTransferResult(n_sessions=n_sessions, points=points)

"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence


class ResultTable:
    """Aligned text table (the benches print paper-style tables)."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        """Append one row; cells are str()-ed, floats get 1 decimal."""
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(f"{cell:.1f}")
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError("row width does not match headers")
        self.rows.append(formatted)

    def to_text(self) -> str:
        """Render with column alignment."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        separator = "-+-".join("-" * w for w in widths)
        parts = [self.title, line(self.headers), separator]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()

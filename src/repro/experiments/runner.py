"""Parallel experiment harness with an on-disk result cache.

Every paper artefact is an average over many independent simulated
downloads, and each download is a pure function of its
:class:`~repro.experiments.runner.RunSpec` (the simulator guarantees a
run is a pure function of its seed -- see :mod:`repro.simnet.engine`).
That purity buys two things:

* **fan-out** -- cells of an experiment grid can run in worker
  processes in any order without changing the aggregated result, and
* **memoization** -- a completed cell can be cached on disk, keyed by
  a content hash of its spec plus a fingerprint of the package source,
  so re-running a benchmark or resuming an interrupted sweep only
  executes the missing cells.

The harness is crash-tolerant: each cell runs in its own worker
process with an optional wall-clock deadline, a worker that dies or
hangs marks *that* cell failed-with-reason instead of killing the grid,
failed cells retry with capped exponential backoff, and every completed
cell is persisted to the cache the moment it finishes -- so an
interrupted sweep resumes from exactly the cells it is missing.
``run_grid(strict=True)`` (the default) still raises
:class:`GridError` once the sweep is over, after caching all successes.

An experiment expresses itself as a list of :class:`RunSpec`s and calls
:func:`run_grid`; aggregation happens on the plain-dict metrics each
cell returns.  Cell functions are addressed by dotted path
(``"repro.experiments.table1:run_cell"``) so worker processes can
resolve them without a registry, and they must return JSON-serialisable
dicts so records survive the cache round-trip unchanged.

Telemetry: every :class:`RunResult` carries wall time and, when the
cell reports them (the session-based cells all do), simulated time and
the simulator's executed-event count -- so perf regressions show up in
benchmark output rather than only in wall-clock noise.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import multiprocessing
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every cached record regardless of source changes.
CACHE_FORMAT = 1

_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_jsonable(value: Any, where: str) -> None:
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_jsonable(item, where)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"{where}: dict keys must be str, got {key!r}")
            _check_jsonable(item, where)
        return
    raise TypeError(f"{where}: {value!r} is not JSON-serialisable")


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid.

    A spec is declarative on purpose: a dotted path to a top-level cell
    function plus JSON-serialisable parameters.  That keeps it picklable
    for worker processes and hashable for the cache key -- a
    :class:`~repro.experiments.session.SessionConfig` (which holds
    callables) never crosses a process or cache boundary.
    """

    #: Dotted path ``"package.module:function"`` of the cell function.
    fn: str
    #: Master seed for the cell's simulator.
    seed: int
    #: Sorted ``(name, value)`` pairs of keyword arguments for the cell.
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, fn: str, seed: int, **params: Any) -> "RunSpec":
        """Build a spec, validating that ``params`` survive JSON."""
        _check_jsonable(dict(params), f"RunSpec({fn})")
        return cls(fn=fn, seed=seed,
                   params=tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"fn": self.fn, "seed": self.seed, "params": self.kwargs()}

    def key(self, version: str) -> str:
        """Content-addressed cache key: hash of spec + code version."""
        payload = json.dumps({"spec": self.to_dict(), "version": version,
                              "format": CACHE_FORMAT}, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunResult:
    """One completed (or cache-recalled, or permanently failed) cell."""

    spec: RunSpec
    metrics: Dict[str, Any]
    wall_time_s: float
    sim_time_s: float
    processed_events: int
    cached: bool
    #: Why the cell failed (crash / timeout / exception), None on success.
    error: Optional[str] = None
    #: Executions this invocation spent on the cell (1 + retries used).
    attempts: int = 1

    @property
    def failed(self) -> bool:
        return self.error is not None

    def to_record(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "metrics": self.metrics,
                "wall_time_s": self.wall_time_s,
                "sim_time_s": self.sim_time_s,
                "processed_events": self.processed_events,
                "attempts": self.attempts}


@dataclass
class GridResult:
    """All cells of one grid, in spec order."""

    results: List[RunResult]
    #: Wall-clock seconds the whole ``run_grid`` call took (dispatch
    #: overhead included), as opposed to ``wall_time_s`` which sums the
    #: in-cell time each worker measured.
    elapsed_s: float = 0.0
    #: :class:`repro.experiments.workers.WorkerStats` when the grid ran
    #: on the persistent pool, else None.
    worker_stats: Optional[Any] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def metrics(self) -> List[Dict[str, Any]]:
        """Metric dicts of the *successful* cells, in spec order."""
        return [r.metrics for r in self.results if not r.failed]

    @property
    def ok(self) -> List[RunResult]:
        """Successful cells, in spec order."""
        return [r for r in self.results if not r.failed]

    @property
    def failures(self) -> List[RunResult]:
        """Permanently failed cells (``.error`` says why), in spec order."""
        return [r for r in self.results if r.failed]

    @property
    def executed(self) -> int:
        """Cells that actually ran a simulator this invocation."""
        return sum(1 for r in self.results if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def wall_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.results)

    @property
    def sim_time_s(self) -> float:
        return sum(r.sim_time_s for r in self.results)

    @property
    def processed_events(self) -> int:
        return sum(r.processed_events for r in self.results)

@dataclass
class GridTelemetry:
    """Accumulated run telemetry across one or more grids.

    Experiments attach one of these to their result object so the CLI
    and benchmarks can report how much work a sweep actually did --
    and, via ``executed``, prove a warm cache ran zero simulators.
    """

    cells: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    processed_events: int = 0
    sim_time_s: float = 0.0
    wall_time_s: float = 0.0
    #: Merged :class:`repro.experiments.workers.WorkerStats` across the
    #: grids that ran on the persistent pool, else None.
    workers: Optional[Any] = None

    def add(self, grid: "GridResult") -> "GridTelemetry":
        self.cells += len(grid)
        self.executed += grid.executed
        self.cached += grid.cache_hits
        self.failed += len(grid.failures)
        self.processed_events += grid.processed_events
        self.sim_time_s += grid.sim_time_s
        self.wall_time_s += grid.wall_time_s
        if grid.worker_stats is not None:
            if self.workers is None:
                from repro.experiments.workers import WorkerStats
                self.workers = WorkerStats()
            self.workers.merge(grid.worker_stats)
        return self

    def line(self) -> str:
        """One-line run summary for CLI / benchmark output."""
        failed = f", {self.failed} failed" if self.failed else ""
        line = (f"runner: {self.cells} cells "
                f"({self.executed} executed, {self.cached} cached{failed}), "
                f"{self.processed_events} events, "
                f"sim {self.sim_time_s:.1f}s in wall {self.wall_time_s:.1f}s")
        if self.workers is not None:
            line += "; " + self.workers.line()
        return line


class GridError(RuntimeError):
    """Raised by ``run_grid(strict=True)`` when cells failed for good.

    Raised only after the sweep finished and every *successful* cell was
    persisted to the cache, so a rerun re-executes just the failures.
    The partial :class:`GridResult` rides along as ``.grid``.
    """

    def __init__(self, grid: GridResult):
        self.grid = grid
        self.failures = grid.failures
        shown = "; ".join(f"{r.spec.fn}(seed={r.spec.seed}): {r.error}"
                          for r in self.failures[:4])
        more = (f" (+{len(self.failures) - 4} more)"
                if len(self.failures) > 4 else "")
        super().__init__(f"{len(self.failures)} of {len(grid)} cells "
                         f"failed: {shown}{more}")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-runs").expanduser()


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the installed ``repro`` package source.

    Hashes the content of every ``*.py`` file under the package root so
    any source change invalidates cached records.  Computed once per
    process.
    """
    global _code_version_cache
    if _code_version_cache is None:
        # The package root, located relative to this file rather than
        # via `import repro` (which would reach the interface layer).
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


#: Monotone per-process serial for cache temp-file names; combined with
#: the pid it makes every concurrent writer's temp path unique.
_put_serial = itertools.count()


class RunCache:
    """Content-addressed on-disk store of completed run records.

    One JSON file per record, named by the spec's cache key; writes are
    atomic and durable (temp file + fsync + rename) so a killed sweep
    never leaves a corrupt record behind, and a re-run simply fills in
    missing cells.  A record that is nonetheless unreadable -- truncated
    by a full disk, hand-edited, wrong shape -- counts as a miss and is
    evicted so it cannot shadow the slot forever.
    """

    def __init__(self, root: Optional[Path] = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        # Shard by the first two hex chars to keep directories small.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with path.open() as handle:
                record = json.load(handle)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._evict(path)
            return None
        if not isinstance(record, dict) or not isinstance(
                record.get("metrics"), dict):
            self._evict(path)
            return None
        return record

    @staticmethod
    def _evict(path: Path) -> None:
        """Drop a corrupt record; the slot becomes a plain miss."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # The temp name must be unique per *writer*, not just per
            # process: two threads (or a supervisor completing the same
            # key twice after a worker respawn) racing on one pid-named
            # temp file would interleave writes and publish garbage.
            # With a per-writer name the worst case is two valid
            # replace()s racing, and either order leaves a complete
            # record in place.
            tmp = path.with_suffix(
                f".{os.getpid()}.{next(_put_serial)}.tmp")
            with tmp.open("w") as handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(path)
        except OSError as exc:
            # An unwritable cache must not kill a sweep that already
            # has results in hand; degrade to uncached runs, once.
            self.enabled = False
            print(f"repro: run cache disabled ({exc})", file=sys.stderr)

    @classmethod
    def disabled(cls) -> "RunCache":
        return cls(enabled=False)


def resolve_cell(fn: str):
    """Import and return the cell function named by ``fn``."""
    module_name, _, attr = fn.partition(":")
    if not attr:
        raise ValueError(f"cell path {fn!r} must look like 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one cell in the current process (the worker entry point)."""
    cell = resolve_cell(spec.fn)
    start = time.perf_counter()
    metrics = cell(spec.seed, **spec.kwargs())
    wall = time.perf_counter() - start
    if not isinstance(metrics, dict):
        raise TypeError(f"cell {spec.fn} returned {type(metrics).__name__}, "
                        f"expected dict")
    _check_jsonable(metrics, f"metrics of {spec.fn}")
    return RunResult(
        spec=spec,
        metrics=metrics,
        wall_time_s=wall,
        sim_time_s=float(metrics.get("sim_time_s", 0.0)),
        processed_events=int(metrics.get("processed_events", 0)),
        cached=False,
    )


def _result_from_record(spec: RunSpec, record: Dict[str, Any]) -> RunResult:
    return RunResult(
        spec=spec,
        metrics=record["metrics"],
        wall_time_s=record.get("wall_time_s", 0.0),
        sim_time_s=record.get("sim_time_s", 0.0),
        processed_events=record.get("processed_events", 0),
        cached=True,
        attempts=record.get("attempts", 1),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """``jobs`` argument -> worker count (``None``/0 -> 1)."""
    if jobs is None or jobs <= 0:
        return 1
    return jobs


#: Ceiling on the retry backoff, seconds.
RETRY_BACKOFF_CAP_S = 10.0


def _failed_result(spec: RunSpec, reason: str, attempts: int) -> RunResult:
    return RunResult(spec=spec, metrics={}, wall_time_s=0.0, sim_time_s=0.0,
                     processed_events=0, cached=False, error=reason,
                     attempts=attempts)


def _retry_delay(backoff_s: float, attempt: int) -> float:
    """Capped exponential backoff before retry number ``attempt + 1``."""
    return min(RETRY_BACKOFF_CAP_S, backoff_s * (2 ** attempt))


def _run_serial(specs: List[RunSpec], misses: List[int], *, retries: int,
                retry_backoff_s: float,
                on_result: Callable[[int, RunResult], None]) -> None:
    """In-process execution: no crash isolation and no hard deadline,
    but also no fork overhead -- the ``--jobs 1`` fast path."""
    for index in misses:
        attempt = 0
        while True:
            try:
                result = execute_spec(specs[index])
                result.attempts = attempt + 1
                on_result(index, result)
                break
            except Exception as exc:
                if attempt >= retries:
                    on_result(index, _failed_result(
                        specs[index], f"{type(exc).__name__}: {exc}",
                        attempt + 1))
                    break
                time.sleep(_retry_delay(retry_backoff_s, attempt))
                attempt += 1


def _worker_main(conn, spec: RunSpec) -> None:
    """Worker-process entry: run one cell, ship the outcome, exit."""
    try:
        result = execute_spec(spec)
        conn.send(("ok", result.metrics, result.wall_time_s))
    except BaseException as exc:  # the parent must learn of *any* death
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        conn.close()


def _run_pool(specs: List[RunSpec], misses: List[int], *, jobs: int,
              timeout_s: Optional[float], retries: int,
              retry_backoff_s: float,
              on_result: Callable[[int, RunResult], None]) -> None:
    """Process-isolated execution: one worker process per cell.

    Each cell gets its own :class:`multiprocessing.Process` and pipe, so
    a worker that dies (EOF on the pipe) or overruns its deadline
    (terminated) takes down nothing but its own cell.  A pool executor
    cannot give that isolation: its atexit join would hang forever on a
    truly hung worker, and one crashed worker poisons the whole map.
    """
    ctx = multiprocessing.get_context()
    workers = max(1, min(jobs, len(misses)))
    #: (spec index, prior attempts, earliest monotonic start time)
    pending = deque((index, 0, 0.0) for index in misses)
    #: pipe -> (spec index, prior attempts, process, monotonic deadline)
    running: Dict[Any, Tuple[int, int, Any, Optional[float]]] = {}

    def settle(index: int, attempt: int, reason: str) -> None:
        if attempt < retries:
            resume_at = (time.monotonic()
                         + _retry_delay(retry_backoff_s, attempt))
            pending.append((index, attempt + 1, resume_at))
        else:
            on_result(index, _failed_result(specs[index], reason,
                                            attempt + 1))

    def reap(conn, *, terminated_reason: Optional[str] = None) -> None:
        index, attempt, proc, _ = running.pop(conn)
        message = None
        if terminated_reason is None:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None
        else:
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
        conn.close()
        proc.join()
        if terminated_reason is not None:
            settle(index, attempt, terminated_reason)
        elif message is None:
            settle(index, attempt,
                   f"worker crashed (exit code {proc.exitcode})")
        elif message[0] == "ok":
            _, metrics, wall = message
            on_result(index, RunResult(
                spec=specs[index], metrics=metrics, wall_time_s=wall,
                sim_time_s=float(metrics.get("sim_time_s", 0.0)),
                processed_events=int(metrics.get("processed_events", 0)),
                cached=False, attempts=attempt + 1))
        else:
            settle(index, attempt, message[1])

    while pending or running:
        now = time.monotonic()
        # Launch: fill free slots with cells whose backoff has elapsed.
        launchable = sorted(item for item in pending if item[2] <= now)
        for item in launchable:
            if len(running) >= workers:
                break
            pending.remove(item)
            index, attempt, _ = item
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, specs[index]), daemon=True)
            proc.start()
            child_conn.close()
            deadline = (time.monotonic() + timeout_s
                        if timeout_s is not None else None)
            running[parent_conn] = (index, attempt, proc, deadline)

        # How long may we block?  Until the nearest worker deadline or
        # the nearest backoff expiry, whichever comes first.
        now = time.monotonic()
        horizons = [d for (_, _, _, d) in running.values() if d is not None]
        horizons += [item[2] for item in pending if item[2] > now]
        wait_s = max(0.0, min(horizons) - now) if horizons else None

        if running:
            for conn in _connection_wait(list(running), wait_s):
                reap(conn)
        elif wait_s:
            time.sleep(wait_s)

        # Deadline sweep: terminate overrunning workers.
        if timeout_s is not None:
            now = time.monotonic()
            overdue = [conn for conn, (_, _, _, deadline) in running.items()
                       if deadline is not None and deadline <= now]
            for conn in overdue:
                reap(conn, terminated_reason=(
                    f"timed out after {timeout_s:g}s"))


def run_grid(specs: Iterable[RunSpec], *, jobs: Optional[int] = None,
             cache: Optional[RunCache] = None,
             timeout_s: Optional[float] = None, retries: int = 0,
             retry_backoff_s: float = 0.5,
             workers: Optional[int] = None,
             ledger: Optional[Any] = None,
             poison_strikes: Optional[int] = None,
             heartbeat_s: Optional[float] = None,
             strict: bool = True) -> GridResult:
    """Execute a grid of specs, reusing cached cells, in spec order.

    Aggregated output is independent of ``jobs``/``workers``: cells are
    pure functions of their spec, and results are returned in the order
    the specs were given regardless of completion order.

    Three dispatch modes, picked in this order:

    * ``workers=N`` -- the supervised **persistent pool**
      (:mod:`repro.experiments.workers`): long-lived worker processes
      with heartbeats, crash respawn and poison-cell quarantine.
    * ``jobs>1`` or ``timeout_s`` -- the process-per-cell pool (full
      isolation, one fork per cell).
    * otherwise -- serial in-process execution.

    ``timeout_s`` puts a wall-clock deadline on every cell (forcing
    process isolation even at ``jobs=1``); ``retries`` re-runs a
    crashed / hung / raising cell that many extra times with capped
    exponential backoff starting at ``retry_backoff_s``.  Every
    successful cell is cached the moment it finishes, so an interrupted
    or partly-failed sweep resumes with only the missing cells.

    ``ledger`` (a :class:`~repro.experiments.ledger.SweepLedger` or a
    path to one) additionally journals every settled cell to an
    append-only fsynced JSONL file, so an interrupted sweep resumes at
    exactly the missing cells *even with the cache disabled*; ``done``
    entries found in the ledger are recalled like cache hits (and
    back-filled into the cache).  With ``strict`` (the default) a
    permanently failed cell raises :class:`GridError` at the end;
    ``strict=False`` instead returns the failures inline
    (``GridResult.failures``, each with ``.error``).
    """
    from repro.experiments.ledger import SweepLedger

    specs = list(specs)
    if cache is None:
        cache = RunCache()
    jobs = resolve_jobs(jobs)
    version = code_version()
    started = time.monotonic()

    owned_ledger: Optional[SweepLedger] = None
    try:
        if ledger is not None and not isinstance(ledger, SweepLedger):
            owned_ledger = SweepLedger(ledger)
            ledger = owned_ledger

        keys = [spec.key(version) for spec in specs]
        results: List[Optional[RunResult]] = [None] * len(specs)
        misses: List[int] = []
        for i, (spec, key) in enumerate(zip(specs, keys)):
            record = cache.get(key)
            if record is None and ledger is not None:
                entry = ledger.get(key)
                if entry is not None:
                    record = entry["record"]
                    cache.put(key, record)
            if record is not None:
                results[i] = _result_from_record(spec, record)
            else:
                misses.append(i)

        worker_stats = None
        if misses:
            def on_result(index: int, result: RunResult) -> None:
                if not result.failed:
                    cache.put(keys[index], result.to_record())
                    if ledger is not None:
                        ledger.record_done(keys[index],
                                           specs[index].to_dict(),
                                           result.to_record(),
                                           attempts=result.attempts)
                elif ledger is not None:
                    reason = result.error or ""
                    ledger.record_failed(keys[index],
                                         specs[index].to_dict(), reason,
                                         attempts=result.attempts,
                                         poison=reason.startswith("poison:"))
                results[index] = result

            if workers is not None and workers > 0:
                from repro.experiments import workers as worker_pool
                pool_kwargs: Dict[str, Any] = {}
                if poison_strikes is not None:
                    pool_kwargs["poison_strikes"] = poison_strikes
                if heartbeat_s is not None:
                    pool_kwargs["heartbeat_s"] = heartbeat_s
                if ledger is not None:
                    pool_kwargs["on_event"] = (
                        lambda violation:
                        ledger.record_event(violation.to_jsonable()))
                worker_stats = worker_pool.run_persistent(
                    specs, misses, workers=workers, on_result=on_result,
                    timeout_s=timeout_s, retries=retries,
                    retry_backoff_s=retry_backoff_s, **pool_kwargs)
            elif jobs > 1 or timeout_s is not None:
                _run_pool(specs, misses, jobs=jobs, timeout_s=timeout_s,
                          retries=retries, retry_backoff_s=retry_backoff_s,
                          on_result=on_result)
            else:
                _run_serial(specs, misses, retries=retries,
                            retry_backoff_s=retry_backoff_s,
                            on_result=on_result)
    finally:
        if owned_ledger is not None:
            owned_ledger.close()

    grid_result = GridResult(
        results=[r for r in results if r is not None],
        elapsed_s=time.monotonic() - started,
        worker_stats=worker_stats)
    if strict and grid_result.failures:
        raise GridError(grid_result)
    return grid_result


def grid(fn: str, seeds: Iterable[int], **param_grid: Any) -> List[RunSpec]:
    """Cartesian product helper: one spec per (seed x param combo).

    ``param_grid`` values that are lists/tuples are swept; scalars are
    held fixed.  Sweep order is the order the keyword arguments appear,
    innermost being the seed, matching the serial loops the experiments
    used before the runner existed.
    """
    combos: List[Dict[str, Any]] = [{}]
    for name, values in param_grid.items():
        if not isinstance(values, (list, tuple)):
            values = [values]
        combos = [dict(combo, **{name: value})
                  for combo in combos for value in values]
    return [RunSpec.make(fn, seed, **combo)
            for combo in combos for seed in seeds]

"""Parallel experiment harness with an on-disk result cache.

Every paper artefact is an average over many independent simulated
downloads, and each download is a pure function of its
:class:`~repro.experiments.runner.RunSpec` (the simulator guarantees a
run is a pure function of its seed -- see :mod:`repro.simnet.engine`).
That purity buys two things:

* **fan-out** -- cells of an experiment grid can run in worker
  processes (:class:`concurrent.futures.ProcessPoolExecutor`) in any
  order without changing the aggregated result, and
* **memoization** -- a completed cell can be cached on disk, keyed by
  a content hash of its spec plus a fingerprint of the package source,
  so re-running a benchmark or resuming an interrupted sweep only
  executes the missing cells.

An experiment expresses itself as a list of :class:`RunSpec`s and calls
:func:`run_grid`; aggregation happens on the plain-dict metrics each
cell returns.  Cell functions are addressed by dotted path
(``"repro.experiments.table1:run_cell"``) so worker processes can
resolve them without a registry, and they must return JSON-serialisable
dicts so records survive the cache round-trip unchanged.

Telemetry: every :class:`RunResult` carries wall time and, when the
cell reports them (the session-based cells all do), simulated time and
the simulator's executed-event count -- so perf regressions show up in
benchmark output rather than only in wall-clock noise.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every cached record regardless of source changes.
CACHE_FORMAT = 1

_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_jsonable(value: Any, where: str) -> None:
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_jsonable(item, where)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"{where}: dict keys must be str, got {key!r}")
            _check_jsonable(item, where)
        return
    raise TypeError(f"{where}: {value!r} is not JSON-serialisable")


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid.

    A spec is declarative on purpose: a dotted path to a top-level cell
    function plus JSON-serialisable parameters.  That keeps it picklable
    for worker processes and hashable for the cache key -- a
    :class:`~repro.experiments.session.SessionConfig` (which holds
    callables) never crosses a process or cache boundary.
    """

    #: Dotted path ``"package.module:function"`` of the cell function.
    fn: str
    #: Master seed for the cell's simulator.
    seed: int
    #: Sorted ``(name, value)`` pairs of keyword arguments for the cell.
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, fn: str, seed: int, **params: Any) -> "RunSpec":
        """Build a spec, validating that ``params`` survive JSON."""
        _check_jsonable(dict(params), f"RunSpec({fn})")
        return cls(fn=fn, seed=seed,
                   params=tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"fn": self.fn, "seed": self.seed, "params": self.kwargs()}

    def key(self, version: str) -> str:
        """Content-addressed cache key: hash of spec + code version."""
        payload = json.dumps({"spec": self.to_dict(), "version": version,
                              "format": CACHE_FORMAT}, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class RunResult:
    """One completed (or cache-recalled) cell."""

    spec: RunSpec
    metrics: Dict[str, Any]
    wall_time_s: float
    sim_time_s: float
    processed_events: int
    cached: bool

    def to_record(self) -> Dict[str, Any]:
        return {"spec": self.spec.to_dict(), "metrics": self.metrics,
                "wall_time_s": self.wall_time_s,
                "sim_time_s": self.sim_time_s,
                "processed_events": self.processed_events}


@dataclass
class GridResult:
    """All cells of one grid, in spec order."""

    results: List[RunResult]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def metrics(self) -> List[Dict[str, Any]]:
        return [r.metrics for r in self.results]

    @property
    def executed(self) -> int:
        """Cells that actually ran a simulator this invocation."""
        return sum(1 for r in self.results if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def wall_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.results)

    @property
    def sim_time_s(self) -> float:
        return sum(r.sim_time_s for r in self.results)

    @property
    def processed_events(self) -> int:
        return sum(r.processed_events for r in self.results)

@dataclass
class GridTelemetry:
    """Accumulated run telemetry across one or more grids.

    Experiments attach one of these to their result object so the CLI
    and benchmarks can report how much work a sweep actually did --
    and, via ``executed``, prove a warm cache ran zero simulators.
    """

    cells: int = 0
    executed: int = 0
    cached: int = 0
    processed_events: int = 0
    sim_time_s: float = 0.0
    wall_time_s: float = 0.0

    def add(self, grid: "GridResult") -> "GridTelemetry":
        self.cells += len(grid)
        self.executed += grid.executed
        self.cached += grid.cache_hits
        self.processed_events += grid.processed_events
        self.sim_time_s += grid.sim_time_s
        self.wall_time_s += grid.wall_time_s
        return self

    def line(self) -> str:
        """One-line run summary for CLI / benchmark output."""
        return (f"runner: {self.cells} cells "
                f"({self.executed} executed, {self.cached} cached), "
                f"{self.processed_events} events, "
                f"sim {self.sim_time_s:.1f}s in wall {self.wall_time_s:.1f}s")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-runs``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-runs").expanduser()


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the installed ``repro`` package source.

    Hashes the content of every ``*.py`` file under the package root so
    any source change invalidates cached records.  Computed once per
    process.
    """
    global _code_version_cache
    if _code_version_cache is None:
        # The package root, located relative to this file rather than
        # via `import repro` (which would reach the interface layer).
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


class RunCache:
    """Content-addressed on-disk store of completed run records.

    One JSON file per record, named by the spec's cache key; writes are
    atomic (temp file + rename) so a killed sweep never leaves a
    corrupt record behind, and a re-run simply fills in missing cells.
    """

    def __init__(self, root: Optional[Path] = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        # Shard by the first two hex chars to keep directories small.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with path.open() as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            with tmp.open("w") as handle:
                json.dump(record, handle)
            tmp.replace(path)
        except OSError as exc:
            # An unwritable cache must not kill a sweep that already
            # has results in hand; degrade to uncached runs, once.
            self.enabled = False
            print(f"repro: run cache disabled ({exc})", file=sys.stderr)

    @classmethod
    def disabled(cls) -> "RunCache":
        return cls(enabled=False)


def resolve_cell(fn: str):
    """Import and return the cell function named by ``fn``."""
    module_name, _, attr = fn.partition(":")
    if not attr:
        raise ValueError(f"cell path {fn!r} must look like 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one cell in the current process (the worker entry point)."""
    cell = resolve_cell(spec.fn)
    start = time.perf_counter()
    metrics = cell(spec.seed, **spec.kwargs())
    wall = time.perf_counter() - start
    if not isinstance(metrics, dict):
        raise TypeError(f"cell {spec.fn} returned {type(metrics).__name__}, "
                        f"expected dict")
    _check_jsonable(metrics, f"metrics of {spec.fn}")
    return RunResult(
        spec=spec,
        metrics=metrics,
        wall_time_s=wall,
        sim_time_s=float(metrics.get("sim_time_s", 0.0)),
        processed_events=int(metrics.get("processed_events", 0)),
        cached=False,
    )


def _result_from_record(spec: RunSpec, record: Dict[str, Any]) -> RunResult:
    return RunResult(
        spec=spec,
        metrics=record["metrics"],
        wall_time_s=record.get("wall_time_s", 0.0),
        sim_time_s=record.get("sim_time_s", 0.0),
        processed_events=record.get("processed_events", 0),
        cached=True,
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """``jobs`` argument -> worker count (``None``/0 -> 1)."""
    if jobs is None or jobs <= 0:
        return 1
    return jobs


def run_grid(specs: Iterable[RunSpec], *, jobs: Optional[int] = None,
             cache: Optional[RunCache] = None) -> GridResult:
    """Execute a grid of specs, reusing cached cells, in spec order.

    Aggregated output is independent of ``jobs``: cells are pure
    functions of their spec, and results are returned in the order the
    specs were given regardless of completion order.
    """
    specs = list(specs)
    if cache is None:
        cache = RunCache()
    jobs = resolve_jobs(jobs)
    version = code_version()

    keys = [spec.key(version) for spec in specs]
    results: List[Optional[RunResult]] = []
    misses: List[int] = []
    for i, (spec, key) in enumerate(zip(specs, keys)):
        record = cache.get(key)
        if record is not None:
            results.append(_result_from_record(spec, record))
        else:
            results.append(None)
            misses.append(i)

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = [execute_spec(specs[i]) for i in misses]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs,
                                                     len(misses))) as pool:
                fresh = list(pool.map(execute_spec,
                                      [specs[i] for i in misses]))
        for i, result in zip(misses, fresh):
            cache.put(keys[i], result.to_record())
            results[i] = result

    return GridResult(results=[r for r in results if r is not None])


def grid(fn: str, seeds: Iterable[int], **param_grid: Any) -> List[RunSpec]:
    """Cartesian product helper: one spec per (seed x param combo).

    ``param_grid`` values that are lists/tuples are swept; scalars are
    held fixed.  Sweep order is the order the keyword arguments appear,
    innermost being the seed, matching the serial loops the experiments
    used before the runner existed.
    """
    combos: List[Dict[str, Any]] = [{}]
    for name, values in param_grid.items():
        if not isinstance(values, (list, tuple)):
            values = [values]
        combos = [dict(combo, **{name: value})
                  for combo in combos for value in values]
    return [RunSpec.make(fn, seed, **combo)
            for combo in combos for seed in seeds]

"""Single attack-session runner.

One *session* is: one volunteer loads the survey result page through the
compromised gateway while (optionally) the adversary runs its pipeline.
The runner assembles the whole stack -- topology, server, client,
browser, attack -- runs the simulation to completion, and returns every
artefact the experiments need (capture, transmission log, attack report,
load outcome).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.browser.browser import Browser, BrowserConfig, PageLoadResult
from repro.core.adversary import AttackReport, Http2SerializationAttack
from repro.core.metrics import degree_of_multiplexing, object_serialized
from repro.core.phases import AttackConfig
from repro.core.predictor import SizeIdentityMap
from repro.faults import FaultInjector, FaultPlan
from repro.http2.client import Http2Client, Http2ClientConfig
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.invariants import MonitorSuite
from repro.simnet.engine import Simulator
from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.tcp.connection import TcpConfig
from repro.website.isidewith import HTML_PATH, HTML_SIZE, IsideWithSite, build_isidewith_site


@dataclass
class SessionConfig:
    """Everything one session depends on."""

    seed: int = 0
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    server: Http2ServerConfig = field(default_factory=Http2ServerConfig)
    browser: BrowserConfig = field(default_factory=BrowserConfig)
    attack: Optional[AttackConfig] = None
    #: Ground-truth party permutation; sampled from the seed when absent.
    permutation: Optional[Sequence[str]] = None
    #: Force warm/cold browser cache; sampled when absent.
    warm: Optional[bool] = None
    #: Wall-clock cap on the simulated session.
    time_limit_s: float = 45.0
    #: Site factory (defaults to the synthetic isidewith.com).
    site_factory: Callable = build_isidewith_site
    #: Page to load on sites with multiple pages (RandomSite).
    page_id: int = 0
    #: Optional defense hook applied to the page plan before the load
    #: (e.g. :func:`repro.defenses.random_order.shuffle_scripted_requests`).
    plan_transform: Optional[Callable] = None
    #: Optional client HTTP/2 settings override (e.g. enable push).
    client_settings: Optional[object] = None
    #: TCP stack overrides (e.g. a legacy 2020-era stack without
    #: TLP/RACK/F-RTO for the recovery ablation).
    server_tcp: Optional[TcpConfig] = None
    client_tcp: Optional[TcpConfig] = None
    #: Browser implementation (e.g. the request-batching defense's
    #: :class:`repro.defenses.batching.BatchingBrowser`).
    browser_class: type = Browser
    #: Fault schedule: a :class:`repro.faults.FaultPlan` or its
    #: JSON-able event list.  None disables injection.
    faults: Optional[object] = None
    #: Arm the runtime invariant monitors
    #: (:class:`repro.invariants.MonitorSuite`, raise mode).  Monitors
    #: only observe, so an armed run is byte-identical to an unarmed
    #: one; the first broken conservation law raises an
    #: :class:`repro.invariants.InvariantViolation`.
    monitors: bool = False


@dataclass
class SessionResult:
    """Artefacts of one completed session."""

    config: SessionConfig
    load: Optional[PageLoadResult]
    report: Optional[AttackReport]
    tx_log: List
    trace: object
    attack: Optional[Http2SerializationAttack]
    site: object
    plan: object
    client: object
    server: object
    duration_s: float
    retransmissions_c2s: int
    retransmissions_s2c: int
    #: Events the simulator executed (perf telemetry for the runner).
    processed_events: int = 0
    #: The armed fault injector (``.applied`` logs what fired), or None.
    injector: Optional[FaultInjector] = None
    #: The armed monitor suite, or None when ``config.monitors`` was off.
    monitor: Optional[MonitorSuite] = None

    @property
    def permutation(self):
        return self.plan.meta.get("permutation")

    @property
    def warm(self) -> bool:
        return bool(self.plan.meta.get("warm"))

    @property
    def broken(self) -> bool:
        return self.load is None or self.load.broken

    @property
    def retransmissions(self) -> int:
        return self.retransmissions_c2s + self.retransmissions_s2c

    def degree(self, path: str) -> float:
        """Ground-truth degree of multiplexing of an object's first serve."""
        return degree_of_multiplexing(self.tx_log, path)

    def serialized(self, path: str) -> bool:
        """Ground truth: did the object cross the wire un-interleaved?"""
        try:
            return object_serialized(self.tx_log, path)
        except KeyError:
            return False


def isidewith_size_map(site: IsideWithSite,
                       tolerance: int = 400) -> SizeIdentityMap:
    """The adversary's pre-compiled size -> identity map (Section V)."""
    sizes = {HTML_SIZE: "html"}
    for size, party in site.party_size_map().items():
        sizes[size] = party
    return SizeIdentityMap(sizes, tolerance=tolerance)


def run_session(config: SessionConfig) -> SessionResult:
    """Run one volunteer session end to end."""
    sim = Simulator(seed=config.seed)
    topo = StandardTopology(sim, config.topology)
    site = config.site_factory()

    # Arm sim/link monitors before any endpoint exists (the client emits
    # its SYN at construction time); endpoint monitors attach as built.
    suite: Optional[MonitorSuite] = None
    if config.monitors:
        suite = MonitorSuite(mode="raise")
        suite.attach(sim, topology=topo)

    server_tcp = config.server_tcp or TcpConfig(deliver_duplicates=True,
                                                initial_ssthresh_bytes=48_000)
    server = Http2Server(sim, topo.server, site, config.server,
                         tcp_config=server_tcp)
    if suite is not None:
        suite.attach_server(server)

    attack: Optional[Http2SerializationAttack] = None
    if config.attack is not None:
        size_map = (isidewith_size_map(site, config.attack.size_tolerance)
                    if isinstance(site, IsideWithSite) else None)
        census = [obj.size for obj in site.objects.values()]
        attack = Http2SerializationAttack(sim, topo.middlebox, topo.trace,
                                          config.attack, size_map=size_map,
                                          census_sizes=census)
        attack.attach()

    client_config = Http2ClientConfig(authority=site.authority)
    if config.client_settings is not None:
        client_config.settings = config.client_settings
    client = Http2Client(sim, topo.client, server_addr="server", port=443,
                         config=client_config,
                         tcp_config=config.client_tcp
                         or TcpConfig(deliver_duplicates=False))
    if suite is not None:
        suite.attach_client(client)

    plan_rng = sim.rng("plan")
    if isinstance(site, IsideWithSite):
        plan = site.plan_load(plan_rng, permutation=config.permutation,
                              warm=config.warm)
    else:
        plan = site.plan_load(plan_rng, config.page_id)
    if config.plan_transform is not None:
        plan = config.plan_transform(plan, sim.rng("plan-transform"))

    injector: Optional[FaultInjector] = None
    fault_plan = FaultPlan.coerce(config.faults)
    if fault_plan is not None and len(fault_plan):
        injector = FaultInjector(sim, topo, server=server, plan=fault_plan)
        injector.arm()

    browser = config.browser_class(sim, client, plan, config.browser)
    browser.start()

    while browser.result is None and sim.now < config.time_limit_s:
        sim.run(until=min(sim.now + 0.5, config.time_limit_s))
    # Grace period: let in-flight packets land so the capture is complete.
    sim.run(until=sim.now + 0.3)

    if suite is not None:
        suite.finalize()

    trace = topo.trace
    return SessionResult(
        config=config,
        load=browser.result,
        report=attack.report() if attack is not None else None,
        tx_log=server.combined_tx_log(),
        trace=trace,
        attack=attack,
        site=site,
        plan=plan,
        client=client,
        server=server,
        duration_s=sim.now,
        retransmissions_c2s=trace.retransmit_count(CLIENT_TO_SERVER),
        retransmissions_s2c=trace.retransmit_count(SERVER_TO_CLIENT),
        processed_events=sim.processed_events,
        injector=injector,
        monitor=suite,
    )


def run_sessions(n: int, make_config: Callable[[int], SessionConfig],
                 ) -> List[SessionResult]:
    """Run ``n`` sessions with per-repetition configs (seeded by index)."""
    return [run_session(make_config(i)) for i in range(n)]

"""E6 -- Fig. 1: size estimation, serialized vs multiplexed.

The paper's motivating figure: with objects transmitted back-to-back,
summing packet sizes between sub-MTU delimiters recovers object sizes
exactly; with multiplexed transmission the same procedure produces
garbage.  We reproduce it quantitatively on a two-object micro site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.browser.browser import Browser, BrowserConfig
from repro.core.estimator import SizeEstimator
from repro.experiments.results import ResultTable
from repro.http2.client import Http2Client
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology
from repro.website.objects import WebObject
from repro.website.sitemap import PageLoadPlan, PlannedRequest, Site

OBJECT_A = 41_317
OBJECT_B = 28_750


class _TwoObjectSite(Site):
    """O1 and O2, requested with a configurable gap."""

    def __init__(self, gap_s: float):
        super().__init__(name="micro", authority="micro.example")
        self.gap_s = gap_s
        self.add(WebObject(path="/o1", size=OBJECT_A,
                           content_type="image/png", cacheable=False))
        self.add(WebObject(path="/o2", size=OBJECT_B,
                           content_type="image/png", cacheable=False))

    def plan_load(self, rng, _page_id: int = 0) -> PageLoadPlan:
        return PageLoadPlan(
            initial=[],
            html=PlannedRequest(path="/o1", gap_s=0.0),
            preload=[PlannedRequest(path="/o2", gap_s=self.gap_s)],
            exec_delay_s=0.01,
        )


@dataclass
class SizeEstimationResult:
    """Estimates under the two Fig. 1 cases."""

    serialized_estimates: List[int]
    multiplexed_estimates: List[int]
    serialized_exact: bool
    multiplexed_exact: bool

    def table(self) -> ResultTable:
        table = ResultTable(
            "E6 / Fig. 1: size recovery, serialized vs multiplexed",
            ["case", "true sizes", "recovered sizes", "exact?"])
        truth = f"{OBJECT_A}, {OBJECT_B}"
        table.add_row("serialized (O2 after O1)", truth,
                      ", ".join(map(str, self.serialized_estimates)),
                      "yes" if self.serialized_exact else "no")
        table.add_row("multiplexed (interleaved)", truth,
                      ", ".join(map(str, self.multiplexed_estimates)),
                      "yes" if self.multiplexed_exact else "no")
        return table


def _run_micro(gap_s: float, seed: int = 5) -> List[int]:
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim)
    site = _TwoObjectSite(gap_s)
    Http2Server(sim, topo.server, site, Http2ServerConfig())
    client = Http2Client(sim, topo.client, "server")
    browser = Browser(sim, client, site.plan_load(sim.rng("plan")),
                      BrowserConfig(page_timeout_s=10.0))
    browser.start()
    while browser.result is None and sim.now < 12.0:
        sim.run(until=sim.now + 0.5)
    sim.run(until=sim.now + 0.3)
    estimates = SizeEstimator().estimate_from_trace(topo.trace)
    return [e.size for e in estimates if e.size > 5_000]


def run_size_estimation(serialized_gap_s: float = 0.30,
                        multiplexed_gap_s: float = 0.0005,
                        tolerance: int = 200) -> SizeEstimationResult:
    """Run both Fig. 1 cases and check exact recovery."""
    serialized = _run_micro(serialized_gap_s)
    multiplexed = _run_micro(multiplexed_gap_s)

    def exact(estimates: List[int]) -> bool:
        return (len(estimates) == 2
                and abs(estimates[0] - OBJECT_A) <= tolerance
                and abs(estimates[1] - OBJECT_B) <= tolerance)

    return SizeEstimationResult(
        serialized_estimates=serialized,
        multiplexed_estimates=multiplexed,
        serialized_exact=exact(serialized),
        multiplexed_exact=exact(multiplexed),
    )

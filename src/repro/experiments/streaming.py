"""E8 (extension) -- streaming traffic (paper Section VII).

"We strongly believe that our attack technique can supplement the
existing attacks on HTTP/2 streaming."

Three conditions, each asking how much of the viewer's bitrate-rung
sequence an on-path adversary recovers from encrypted segment sizes:

* ``sequential`` -- the player keeps one segment in flight: transfers
  are naturally serialized and the passive estimator reads the ladder.
* ``pipelined`` -- the player keeps several segments in flight: HTTP/2
  multiplexes them and passive recovery degrades.
* ``pipelined + attack`` -- the adversary's request spacing serializes
  the pipelined player's segments again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.adversary import Http2SerializationAttack
from repro.core.estimator import SizeEstimator
from repro.core.phases import jitter_only_config
from repro.experiments.results import ResultTable
from repro.http2.client import Http2Client
from repro.http2.server import Http2Server, Http2ServerConfig
from repro.simnet.engine import Simulator
from repro.simnet.topology import StandardTopology
from repro.tcp.connection import TcpConfig
from repro.website.streaming import StreamingSite, Viewer


@dataclass
class StreamingPoint:
    """One condition's rung-recovery accuracy."""

    condition: str
    rung_accuracy_pct: float
    segments_completed: float
    rebuffer_events: float


@dataclass
class StreamingResult:
    n_sessions: int
    points: List[StreamingPoint]

    def table(self) -> ResultTable:
        table = ResultTable(
            "E8 (extension): bitrate-ladder recovery from encrypted "
            "streaming traffic",
            ["player", "rung recovery (%)", "segments done", "rebuffers"])
        for point in self.points:
            table.add_row(point.condition, point.rung_accuracy_pct,
                          point.segments_completed, point.rebuffer_events)
        return table


def _run_streaming_session(seed: int, prefetch: int,
                           attack_spacing_s: Optional[float]):
    sim = Simulator(seed=seed)
    topo = StandardTopology(sim)
    site = StreamingSite()
    Http2Server(sim, topo.server, site,
                Http2ServerConfig(),
                tcp_config=TcpConfig(deliver_duplicates=True,
                                     initial_ssthresh_bytes=48_000))
    if attack_spacing_s:
        attack = Http2SerializationAttack(
            sim, topo.middlebox, topo.trace,
            jitter_only_config(attack_spacing_s))
        attack.attach()
    client = Http2Client(sim, topo.client, "server")
    viewer = Viewer(sim, client, site, prefetch=prefetch)
    viewer.start()
    limit = site.n_segments * 4.0 + 10.0
    while not viewer.done and sim.now < limit:
        sim.run(until=sim.now + 1.0)
    sim.run(until=sim.now + 0.3)
    return viewer.result(), topo.trace, site


def _recover_rungs(trace, site: StreamingSite) -> List[int]:
    estimates = SizeEstimator().estimate_from_trace(trace)
    rungs = []
    for estimate in estimates:
        if estimate.size < 20_000:  # below the smallest rung
            continue
        rung = site.rung_of_size(estimate.size)
        if rung is not None:
            rungs.append(rung)
    return rungs


def _accuracy(truth: List[int], recovered: List[int]) -> float:
    if not truth:
        return 0.0
    matched = sum(1 for a, b in zip(truth, recovered) if a == b)
    return matched / len(truth)


def run_streaming(n_sessions: int = 10, base_seed: int = 0) -> StreamingResult:
    """Run the three streaming conditions."""
    conditions = (
        ("sequential player", 1, None),
        ("pipelined player (3 in flight)", 3, None),
        # Segments are tens-to-hundreds of KB, so the planner's spacing
        # for them is far larger than the 80 ms used for small images
        # (repro.core.planner.required_spacing_s(375_000, rtt) ~ 0.25 s).
        ("pipelined + spacing attack", 3, 0.5),
    )
    points: List[StreamingPoint] = []
    for name, prefetch, spacing in conditions:
        accuracy = 0.0
        completed = 0.0
        rebuffers = 0.0
        for i in range(n_sessions):
            session, trace, site = _run_streaming_session(
                base_seed + i, prefetch, spacing)
            recovered = _recover_rungs(trace, site)
            accuracy += _accuracy(session.rung_history, recovered)
            completed += session.completed_segments
            rebuffers += session.rebuffer_events
        points.append(StreamingPoint(
            condition=name,
            rung_accuracy_pct=100.0 * accuracy / n_sessions,
            segments_completed=completed / n_sessions,
            rebuffer_events=rebuffers / n_sessions,
        ))

    # The Section VII tail-residue analyzer, run passively against the
    # *pipelined* player: the VBR census pins down exact (rung, index)
    # pairs even inside interleaved runs.
    accuracy = 0.0
    completed = 0.0
    rebuffers = 0.0
    for i in range(n_sessions):
        session, trace, site = _run_streaming_session(base_seed + i, 3, None)
        accuracy += _partial_rung_accuracy(session, trace, site)
        completed += session.completed_segments
        rebuffers += session.rebuffer_events
    points.append(StreamingPoint(
        condition="pipelined + tail-residue analyzer (passive)",
        rung_accuracy_pct=100.0 * accuracy / n_sessions,
        segments_completed=completed / n_sessions,
        rebuffer_events=rebuffers / n_sessions,
    ))
    return StreamingResult(n_sessions=n_sessions, points=points)


def _partial_rung_accuracy(session, trace, site: StreamingSite) -> float:
    from repro.core.deinterleave import PartialMultiplexAnalyzer
    from repro.simnet.middlebox import SERVER_TO_CLIENT

    census = list(site.segment_sizes.values())
    analyzer = PartialMultiplexAnalyzer(census)
    size_to_key = {size: key for key, size in site.segment_sizes.items()}
    matches = analyzer.analyze(trace.completed_records(SERVER_TO_CLIENT))
    rung_by_index = {}
    for match in matches:
        key = size_to_key.get(match.size)
        if key is not None:
            rung, index = key
            rung_by_index.setdefault(index, rung)
    truth = session.rung_history
    if not truth:
        return 0.0
    hits = sum(1 for index, rung in enumerate(truth)
               if rung_by_index.get(index) == rung)
    return hits / len(truth)

"""E2 -- Table I: effect of jitter on HTTP/2 multiplexing.

Paper numbers (object of interest = the 9500-byte result HTML):

===============  ==========================  =====================
delay/request    non-multiplexed cases (%)    retransmissions (+%)
===============  ==========================  =====================
0 ms (baseline)  32                           0
25 ms            46                           ~33
50 ms            54                           ~130
100 ms           54                           ~194
===============  ==========================  =====================

Our gateway model offers two jitter implementations (see DESIGN.md):
the deterministic spacing ramp (primary; reproduces the non-mux column)
and netem-style independent delay (reproduces retransmission inflation
at every level).  The harness reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.phases import jitter_only_config
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session
from repro.website.isidewith import HTML_PATH

#: The paper's jitter values (seconds).
JITTER_VALUES_S = (0.0, 0.025, 0.05, 0.1)

#: Paper's Table I for the comparison columns.
PAPER_NONMUX_PCT = {0.0: 32, 0.025: 46, 0.05: 54, 0.1: 54}
PAPER_RETX_INCREASE_PCT = {0.0: 0, 0.025: 33, 0.05: 130, 0.1: 194}

#: Runner cell for one (seed, jitter, style) grid point.
CELL = "repro.experiments.table1:run_cell"


@dataclass
class JitterPoint:
    """One jitter setting's measurements."""

    jitter_s: float
    nonmux_pct: float
    mean_retransmissions: float
    retx_increase_pct: float
    broken_pct: float


@dataclass
class Table1Result:
    """The full sweep for one jitter style."""

    style: str
    n_per_point: int
    points: List[JitterPoint]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            f"E2 / Table I: jitter sweep (style={self.style})",
            ["jitter (ms)", "non-mux (%)", "paper (%)",
             "retx/load", "retx increase (%)", "paper (+%)"])
        for point in self.points:
            table.add_row(
                int(point.jitter_s * 1000),
                point.nonmux_pct,
                PAPER_NONMUX_PCT.get(point.jitter_s, "-"),
                point.mean_retransmissions,
                point.retx_increase_pct,
                PAPER_RETX_INCREASE_PCT.get(point.jitter_s, "-"),
            )
        return table


def run_cell(seed: int, jitter_s: float, style: str) -> dict:
    """One simulated load at one jitter setting (JSON-able metrics)."""
    attack = jitter_only_config(jitter_s, style) if jitter_s > 0 else None
    result = run_session(SessionConfig(seed=seed, attack=attack))
    try:
        nonmux = bool(result.degree(HTML_PATH) == 0.0)
        observed = True
    except KeyError:
        nonmux = False
        observed = False
    return {
        "nonmux": nonmux,
        "observed": observed,
        "retransmissions": result.retransmissions,
        "broken": bool(result.broken),
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_table1(n_per_point: int = 100, base_seed: int = 0,
               style: str = "spacing",
               jitter_values: Sequence[float] = JITTER_VALUES_S,
               jobs: Optional[int] = None,
               cache: Optional[RunCache] = None,
               cell_timeout_s: Optional[float] = None,
               retries: int = 0,
               workers: Optional[int] = None,
               ledger=None) -> Table1Result:
    """Run the Table I sweep for one jitter style."""
    specs = [RunSpec.make(CELL, base_seed + i, jitter_s=jitter, style=style)
             for jitter in jitter_values for i in range(n_per_point)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)

    by_jitter: Dict[float, List[dict]] = {j: [] for j in jitter_values}
    for result in grid:
        by_jitter[result.spec.kwargs()["jitter_s"]].append(result.metrics)

    points: List[JitterPoint] = []
    baseline_retx: Optional[float] = None
    for jitter in jitter_values:
        cells = by_jitter[jitter]
        nonmux = sum(c["nonmux"] for c in cells)
        observed = sum(c["observed"] for c in cells)
        retx = sum(c["retransmissions"] for c in cells)
        broken = sum(c["broken"] for c in cells)
        mean_retx = retx / n_per_point
        if baseline_retx is None:
            baseline_retx = max(mean_retx, 0.01)
            increase = 0.0
        else:
            increase = 100.0 * (mean_retx - baseline_retx) / baseline_retx
        points.append(JitterPoint(
            jitter_s=jitter,
            nonmux_pct=100.0 * nonmux / max(1, observed),
            mean_retransmissions=mean_retx,
            retx_increase_pct=increase,
            broken_pct=100.0 * broken / n_per_point,
        ))
    return Table1Result(style=style, n_per_point=n_per_point, points=points,
                        telemetry=GridTelemetry().add(grid))

"""E5 -- Table II: end-to-end prediction accuracy (Section V).

The paper's numbers (success %, target = one object at a time / all
objects at a time):

=========  ====  ===  ===  ===  ===  ===  ===  ===  ===
object     HTML  I1   I2   I3   I4   I5   I6   I7   I8
single     100   100  100  100  100  100  100  100  100
all        90    90   85   81   80   62   64   78   64
=========  ====  ===  ===  ===  ===  ===  ===  ===  ===
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.phases import AttackConfig
from repro.experiments.evaluation import (
    Table2Outcome,
    aggregate_table2,
    evaluate_table2,
)
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    GridTelemetry,
    RunCache,
    RunSpec,
    run_grid,
)
from repro.experiments.session import SessionConfig, run_session

PAPER_SINGLE = (100, 100, 100, 100, 100, 100, 100, 100, 100)
PAPER_ALL = (90, 90, 85, 81, 80, 62, 64, 78, 64)
OBJECT_LABELS = ("HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8")
#: Table II row 1: T(Req O_curr) - T(Req O_prev) in milliseconds.
PAPER_GAP_PREV_MS = (500, 780, 0.4, 2, 0.3, 0.1, 0.3, 2, 0.5)

#: Runner cells: one attacked load / one clean profiling load.
CELL = "repro.experiments.table2:run_cell"
GAP_CELL = "repro.experiments.table2:run_gap_cell"


@dataclass
class Table2Result:
    """Aggregated per-object success rates."""

    n: int
    single_pct: List[float]
    all_pct: List[float]
    broken_pct: float
    mean_resets: float
    #: Measured natural inter-request gaps (ms), Table II row 1.
    gap_prev_ms: List[float]
    telemetry: Optional[GridTelemetry] = None

    def table(self) -> ResultTable:
        table = ResultTable(
            "E5 / Table II: per-object attack success and request timing",
            ["object", "gap prev (ms)", "paper", "single (%)", "paper",
             "all-objects (%)", "paper"])
        for i, label in enumerate(OBJECT_LABELS):
            table.add_row(label,
                          round(self.gap_prev_ms[i], 1),
                          PAPER_GAP_PREV_MS[i],
                          self.single_pct[i], PAPER_SINGLE[i],
                          self.all_pct[i], PAPER_ALL[i])
        return table


def run_cell(seed: int) -> dict:
    """One attacked load evaluated against the Table II criteria."""
    result = run_session(SessionConfig(seed=seed, attack=AttackConfig()))
    return {
        "outcome": asdict(evaluate_table2(result)),
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def run_gap_cell(seed: int) -> dict:
    """One clean load's natural inter-request gaps (ms) per slot.

    Slots are HTML then I1..I8; a slot is ``None`` when its object was
    the first request or never requested (e.g. warm-cache loads).
    """
    from repro.website.isidewith import HTML_PATH, IsideWithSite

    result = run_session(SessionConfig(seed=seed))
    events = [e for e in result.load.requests if not e.is_rerequest]
    times = {e.path: e.time for e in events}
    ordered = sorted(events, key=lambda e: e.time)
    positions = {e.path: k for k, e in enumerate(ordered)}
    targets = [HTML_PATH] + [IsideWithSite.image_path(p)
                             for p in result.permutation]
    gaps: List[Optional[float]] = []
    for path in targets:
        position = positions.get(path)
        if position is None or position == 0:
            gaps.append(None)
        else:
            gaps.append((times[path] - ordered[position - 1].time) * 1000.0)
    return {
        "gaps_ms": gaps,
        "sim_time_s": result.duration_s,
        "processed_events": result.processed_events,
    }


def measure_natural_gaps(n_loads: int = 10, base_seed: int = 5000,
                         jobs: Optional[int] = None,
                         cache: Optional[RunCache] = None,
                         telemetry: Optional[GridTelemetry] = None,
                         cell_timeout_s: Optional[float] = None,
                         retries: int = 0,
                         workers: Optional[int] = None,
                         ledger=None) -> List[float]:
    """Mean natural inter-request gaps (ms) for HTML and I1..I8.

    Measured over clean (un-attacked) loads, exactly as the paper's
    adversary profiled its target before tuning the jitter
    (assumption 4 of Section III).
    """
    specs = [RunSpec.make(GAP_CELL, base_seed + i) for i in range(n_loads)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)
    if telemetry is not None:
        telemetry.add(grid)

    sums = [0.0] * 9
    counts = [0] * 9
    for metrics in grid.metrics():
        for slot, gap in enumerate(metrics["gaps_ms"]):
            if gap is None:
                continue
            sums[slot] += gap
            counts[slot] += 1
    return [sums[i] / counts[i] if counts[i] else 0.0 for i in range(9)]


def run_table2(n_loads: int = 100, base_seed: int = 0,
               jobs: Optional[int] = None,
               cache: Optional[RunCache] = None,
               cell_timeout_s: Optional[float] = None,
               retries: int = 0,
               workers: Optional[int] = None,
               ledger=None) -> Table2Result:
    """Run the full attack over many volunteer sessions."""
    specs = [RunSpec.make(CELL, base_seed + i) for i in range(n_loads)]
    grid = run_grid(specs, jobs=jobs, cache=cache, timeout_s=cell_timeout_s,
                    retries=retries,
                    workers=workers, ledger=ledger)
    telemetry = GridTelemetry().add(grid)

    outcomes = [Table2Outcome(**metrics["outcome"])
                for metrics in grid.metrics()]
    aggregated = aggregate_table2(outcomes)
    return Table2Result(
        n=aggregated["n"],
        single_pct=aggregated["single"],
        all_pct=aggregated["all"],
        broken_pct=aggregated["broken_pct"],
        mean_resets=aggregated["mean_resets"],
        gap_prev_ms=measure_natural_gaps(min(10, max(3, n_loads // 4)),
                                         jobs=jobs, cache=cache,
                                         telemetry=telemetry,
                                         cell_timeout_s=cell_timeout_s,
                                         retries=retries,
                                         workers=workers, ledger=ledger),
        telemetry=telemetry,
    )

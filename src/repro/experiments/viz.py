"""ASCII timelines of object transmissions.

Renders a server transmission log as one row per object and one column
per time bucket -- the quickest way to *see* multiplexing (rows
overlap) versus the attack's serialization (a staircase).  Used by the
examples; handy when debugging calibrations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.metrics import serve_spans


def wire_timeline(tx_log: Sequence, width: int = 88,
                  since: float = 0.0, until: Optional[float] = None,
                  max_rows: int = 30, label_width: int = 30) -> str:
    """Render the transmission log as an ASCII Gantt chart.

    Each row is one serve instance (duplicates marked ``*``); ``#``
    cells carry that object's bytes.  Rows are ordered by first
    transmission.
    """
    spans = [span for span in serve_spans(tx_log).values()
             if span.end_time >= since
             and (until is None or span.start_time <= until)]
    if not spans:
        return "(no transmissions in window)"
    spans.sort(key=lambda span: span.start_time)
    spans = spans[:max_rows]

    t0 = min(span.start_time for span in spans)
    t1 = max(span.end_time for span in spans)
    t1 = max(t1, t0 + 1e-6)
    scale = (width - 1) / (t1 - t0)

    lines = [f"time {t0:.2f}s .. {t1:.2f}s "
             f"({(t1 - t0):.2f}s across {width} columns)"]
    for span in spans:
        start = int((span.start_time - t0) * scale)
        end = int((span.end_time - t0) * scale)
        row = [" "] * width
        for i in range(start, min(end + 1, width)):
            row[i] = "#"
        name = span.object_path.rsplit("/", 1)[-1][:label_width - 2]
        marker = "*" if span.duplicate else " "
        lines.append(f"{name:>{label_width}}{marker}|{''.join(row)}|")
    return "\n".join(lines)


def degree_summary(tx_log: Sequence, paths: Sequence[str]) -> str:
    """One line per path: its first-serve degree of multiplexing."""
    from repro.core.metrics import degree_of_multiplexing
    lines = []
    for path in paths:
        try:
            degree = degree_of_multiplexing(tx_log, path)
        except KeyError:
            lines.append(f"  {path}: (not served)")
            continue
        bar = "#" * int(degree * 20)
        lines.append(f"  {path}: degree {degree * 100:5.1f}% |{bar:<20}|")
    return "\n".join(lines)

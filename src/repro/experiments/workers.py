"""Supervised persistent worker pool for the experiment runner.

The process-per-cell pool in :mod:`repro.experiments.runner` pays one
``fork`` + interpreter teardown per grid cell.  This module replaces
that with a pool of **long-lived worker processes** supervised over
duplex pipes: the supervisor streams one :class:`RunSpec` at a time to
each worker (a bounded queue of depth one per worker -- backpressure is
structural, a million-cell sweep never materializes more than
``workers`` cells in flight), workers execute cells with
:func:`~repro.experiments.runner.execute_spec` and ship structured
results back.  Results are byte-identical to serial execution because
cells are pure functions of their spec and the supervisor places
results by spec index.

Robustness model (the reason this module exists):

* **Heartbeats.**  Every worker runs a daemon thread that beats over
  the pipe each ``heartbeat_s``.  A worker whose beats stop (wedged C
  call, SIGSTOP, livelock) is killed and respawned; the cell it held is
  re-dispatched and the event is recorded as a ``WORKER_HEARTBEAT_LOST``
  violation in the invariant taxonomy.
* **Crash containment.**  A worker that dies (segfault, ``os._exit``,
  kill -9) surfaces as EOF on its pipe; the supervisor respawns it with
  capped exponential backoff and charges a *strike* against the cell it
  was running.
* **Poison quarantine.**  A cell whose strikes reach ``poison_strikes``
  consecutive worker deaths is marked failed (reason prefixed
  ``poison:``) and skipped -- it cannot wedge the sweep by killing
  replacement workers forever, no matter how large ``retries`` is.
* **Dirty-state refusal.**  Each worker arms a
  :class:`WorkerStateGuard` at birth; before every cell it verifies the
  ambient state a cell must not depend on (cwd, environment, global
  random state) is untouched.  A dirty worker refuses the cell, reports
  ``WORKER_STATE_DIRTY``, and exits so the supervisor replaces it with
  a pristine interpreter -- the static CACHE lint family polices this
  at review time; the guard enforces it at run time.
* **Graceful degradation.**  If the respawn budget is exhausted and no
  worker survives, remaining cells run serially in the supervisor --
  except cells that already killed a worker, which are failed rather
  than invited to take down the supervisor too.

This module is on the DET002 wall-clock allowlist (like the runner's
telemetry): heartbeat ages, stall deadlines and backoff windows are
real-time concepts, not simulated time.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.runner import (
    RunResult,
    RunSpec,
    _failed_result,
    _retry_delay,
    execute_spec,
)
from repro.invariants.violations import Violation

#: Default interval between worker heartbeats (seconds).
HEARTBEAT_INTERVAL_S = 0.5

#: Default consecutive worker deaths before a cell is quarantined.
POISON_STRIKES = 3

#: Ceiling on the respawn backoff, seconds.
RESPAWN_BACKOFF_CAP_S = 5.0

#: Environment variable for deterministic fault injection in smoke
#: tests: ``kill-one`` SIGKILLs one worker after the first result.
CHAOS_ENV = "REPRO_WORKER_CHAOS"


# -- worker-side state guard -------------------------------------------------

class WorkerStateGuard:
    """Detects ambient-state contamination between cells.

    Cells are pure functions of their spec; the lint CACHE family
    rejects cells that *read* ambient state, and this guard rejects
    workers whose previous cell *wrote* it.  The snapshot covers the
    channels a cell could plausibly leak through without tripping the
    linter: working directory, environment, and the interpreter's
    global random stream.
    """

    def __init__(self) -> None:
        self._baseline = self._snapshot()

    @staticmethod
    def _snapshot() -> Dict[str, str]:
        env_digest = hashlib.sha256()
        for key in sorted(os.environ):
            env_digest.update(f"{key}={os.environ[key]}\0".encode(
                "utf-8", "surrogateescape"))
        # getstate() only observes the global stream; cells that *draw*
        # from it are what DET003 forbids.
        state_digest = hashlib.sha256(
            repr(random.getstate()).encode()).hexdigest()[:16]
        return {
            "cwd": os.getcwd(),
            "environ": env_digest.hexdigest()[:16],
            "random": state_digest,
        }

    def check(self) -> List[str]:
        """Names of the ambient channels that drifted since arming."""
        current = self._snapshot()
        return [f"{name} changed" for name in sorted(self._baseline)
                if current[name] != self._baseline[name]]


# -- worker process entry ----------------------------------------------------

def _persistent_worker_main(conn, worker_id: int,
                            heartbeat_s: float) -> None:
    """Loop: receive ``("run", index, spec, ...)``, execute, reply.

    A daemon thread beats every ``heartbeat_s`` so the supervisor can
    tell a busy worker from a wedged one.  The guard armed here refuses
    any cell offered to a contaminated interpreter -- the worker reports
    and exits rather than risk a result that differs from a fresh
    process.
    """
    guard = WorkerStateGuard()
    send_lock = threading.Lock()
    current: Dict[str, Any] = {"index": None}
    stop = threading.Event()
    supervisor_pid = os.getppid()

    def _send(message: Tuple) -> bool:
        with send_lock:
            try:
                conn.send(message)
                return True
            except (OSError, ValueError):
                return False

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            # Orphan watchdog: under fork every worker inherits dup'd
            # pipe ends (including its own), so supervisor death never
            # surfaces as EOF on ``recv`` -- a reparented worker would
            # otherwise block forever.  If our parent changed, the
            # supervisor is gone; exit instead of leaking.
            if os.getppid() != supervisor_pid:
                os._exit(2)
            if not _send(("beat", current["index"])):
                return

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    _send(("ready", worker_id))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, index, spec = message
        dirt = guard.check()
        if dirt:
            # Refuse to run in a contaminated interpreter; the cell is
            # not charged (it never executed) and this process ends.
            _send(("dirty", index, dirt))
            break
        current["index"] = index
        try:
            result = execute_spec(spec)
            reply = ("ok", index, result.metrics, result.wall_time_s)
        except BaseException as exc:
            reply = ("error", index, f"{type(exc).__name__}: {exc}")
        current["index"] = None
        if not _send(reply):
            break
    stop.set()
    conn.close()


# -- supervisor --------------------------------------------------------------

@dataclass
class WorkerStats:
    """Worker-health telemetry for one pool run (rides on GridResult)."""

    spawned: int = 0
    respawned: int = 0
    crashed: int = 0
    stalled: int = 0
    dirty: int = 0
    poisoned: int = 0
    degraded_to_serial: bool = False
    #: Serialized worker-health :class:`Violation`s, oldest first.
    events: List[dict] = field(default_factory=list)

    def merge(self, other: "WorkerStats") -> "WorkerStats":
        self.spawned += other.spawned
        self.respawned += other.respawned
        self.crashed += other.crashed
        self.stalled += other.stalled
        self.dirty += other.dirty
        self.poisoned += other.poisoned
        self.degraded_to_serial |= other.degraded_to_serial
        self.events.extend(other.events)
        return self

    def line(self) -> str:
        parts = [f"{self.spawned} spawned"]
        if self.respawned:
            parts.append(f"{self.respawned} respawned")
        if self.crashed:
            parts.append(f"{self.crashed} crashed")
        if self.stalled:
            parts.append(f"{self.stalled} stalled")
        if self.dirty:
            parts.append(f"{self.dirty} dirty")
        if self.poisoned:
            parts.append(f"{self.poisoned} poisoned cell(s)")
        if self.degraded_to_serial:
            parts.append("degraded to serial")
        return "workers: " + ", ".join(parts)


@dataclass
class _Worker:
    """Supervisor-side handle for one live worker process."""

    wid: int
    proc: Any
    conn: Any
    #: ``(spec index, prior attempts)`` while busy, else None.
    current: Optional[Tuple[int, int]] = None
    last_beat: float = 0.0
    busy_since: float = 0.0


def stall_exceeded(last_beat: float, now: float,
                   stall_timeout_s: float) -> bool:
    """True when a worker's beat age *strictly* exceeds the stall
    timeout.  Strict: a beat aged exactly ``stall_timeout_s`` is still
    alive, so the supervisor's wait horizon (``last_beat +
    stall_timeout_s``) can expire without instantly condemning the
    worker it woke up to check."""
    return now - last_beat > stall_timeout_s


def run_persistent(specs: List[RunSpec], misses: List[int], *,
                   workers: int,
                   on_result: Callable[[int, RunResult], None],
                   timeout_s: Optional[float] = None,
                   retries: int = 0,
                   retry_backoff_s: float = 0.5,
                   poison_strikes: int = POISON_STRIKES,
                   heartbeat_s: float = HEARTBEAT_INTERVAL_S,
                   stall_timeout_s: Optional[float] = None,
                   max_respawns: Optional[int] = None,
                   on_event: Optional[Callable[[Violation], None]] = None,
                   ) -> WorkerStats:
    """Execute ``specs[misses]`` on a supervised persistent pool.

    Calls ``on_result(index, result)`` exactly once per miss, in
    completion order; the caller places results by index so the grid
    stays in spec order.  Returns the pool's :class:`WorkerStats`.
    """
    import multiprocessing

    ctx = multiprocessing.get_context()
    target = max(1, min(workers, len(misses)))
    if stall_timeout_s is None:
        stall_timeout_s = max(10.0 * heartbeat_s, 5.0)
    if max_respawns is None:
        max_respawns = max(8, 2 * target)
    chaos = os.environ.get(CHAOS_ENV, "")

    stats = WorkerStats()
    started = time.monotonic()
    #: (spec index, prior attempts, earliest dispatch time).
    pending = deque((index, 0, 0.0) for index in misses)
    settled = 0
    strikes: Dict[int, int] = {}
    pool: Dict[int, _Worker] = {}
    next_wid = 0
    respawns_left = max_respawns
    next_spawn_at = 0.0
    spawn_backoff = 0
    chaos_armed = chaos == "kill-one"

    def emit(code: str, where: str, message: str) -> None:
        violation = Violation(code=code, domain="worker",
                              at_s=time.monotonic() - started,
                              where=where, message=message)
        stats.events.append(violation.to_jsonable())
        if on_event is not None:
            on_event(violation)

    def fail(index: int, reason: str, attempts: int,
             poison: bool = False) -> None:
        nonlocal settled
        result = _failed_result(specs[index], reason, attempts)
        on_result(index, result)
        settled += 1
        if poison:
            stats.poisoned += 1

    def succeed(index: int, metrics: Dict[str, Any], wall: float,
                attempts: int) -> None:
        nonlocal settled
        on_result(index, RunResult(
            spec=specs[index], metrics=metrics, wall_time_s=wall,
            sim_time_s=float(metrics.get("sim_time_s", 0.0)),
            processed_events=int(metrics.get("processed_events", 0)),
            cached=False, attempts=attempts))
        settled += 1

    def settle_failure(index: int, prior_attempts: int, reason: str,
                       worker_death: bool) -> None:
        """One attempt ended badly: strike/retry/quarantine/fail."""
        attempts = prior_attempts + 1
        if worker_death:
            count = strikes.get(index, 0) + 1
            strikes[index] = count
            if count >= poison_strikes:
                emit("CELL_POISONED", f"cell#{index}",
                     f"{specs[index].fn}(seed={specs[index].seed}) killed "
                     f"{count} consecutive workers; quarantined")
                fail(index, f"poison: cell killed {count} consecutive "
                            f"workers; quarantined (last: {reason})",
                     attempts, poison=True)
                return
        else:
            strikes.pop(index, None)
        if prior_attempts < retries:
            resume_at = (time.monotonic()
                         + _retry_delay(retry_backoff_s, prior_attempts))
            pending.append((index, attempts, resume_at))
        else:
            fail(index, reason, attempts)

    def spawn() -> bool:
        nonlocal next_wid, next_spawn_at, spawn_backoff
        wid = next_wid
        next_wid += 1
        try:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_persistent_worker_main,
                               args=(child_conn, wid, heartbeat_s),
                               daemon=True)
            proc.start()
            child_conn.close()
        except OSError:
            spawn_backoff += 1
            next_spawn_at = (time.monotonic()
                             + min(RESPAWN_BACKOFF_CAP_S,
                                   0.1 * (2 ** spawn_backoff)))
            return False
        spawn_backoff = 0
        pool[wid] = _Worker(wid=wid, proc=proc, conn=parent_conn,
                            last_beat=time.monotonic())
        stats.spawned += 1
        return True

    def dispose(worker: _Worker) -> None:
        pool.pop(worker.wid, None)
        try:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(0.5)
                if worker.proc.is_alive():
                    worker.proc.kill()
            worker.proc.join()
        finally:
            try:
                worker.conn.close()
            except OSError:
                pass

    def worker_died(worker: _Worker, kind: str, detail: str) -> None:
        """A worker is gone (crash or stall): account, settle, dispose."""
        if kind == "stall":
            stats.stalled += 1
            emit("WORKER_HEARTBEAT_LOST", f"worker#{worker.wid}", detail)
        else:
            stats.crashed += 1
            emit("WORKER_CRASH", f"worker#{worker.wid}", detail)
        held = worker.current
        worker.current = None
        dispose(worker)
        if held is not None:
            index, prior_attempts = held
            settle_failure(index, prior_attempts, detail, worker_death=True)

    def handle_message(worker: _Worker, message: Tuple) -> None:
        nonlocal chaos_armed
        worker.last_beat = time.monotonic()
        kind = message[0]
        if kind in ("beat", "ready"):
            return
        if kind == "ok":
            _, index, metrics, wall = message
            held = worker.current
            worker.current = None
            prior = held[1] if held is not None else 0
            strikes.pop(index, None)
            succeed(index, metrics, wall, prior + 1)
            if chaos_armed:
                chaos_armed = False
                victim = next((w for w in pool.values()
                               if w.wid != worker.wid), worker)
                if victim.proc.pid is not None:
                    os.kill(victim.proc.pid, signal.SIGKILL)
        elif kind == "error":
            _, index, reason = message
            held = worker.current
            worker.current = None
            prior = held[1] if held is not None else 0
            settle_failure(index, prior, reason, worker_death=False)
        elif kind == "dirty":
            _, index, dirt = message
            held = worker.current
            worker.current = None
            stats.dirty += 1
            emit("WORKER_STATE_DIRTY", f"worker#{worker.wid}",
                 f"worker refused cell #{index}: "
                 + "; ".join(dirt))
            # The cell never ran: requeue without charging an attempt.
            prior = held[1] if held is not None else 0
            pending.appendleft((index, prior, 0.0))
            # The worker exits on its own; reap it quietly.
            dispose(worker)

    def degrade_to_serial() -> None:
        """No workers and no respawn budget: finish in-process."""
        nonlocal settled
        stats.degraded_to_serial = True
        emit("WORKER_POOL_DEGRADED", "supervisor",
             f"respawn budget exhausted after {stats.spawned} spawns; "
             f"running {len(pending)} remaining cell(s) serially")
        while pending:
            index, prior_attempts, _ = pending.popleft()
            if strikes.get(index, 0) > 0:
                fail(index, "worker crashed (cell killed a worker; not "
                            "re-run in the supervisor process)",
                     prior_attempts + 1)
                continue
            attempt = prior_attempts
            while True:
                try:
                    result = execute_spec(specs[index])
                    result.attempts = attempt + 1
                    on_result(index, result)
                    break
                except Exception as exc:
                    if attempt >= retries:
                        fail(index, f"{type(exc).__name__}: {exc}",
                             attempt + 1)
                        attempt = None
                        break
                    time.sleep(_retry_delay(retry_backoff_s, attempt))
                    attempt += 1
            if attempt is not None:
                settled += 1

    try:
        from multiprocessing.connection import wait as connection_wait

        total = len(misses)
        while settled < total:
            now = time.monotonic()

            # Keep the pool at strength while there is work left.
            # Initial spawns (up to ``target``) are free; every further
            # spawn is a respawn charged against ``max_respawns``.
            live_needed = min(target, total - settled)
            while len(pool) < live_needed and now >= next_spawn_at:
                if stats.spawned >= target:
                    if respawns_left <= 0:
                        break
                    if spawn():
                        stats.respawned += 1
                        respawns_left -= 1
                    else:
                        break
                elif not spawn():
                    break
                now = time.monotonic()
            if not pool:
                if stats.spawned == 0 or respawns_left <= 0 \
                        or spawn_backoff >= 6:
                    degrade_to_serial()
                    break
                time.sleep(max(0.0, next_spawn_at - now))
                continue

            # Dispatch: at most one in-flight cell per worker.
            now = time.monotonic()
            idle = [w for w in pool.values() if w.current is None]
            for worker in idle:
                slot = None
                for _ in range(len(pending)):
                    candidate = pending.popleft()
                    if candidate[2] <= now:
                        slot = candidate
                        break
                    pending.append(candidate)
                if slot is None:
                    break
                index, prior_attempts, _ = slot
                try:
                    worker.conn.send(("run", index, specs[index]))
                except (OSError, ValueError):
                    # Died between reap sweeps: requeue and account.
                    pending.appendleft(slot)
                    worker_died(worker, "crash",
                                "worker crashed (send failed)")
                    continue
                worker.current = (index, prior_attempts)
                worker.busy_since = now

            # How long may we block?
            now = time.monotonic()
            horizons = [w.last_beat + stall_timeout_s
                        for w in pool.values()]
            if timeout_s is not None:
                horizons += [w.busy_since + timeout_s
                             for w in pool.values()
                             if w.current is not None]
            horizons += [item[2] for item in pending if item[2] > now]
            wait_s = max(0.01, min(horizons) - now) if horizons else 0.25

            conns = {w.conn: w for w in pool.values()}
            for conn in connection_wait(list(conns), wait_s):
                worker = conns[conn]
                if worker.wid not in pool:
                    continue  # already reaped this round
                try:
                    while conn.poll():
                        handle_message(worker, conn.recv())
                        if worker.wid not in pool:
                            break
                except (EOFError, OSError):
                    worker.proc.join(0.1)  # reap so exitcode is real
                    exitcode = worker.proc.exitcode
                    worker_died(worker, "crash",
                                f"worker crashed (exit code {exitcode})")

            # Health sweep: deadlines, stalls, silent deaths.
            now = time.monotonic()
            for worker in list(pool.values()):
                if not worker.proc.is_alive():
                    exitcode = worker.proc.exitcode
                    worker_died(worker, "crash",
                                f"worker crashed (exit code {exitcode})")
                    continue
                if timeout_s is not None and worker.current is not None \
                        and now - worker.busy_since > timeout_s:
                    held = worker.current
                    worker.current = None
                    dispose(worker)
                    stats.crashed += 1
                    emit("WORKER_CRASH", f"worker#{worker.wid}",
                         f"killed after cell deadline {timeout_s:g}s")
                    settle_failure(held[0], held[1],
                                   f"timed out after {timeout_s:g}s",
                                   worker_death=True)
                    continue
                if stall_exceeded(worker.last_beat, now, stall_timeout_s):
                    worker_died(worker, "stall",
                                f"no heartbeat for {stall_timeout_s:g}s")
    finally:
        for worker in list(pool.values()):
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
            dispose(worker)

    return stats


__all__ = ["CHAOS_ENV", "HEARTBEAT_INTERVAL_S", "POISON_STRIKES",
           "WorkerStateGuard", "WorkerStats", "run_persistent",
           "stall_exceeded"]

"""Deterministic fault injection for the simulated stack.

A :class:`FaultPlan` is a JSON-able schedule of fault events (link
flaps, middlebox crashes, server stalls and aborts).  The
:class:`FaultInjector` arms a plan against a live topology/server: every
event becomes a simulator callback, so the same plan and seed reproduce
byte-identical traces on every run and at any worker count.

See ``docs/FAULTS.md`` for the fault model and determinism guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.scenarios import plan_for_intensity

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "plan_for_intensity",
]

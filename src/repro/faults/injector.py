"""Turns a :class:`FaultPlan` into simulator callbacks.

Every fault edge (onset and recovery) is a normal event on the
simulator's heap, so faults interleave with protocol traffic in the one
deterministic event order the seed defines -- there is no second clock
and no out-of-band thread.  The injector keeps an ``applied`` log of
``(time, action, target)`` tuples; tests and experiments assert against
it to prove the schedule fired exactly as planned.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan


class FaultInjector:
    """Arms a fault plan against a live topology/server."""

    def __init__(self, sim, topology, server=None, plan: Optional[FaultPlan] = None):
        self.sim = sim
        self.topology = topology
        self.server = server
        self.plan = plan or FaultPlan()
        #: ``(sim_time, action, target)`` in execution order.
        self.applied: List[Tuple[float, str, str]] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every event in the plan.  Call once, before run."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        self.plan.validate()
        for event in self.plan:
            self._schedule(event)

    def _schedule(self, event: FaultEvent) -> None:
        if event.kind == "link_down":
            link = self.topology.links.get(event.target)
            if link is None:
                raise ValueError(
                    f"unknown link {event.target!r}; topology has "
                    f"{sorted(self.topology.links)}")
            self.sim.schedule_at(event.at_s, self._link_down, event, link)
        elif event.kind == "middlebox_crash":
            self.sim.schedule_at(event.at_s, self._middlebox_crash, event)
        elif event.kind == "server_stall":
            self._require_server(event)
            self.sim.schedule_at(event.at_s, self._server_stall, event)
        elif event.kind == "server_abort":
            self._require_server(event)
            self.sim.schedule_at(event.at_s, self._server_abort, event)
        else:  # pragma: no cover - plan.validate() rejects these
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _require_server(self, event: FaultEvent) -> None:
        if self.server is None:
            raise ValueError(f"{event.kind} event needs a server, "
                             "but the injector was built without one")

    def _log(self, action: str, target: str = "") -> None:
        self.applied.append((self.sim.now, action, target))

    # -- event bodies -------------------------------------------------------

    def _link_down(self, event: FaultEvent, link) -> None:
        link.set_down()
        self._log("link_down", event.target)
        self.sim.schedule(event.duration_s, self._link_up, event, link)

    def _link_up(self, event: FaultEvent, link) -> None:
        link.set_up()
        self._log("link_up", event.target)

    def _middlebox_crash(self, event: FaultEvent) -> None:
        self.topology.middlebox.fail()
        self._log("middlebox_crash")
        self.sim.schedule(event.duration_s, self._middlebox_recover)

    def _middlebox_recover(self) -> None:
        self.topology.middlebox.recover()
        self._log("middlebox_recover")

    def _server_stall(self, event: FaultEvent) -> None:
        self.server.stall()
        self._log("server_stall")
        self.sim.schedule(event.duration_s, self._server_resume)

    def _server_resume(self) -> None:
        self.server.resume()
        self._log("server_resume")

    def _server_abort(self, event: FaultEvent) -> None:
        self.server.abort_connections()
        self._log("server_abort")

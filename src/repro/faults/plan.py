"""Fault plans: declarative, JSON-able schedules of fault events.

A plan is data, not behaviour: it can ride inside a
:class:`repro.experiments.runner.RunSpec`'s params (and therefore inside
the cache key), cross a process boundary as JSON, and be compared for
equality.  The :class:`repro.faults.injector.FaultInjector` turns it
into simulator callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

#: Recognised fault kinds.
#:
#: ``link_down``       -- administratively down a named link for
#:                        ``duration_s``; packets offered while down are
#:                        dropped, in-flight packets still arrive.
#: ``middlebox_crash`` -- the gateway dies for ``duration_s``: it
#:                        forwards nothing and its taps (the adversary's
#:                        monitor, the trace recorder) observe nothing.
#: ``server_stall``    -- the server's mux pump freezes for
#:                        ``duration_s``; workers keep queueing frames.
#: ``server_abort``    -- the server tears down every open connection
#:                        (best-effort GOAWAY, then an immediate close).
#:                        Instantaneous; ``duration_s`` must be 0.
FAULT_KINDS = ("link_down", "middlebox_crash", "server_stall", "server_abort")

#: Kinds that name a target (currently only links).
_TARGETED_KINDS = ("link_down",)

#: Kinds with no recovery edge.
_INSTANT_KINDS = ("server_abort",)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: str
    #: Absolute simulation time the fault begins.
    at_s: float
    #: How long the fault lasts; 0 for instantaneous kinds.
    duration_s: float = 0.0
    #: Addressed entity (a link name from ``StandardTopology.links``
    #: for ``link_down``; empty otherwise).
    target: str = ""

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.at_s < 0:
            raise ValueError(f"{self.kind}: at_s must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ValueError(f"{self.kind}: duration_s must be >= 0, "
                             f"got {self.duration_s}")
        if self.kind in _INSTANT_KINDS and self.duration_s != 0:
            raise ValueError(f"{self.kind} is instantaneous; "
                             f"duration_s must be 0, got {self.duration_s}")
        if self.kind in _TARGETED_KINDS and not self.target:
            raise ValueError(f"{self.kind} requires a target link name")
        if self.kind not in _TARGETED_KINDS and self.target:
            raise ValueError(f"{self.kind} takes no target, "
                             f"got {self.target!r}")

    def to_jsonable(self) -> dict:
        return {"kind": self.kind, "at_s": self.at_s,
                "duration_s": self.duration_s, "target": self.target}

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultEvent":
        event = cls(kind=data["kind"], at_s=float(data["at_s"]),
                    duration_s=float(data.get("duration_s", 0.0)),
                    target=str(data.get("target", "")))
        event.validate()
        return event


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def sorted(self) -> "FaultPlan":
        """Events in (time, kind, target) order -- a canonical form that
        makes two equal schedules compare (and hash in the cache) equal."""
        return FaultPlan(tuple(sorted(
            self.events, key=lambda e: (e.at_s, e.kind, e.target))))

    def to_jsonable(self) -> List[dict]:
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, data: Iterable[dict]) -> "FaultPlan":
        return cls(tuple(FaultEvent.from_jsonable(item) for item in data))

    @classmethod
    def coerce(cls, value: Any) -> Optional["FaultPlan"]:
        """Accept a plan, a JSON-able event list, or None."""
        if value is None:
            return None
        if isinstance(value, FaultPlan):
            value.validate()
            return value
        if isinstance(value, (list, tuple)):
            return cls.from_jsonable(value)
        raise TypeError(f"cannot build a FaultPlan from {type(value).__name__}")

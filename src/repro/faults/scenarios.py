"""Canonical fault scenarios, generated deterministically from a seed.

The generator uses its own string-seeded :class:`random.Random` (string
seeding hashes with SHA-512, stable across processes and interpreter
invocations -- unlike ``hash()``), so the same ``(intensity, seed)``
pair yields the identical plan in every worker of a grid sweep.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultEvent, FaultPlan

#: Links a scenario may flap (the StandardTopology registry names).
FLAPPABLE_LINKS = ("client->mbox", "mbox->client", "mbox->server",
                   "server->mbox")

#: Relative likelihood of each fault kind in generated scenarios: link
#: trouble dominates real deployments; whole-server aborts are rare.
_KIND_WEIGHTS = (
    ("link_down", 4),
    ("middlebox_crash", 2),
    ("server_stall", 2),
    ("server_abort", 1),
)

#: Events per unit of intensity.
_EVENTS_AT_FULL_INTENSITY = 6


def plan_for_intensity(intensity: float, seed: int,
                       horizon_s: float = 4.0) -> FaultPlan:
    """Build a fault plan whose disruption scales with ``intensity``.

    ``intensity`` runs from 0 (no faults) to 1 (six overlapping faults
    with second-scale outages).  The default horizon matches an
    undisturbed page load (~2 s) so onsets actually hit the session;
    onsets land in the first ~70 % of the horizon so recoveries fit
    inside it.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    if intensity == 0.0:
        return FaultPlan()

    rng = random.Random(f"faults:{seed}:{intensity!r}")
    count = max(1, int(round(intensity * _EVENTS_AT_FULL_INTENSITY)))
    kinds = [k for k, _ in _KIND_WEIGHTS]
    weights = [w for _, w in _KIND_WEIGHTS]

    events = []
    for _ in range(count):
        kind = rng.choices(kinds, weights=weights)[0]
        at_s = rng.uniform(0.2, max(0.5, horizon_s * 0.7))
        if kind == "server_abort":
            duration_s = 0.0
        else:
            duration_s = rng.uniform(0.1, 0.2 + 1.0 * intensity)
        target = (rng.choice(FLAPPABLE_LINKS)
                  if kind == "link_down" else "")
        events.append(FaultEvent(kind=kind, at_s=round(at_s, 4),
                                 duration_s=round(duration_s, 4),
                                 target=target))
    return FaultPlan(tuple(events)).sorted()

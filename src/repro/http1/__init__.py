"""HTTP/1.1 baseline substrate.

The comparison point of the paper's related work: an HTTP/1.1 server
serves requests strictly in order on each connection (no multiplexing),
so the classic size side-channel works against it without any active
interference.  The fingerprinting experiments use this stack to show the
H1 -> H2 -> H2-plus-attack progression.
"""

from repro.http1.client import Http1Client, Http1Exchange
from repro.http1.server import Http1Server, Http1ServerConfig

__all__ = ["Http1Client", "Http1Exchange", "Http1Server", "Http1ServerConfig"]

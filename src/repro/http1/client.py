"""HTTP/1.1 client with keep-alive pipelining."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.http1.server import H1BodyChunk, H1Request
from repro.tcp.connection import TcpConfig, TcpConnection, TcpStack
from repro.tls.record import TlsRecord
from repro.tls.session import TlsSession

#: Typical HTTP/1.1 request size (request line + headers, no HPACK).
REQUEST_BYTES_BASE = 310


@dataclass
class Http1Exchange:
    """One in-flight or completed request/response pair."""

    path: str
    requested_at: float
    first_byte_at: Optional[float] = None
    completed_at: Optional[float] = None
    bytes_received: int = 0
    on_complete: Optional[Callable[["Http1Exchange"], None]] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class Http1Client:
    """Issues pipelined GETs; responses arrive strictly in order."""

    def __init__(self, sim, host, server_addr: str, port: int = 443,
                 tcp_config: Optional[TcpConfig] = None):
        self.sim = sim
        self.host = host
        self.server_addr = server_addr
        self.port = port
        self.tcp = TcpStack(sim, host, tcp_config or TcpConfig())
        self.tls: Optional[TlsSession] = None
        self.exchanges: List[Http1Exchange] = []
        self._response_cursor = 0
        self._on_ready: Optional[Callable[[], None]] = None

    def connect(self, on_ready: Callable[[], None]) -> None:
        """Open TCP + TLS; ``on_ready`` fires when requests can go."""
        self._on_ready = on_ready
        self.tcp.connect(self.server_addr, self.port, self._on_tcp)

    def _on_tcp(self, conn: TcpConnection) -> None:
        self.tls = TlsSession(conn, role="client")
        self.tls.on_established = self._on_tls
        self.tls.on_application_record = self._on_record
        self.tls.start_handshake()

    def _on_tls(self, _tls: TlsSession) -> None:
        if self._on_ready is not None:
            callback, self._on_ready = self._on_ready, None
            callback()

    @property
    def connected(self) -> bool:
        return self.tls is not None and self.tls.established

    def request(self, path: str,
                on_complete: Optional[Callable[[Http1Exchange], None]] = None,
                ) -> Http1Exchange:
        """Send a GET; the response is matched by pipeline order."""
        if not self.connected:
            raise RuntimeError("request() before TLS established")
        exchange = Http1Exchange(path=path, requested_at=self.sim.now,
                                 on_complete=on_complete)
        self.exchanges.append(exchange)
        self.tls.send_application(H1Request(path=path),
                                  REQUEST_BYTES_BASE + len(path))
        return exchange

    def _current_exchange(self) -> Optional[Http1Exchange]:
        while self._response_cursor < len(self.exchanges):
            exchange = self.exchanges[self._response_cursor]
            if not exchange.complete:
                return exchange
            self._response_cursor += 1
        return None

    def _on_record(self, record: TlsRecord, dup: bool) -> None:
        if dup:
            return
        payload = record.payload
        exchange = self._current_exchange()
        if exchange is None:
            return
        if isinstance(payload, tuple) and payload and payload[0] == "h1-headers":
            exchange.first_byte_at = self.sim.now
            return
        if isinstance(payload, H1BodyChunk):
            exchange.bytes_received += payload.length
            if payload.is_last:
                exchange.completed_at = self.sim.now
                self._response_cursor += 1
                if exchange.on_complete is not None:
                    exchange.on_complete(exchange)

    def pending(self) -> List[Http1Exchange]:
        """Exchanges still awaiting their response."""
        return [e for e in self.exchanges if not e.complete]

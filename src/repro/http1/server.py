"""HTTP/1.1 server: strictly sequential responses per connection.

Requests are parsed from TLS application records; responses are written
back-to-back in request order (keep-alive with pipelining).  There is
exactly one logical "worker" per connection, so objects never
interleave -- the Head-of-Line-blocking behaviour the paper describes as
"widely exploited by adversaries for traffic analysis".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.tcp.connection import TcpConfig, TcpConnection, TcpStack
from repro.tls.record import APPLICATION_DATA, TlsRecord
from repro.tls.session import TlsSession


@dataclass
class Http1ServerConfig:
    """Server tunables."""

    port: int = 443
    #: Response body bytes per TLS record.
    max_record_payload: int = 1379
    #: Mean exponential request-handling delay.
    processing_delay_mean_s: float = 0.0008
    #: Typical response-header bytes (status line + headers).
    response_header_bytes: int = 230
    #: Accepted-connection cap: further accepts are refused (slow-DoS
    #: guard; generous enough that legitimate workloads never hit it).
    max_connections: int = 256
    #: Pipelined-request cap per connection: requests beyond it drop.
    max_pipeline_depth: int = 512


@dataclass(frozen=True)
class H1Request:
    """Parsed request marker carried in a record payload."""

    path: str


@dataclass(frozen=True)
class H1BodyChunk:
    """Response body chunk marker (ground-truth attribution included)."""

    path: str
    length: int
    is_last: bool


@dataclass(frozen=True)
class H1TxEntry:
    """Ground truth: one response record entering the TCP stream."""

    time: float
    object_path: str
    tcp_offset: int
    length: int
    is_body: bool
    is_last: bool


class _H1Connection:
    """Server side of one keep-alive connection."""

    def __init__(self, server: "Http1Server", tls: TlsSession):
        self.server = server
        self.tls = tls
        self.sim = server.sim
        self._queue: Deque[str] = deque()
        self._busy = False
        tls.on_application_record = self._on_record

    def _on_record(self, record: TlsRecord, dup: bool) -> None:
        if dup:
            return
        payload = record.payload
        if isinstance(payload, H1Request):
            if len(self._queue) >= self.server.config.max_pipeline_depth:
                return  # pipeline flooded: shed the request
            self._queue.append(payload.path)
            self._maybe_serve()

    def _maybe_serve(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        path = self._queue.popleft()
        delay = self.sim.rng("http1-server").expovariate(
            1.0 / self.server.config.processing_delay_mean_s)
        self.sim.schedule(delay, self._serve, path)

    def _serve(self, path: str) -> None:
        obj = self.server.site.lookup(path)
        config = self.server.config
        tcp = self.tls.conn

        header_len = config.response_header_bytes
        self._log(path, tcp, header_len, is_body=False, is_last=obj is None)
        self.tls.send_application(("h1-headers", path), header_len)

        if obj is not None:
            remaining = obj.size
            while remaining > 0:
                length = min(config.max_record_payload, remaining)
                remaining -= length
                chunk = H1BodyChunk(path=path, length=length,
                                    is_last=remaining == 0)
                self._log(path, tcp, length, is_body=True,
                          is_last=chunk.is_last)
                self.tls.send_application(chunk, length)

        # Sequential service: next request begins only after this
        # response has been fully handed to TCP.
        self._busy = False
        self._maybe_serve()

    def _log(self, path: str, tcp: TcpConnection, length: int,
             is_body: bool, is_last: bool) -> None:
        self.server.tx_log.append(H1TxEntry(
            time=self.sim.now, object_path=path,
            tcp_offset=tcp.send_buffer.total_written,
            length=length, is_body=is_body, is_last=is_last))


class Http1Server:
    """Accepts connections and serves a site sequentially."""

    def __init__(self, sim, host, site,
                 config: Optional[Http1ServerConfig] = None,
                 tcp_config: Optional[TcpConfig] = None):
        self.sim = sim
        self.host = host
        self.site = site
        self.config = config or Http1ServerConfig()
        self.tx_log: List[H1TxEntry] = []
        self.connections: List[_H1Connection] = []
        self.tcp = TcpStack(sim, host, tcp_config or TcpConfig(
            initial_ssthresh_bytes=48_000))
        self.tcp.listen(self.config.port, self._on_accept)

    def _on_accept(self, conn: TcpConnection) -> None:
        if len(self.connections) >= self.config.max_connections:
            return  # connection flood: refuse service, keep the rest alive
        tls = TlsSession(conn, role="server")
        self.connections.append(_H1Connection(self, tls))

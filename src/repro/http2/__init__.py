"""HTTP/2 substrate (RFC 7540 subset).

Implements the protocol machinery the paper's attack interacts with:
frames, HPACK-style header compression, stream state machines, flow
control, priorities, and -- most importantly -- the multi-worker server
whose round-robin DATA scheduling produces the multiplexing the paper
sets out to defeat, including the client's ``RST_STREAM`` behaviour the
targeted-drop phase exploits.
"""

from repro.http2.client import ClientStream, Http2Client, Http2ClientConfig
from repro.http2.connection import Http2Connection
from repro.http2.errors import ErrorCode, Http2ProtocolError, StreamError
from repro.http2.frames import (
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.http2.hpack import HpackDecoder, HpackEncoder
from repro.http2.server import Http2Server, Http2ServerConfig, TxEntry
from repro.http2.settings import Http2Settings
from repro.http2.stream import StreamState

__all__ = [
    "ClientStream",
    "DataFrame",
    "ErrorCode",
    "Frame",
    "GoAwayFrame",
    "HeadersFrame",
    "HpackDecoder",
    "HpackEncoder",
    "Http2Client",
    "Http2ClientConfig",
    "Http2Connection",
    "Http2ProtocolError",
    "Http2Server",
    "Http2ServerConfig",
    "Http2Settings",
    "PingFrame",
    "PriorityFrame",
    "PushPromiseFrame",
    "RstStreamFrame",
    "SettingsFrame",
    "StreamError",
    "StreamState",
    "TxEntry",
    "WindowUpdateFrame",
]

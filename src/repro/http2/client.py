"""HTTP/2 client endpoint.

Issues GET requests on odd stream ids, tracks per-stream progress (the
browser's stall detector reads ``last_progress``), sends ``RST_STREAM``
to abandon stalled streams, and re-requests objects on fresh streams --
the behaviours the paper's client exhibits under the adversary's drop
burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.http2 import frames as fr
from repro.http2.connection import Http2Connection
from repro.http2.errors import ErrorCode
from repro.http2.hpack import HpackEncoder
from repro.http2.settings import Http2Settings
from repro.tcp.connection import TcpConfig, TcpConnection, TcpStack
from repro.tls.session import TlsSession


@dataclass
class Http2ClientConfig:
    """Client tunables."""

    authority: str = "www.example.com"
    user_agent: str = "Mozilla/5.0 (X11; Linux x86_64; rv:74.0) Firefox/74.0"
    settings: Http2Settings = field(default_factory=Http2Settings)


@dataclass
class ClientStream:
    """Client-side view of one request/response exchange."""

    stream_id: int
    path: str
    weight: int = 16
    requested_at: float = 0.0
    first_byte_at: Optional[float] = None
    completed_at: Optional[float] = None
    last_progress: float = 0.0
    bytes_received: int = 0
    content_length: Optional[int] = None
    status: Optional[str] = None
    reset: bool = False
    #: True for server-pushed streams (even ids).
    pushed: bool = False
    on_complete: Optional[Callable[["ClientStream"], None]] = None
    on_first_byte: Optional[Callable[["ClientStream"], None]] = None
    on_progress: Optional[Callable[["ClientStream"], None]] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def pending(self) -> bool:
        return not self.complete and not self.reset


class ClientConnection(Http2Connection):
    """Client side of the HTTP/2 connection."""

    def __init__(self, client: "Http2Client", tls: TlsSession):
        super().__init__(client.sim, tls, settings=client.config.settings)
        # Propagated before the TLS handshake starts, so the preface and
        # every later frame hit the probe.
        self.probe = client.frame_probe
        self.client = client

    def handle_headers(self, frame: fr.HeadersFrame, dup: bool) -> None:
        if dup:
            return
        stream = self.client.streams.get(frame.stream_id)
        if stream is None or stream.reset:
            return
        stream.status = frame.headers.get(":status")
        length = frame.headers.get("content-length")
        if length is not None:
            stream.content_length = int(length)
        stream.last_progress = self.sim.now
        if frame.end_stream:
            self.client._complete(stream)

    def handle_data(self, frame: fr.DataFrame, dup: bool) -> None:
        if dup:
            return
        stream = self.client.streams.get(frame.stream_id)
        if stream is None or stream.reset or stream.complete:
            return
        if stream.first_byte_at is None:
            stream.first_byte_at = self.sim.now
            if stream.on_first_byte is not None:
                stream.on_first_byte(stream)
        stream.bytes_received += frame.length
        stream.last_progress = self.sim.now
        if stream.on_progress is not None:
            stream.on_progress(stream)
        if frame.end_stream and not stream.complete:
            self.client._complete(stream)

    def handle_rst_stream(self, frame: fr.RstStreamFrame) -> None:
        stream = self.client.streams.get(frame.stream_id)
        if stream is None:
            return
        stream.reset = True
        if frame.error_code == int(ErrorCode.REFUSED_STREAM):
            # The server refused the stream before doing any work
            # (concurrency cap or graceful shutdown): safe to retry.
            self.client._retry_refused(stream)
        else:
            # The server killed a stream it had started (worker crash,
            # internal error): retry on a fresh stream with capped
            # exponential backoff.
            self.client._retry_errored(stream)

    def handle_push_promise(self, frame: fr.PushPromiseFrame) -> None:
        path = frame.headers.get(":path", "")
        stream = ClientStream(stream_id=frame.promised_stream_id, path=path,
                              requested_at=self.sim.now,
                              last_progress=self.sim.now)
        stream.pushed = True
        self.client.streams[frame.promised_stream_id] = stream
        if self.client.on_push is not None:
            self.client.on_push(stream)

    def handle_goaway(self, frame: fr.GoAwayFrame) -> None:
        self.client.goaway = True


class Http2Client:
    """Browser-facing HTTP/2 client."""

    def __init__(self, sim, host, server_addr: str, port: int = 443,
                 config: Optional[Http2ClientConfig] = None,
                 tcp_config: Optional[TcpConfig] = None):
        self.sim = sim
        self.host = host
        self.server_addr = server_addr
        self.port = port
        self.config = config or Http2ClientConfig()
        self.hpack = HpackEncoder()
        #: Frame observation hook handed to every (re)dialled connection
        #: (see :attr:`repro.http2.connection.Http2Connection.probe`).
        self.frame_probe: Optional[Callable] = None
        self.streams: Dict[int, ClientStream] = {}
        self.completed: List[ClientStream] = []
        self.goaway = False
        self.refused_retries = 0
        self.stream_retries = 0
        self.reconnects = 0
        self.connection: Optional[ClientConnection] = None
        #: Callback for server-pushed streams (defense evaluations).
        self.on_push: Optional[Callable[[ClientStream], None]] = None
        self._next_stream_id = 1
        self._queued_requests: List[ClientStream] = []
        self._on_ready: Optional[Callable[[], None]] = None
        self._tcp_config = tcp_config or TcpConfig()
        self.tcp = TcpStack(sim, host, self._tcp_config)
        self._tcp_conn: Optional[TcpConnection] = None
        self._first_request_sent = False

    # -- connection lifecycle -----------------------------------------------

    def connect(self, on_ready: Callable[[], None]) -> None:
        """Open TCP + TLS + HTTP/2; ``on_ready`` fires when requests can go."""
        self._on_ready = on_ready
        self._tcp_conn = self.tcp.connect(self.server_addr, self.port,
                                          self._on_tcp_established)

    def _on_tcp_established(self, conn: TcpConnection) -> None:
        tls = TlsSession(conn, role="client")
        self.connection = ClientConnection(self, tls)
        self.connection.on_ready = self._on_h2_ready
        tls.start_handshake()

    def _on_h2_ready(self) -> None:
        # Requests that arrived while the connection was (re)dialling go
        # out first, in arrival order.
        queued, self._queued_requests = self._queued_requests, []
        for stream in queued:
            if not stream.reset:
                stream.requested_at = self.sim.now
                stream.last_progress = self.sim.now
                self._send_request(stream)
        if self._on_ready is not None:
            callback, self._on_ready = self._on_ready, None
            callback()

    @property
    def connected(self) -> bool:
        return self.connection is not None and self.connection.ready

    @property
    def broken(self) -> bool:
        """True when the transport died or the server went away."""
        if self.goaway:
            return True
        return self._tcp_conn is not None and self._tcp_conn.state == "closed"

    def reconnect(self, on_ready: Callable[[], None]) -> None:
        """Graceful degradation: abandon the dead connection and dial a
        fresh one (TCP + TLS + HTTP/2).

        Streams still pending on the old connection are marked reset so
        the browser's re-request accounting sees them as lost; stream
        ids keep counting upward across connections so every request of
        the session stays uniquely addressable (a fresh connection only
        requires ids to be odd and increasing).
        """
        self.reconnects += 1
        if self._tcp_conn is not None and self._tcp_conn.state != "closed":
            self._tcp_conn.abort()
        for stream in self.streams.values():
            if stream.pending:
                stream.reset = True
        self.goaway = False
        self.connection = None
        # A new connection renegotiates everything, including the
        # session cookie on its first request.
        self._first_request_sent = False
        self._on_ready = on_ready
        self._tcp_conn = self.tcp.connect(self.server_addr, self.port,
                                          self._on_tcp_established)

    # -- requests ----------------------------------------------------------------

    def request(self, path: str, weight: int = 16,
                on_complete: Optional[Callable[[ClientStream], None]] = None,
                on_first_byte: Optional[Callable[[ClientStream], None]] = None,
                ) -> ClientStream:
        """Send a GET for ``path`` on a fresh stream.

        While a (re)dial is in flight the request is queued and goes out
        as soon as the new connection is ready -- page-load phases keep
        firing during recovery and must not crash into a half-open
        connection.
        """
        if self.connection is None and self._tcp_conn is None:
            raise RuntimeError("request() before connect()")
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        stream = ClientStream(stream_id=stream_id, path=path, weight=weight,
                              requested_at=self.sim.now,
                              last_progress=self.sim.now,
                              on_complete=on_complete,
                              on_first_byte=on_first_byte)
        self.streams[stream_id] = stream
        if self._sendable():
            self._send_request(stream)
        else:
            self._queued_requests.append(stream)
        return stream

    def _sendable(self) -> bool:
        """Frames can go out right now: the connection finished its
        handshakes and its transport has not been torn down (the server
        may have aborted between the browser's liveness checks)."""
        return (self.connection is not None and self.connection.ready
                and self.connection.tls.conn.state != "closed")

    def _send_request(self, stream: ClientStream) -> None:
        headers = self._request_headers(stream.path)
        block = self.hpack.encode_size(headers)
        frame = fr.HeadersFrame(stream_id=stream.stream_id,
                                headers=dict(headers),
                                header_block_len=block,
                                end_stream=True,
                                priority_weight=stream.weight)
        self.connection.send_frame(frame)

    def request_batch(self, paths: List[str], weight: int = 16,
                      on_complete: Optional[Callable[[ClientStream], None]] = None,
                      ) -> List[ClientStream]:
        """Send GETs for all ``paths`` in a single TLS record.

        HTTP/2 permits many HEADERS frames per record; a batch rides one
        TCP segment, so an on-path device cannot space the requests
        apart -- the client-side countermeasure to the serialization
        attack's jitter phase.
        """
        if self.connection is None:
            raise RuntimeError("request_batch() before connect()")
        frames = []
        streams = []
        for path in paths:
            stream_id = self._next_stream_id
            self._next_stream_id += 2
            stream = ClientStream(stream_id=stream_id, path=path,
                                  weight=weight,
                                  requested_at=self.sim.now,
                                  last_progress=self.sim.now,
                                  on_complete=on_complete)
            self.streams[stream_id] = stream
            streams.append(stream)
            headers = self._request_headers(path)
            block = self.hpack.encode_size(headers)
            frames.append(fr.HeadersFrame(stream_id=stream_id,
                                          headers=dict(headers),
                                          header_block_len=block,
                                          end_stream=True,
                                          priority_weight=weight))
        self.connection._send_record(frames)
        return streams

    def _request_headers(self, path: str) -> List:
        cfg = self.config
        headers = [
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", cfg.authority),
            (":path", path),
            ("user-agent", cfg.user_agent),
            ("accept", "*/*"),
            ("accept-encoding", "gzip, deflate"),
        ]
        if not self._first_request_sent:
            self._first_request_sent = True
            headers.append(("cookie", "session=" + "x" * 48))
        return headers

    def reset_stream(self, stream: ClientStream,
                     code: ErrorCode = ErrorCode.CANCEL) -> None:
        """Abandon a stream with RST_STREAM (the Section IV-D behaviour)."""
        if stream.complete or stream.reset:
            return
        stream.reset = True
        if not self._sendable():
            # Never went out on the wire (or the wire is gone); there is
            # nothing to tell the server.
            return
        self.connection.send_frame(fr.RstStreamFrame(stream_id=stream.stream_id,
                                                     error_code=int(code)))

    def pending_streams(self) -> List[ClientStream]:
        """Streams still awaiting completion."""
        return [s for s in self.streams.values() if s.pending]

    #: Backoff before retrying a REFUSED_STREAM request.
    REFUSED_RETRY_DELAY_S = 0.05
    #: Retries allowed per refused request.
    MAX_REFUSED_RETRIES = 3
    #: First backoff before retrying a stream the server errored out.
    ERROR_RETRY_BASE_S = 0.1
    #: Exponential-backoff ceiling for errored-stream retries.
    ERROR_RETRY_CAP_S = 2.0
    #: Retries allowed per errored stream.
    MAX_ERROR_RETRIES = 3

    def _retry_refused(self, stream: ClientStream) -> None:
        retries = getattr(stream, "_refused_retries", 0)
        if retries >= self.MAX_REFUSED_RETRIES or self.goaway:
            return
        self.refused_retries += 1

        def retry() -> None:
            if self.goaway:
                return
            replacement = self.request(stream.path, weight=stream.weight,
                                       on_complete=stream.on_complete,
                                       on_first_byte=stream.on_first_byte)
            replacement.on_progress = stream.on_progress
            replacement._refused_retries = retries + 1

        self.sim.schedule(self.REFUSED_RETRY_DELAY_S, retry)

    def _retry_errored(self, stream: ClientStream) -> None:
        """Re-request after a server-side stream error, with capped
        exponential backoff (base * 2^n, clamped)."""
        retries = getattr(stream, "_error_retries", 0)
        if retries >= self.MAX_ERROR_RETRIES or self.broken:
            return
        self.stream_retries += 1
        delay = min(self.ERROR_RETRY_CAP_S,
                    self.ERROR_RETRY_BASE_S * (2 ** retries))

        def retry() -> None:
            if self.broken or self.connection is None:
                return
            replacement = self.request(stream.path, weight=stream.weight,
                                       on_complete=stream.on_complete,
                                       on_first_byte=stream.on_first_byte)
            replacement.on_progress = stream.on_progress
            replacement._error_retries = retries + 1

        self.sim.schedule(delay, retry)

    def _complete(self, stream: ClientStream) -> None:
        stream.completed_at = self.sim.now
        self.completed.append(stream)
        if stream.on_complete is not None:
            stream.on_complete(stream)

"""Shared HTTP/2 connection machinery over a TLS session.

Handles the connection preface, SETTINGS exchange, frame-to-record
packing, send-side flow-control windows and receive-side auto
WINDOW_UPDATE, PING echo and GOAWAY.  :class:`repro.http2.server` and
:class:`repro.http2.client` subclass this with endpoint behaviour.

Framing choice: every frame rides in its own TLS record.  DATA frames
are chunked by the sender to ``max_frame_payload`` (default 1370 bytes),
which makes one DATA frame == one record == one MSS-sized packet -- the
"segment" granularity of the paper's Figures 1 and 3.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.http2 import frames as fr
from repro.http2.errors import ErrorCode, Http2ProtocolError
from repro.http2.flow_control import FlowControlWindow, ReceiveWindowManager
from repro.http2.settings import Http2Settings
from repro.tls.session import TlsSession

#: "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"
CLIENT_PREFACE_LEN = 24
#: RFC 7540: both flow-control windows start at 65535 until updated.
DEFAULT_WINDOW = 65_535


class Http2Connection:
    """One endpoint of an HTTP/2 connection."""

    def __init__(self, sim, tls: TlsSession, settings: Optional[Http2Settings] = None,
                 connection_window: int = 12 << 20):
        self.sim = sim
        self.tls = tls
        self.settings = settings or Http2Settings()
        self.peer_settings = Http2Settings()
        self.role = tls.role
        self.ready = False
        self.goaway_received = False
        self.on_ready: Optional[Callable[[], None]] = None

        self._preface_sent = False
        self._settings_received = False
        self._connection_window_target = connection_window
        #: Observation hook: ``probe(conn, direction, frame, dup)`` fires
        #: per frame sent ("send", dup False) or dispatched ("recv").
        #: None (the default) costs one test per frame.  Endpoint owners
        #: (Http2Server / Http2Client) propagate their ``frame_probe``
        #: here when a connection is created.
        self.probe: Optional[Callable] = None

        # Send-side flow control (credit granted by the peer).
        self.send_window_connection = FlowControlWindow(DEFAULT_WINDOW, "conn-send")
        self.send_window_streams: Dict[int, FlowControlWindow] = {}

        # Receive-side accounting (credit we grant the peer).
        self._recv_conn = ReceiveWindowManager(connection_window)
        self._recv_streams: Dict[int, ReceiveWindowManager] = {}

        self.frames_sent = 0
        self.frames_received = 0
        self.duplicate_headers_received = 0

        tls.on_established = self._on_tls_established
        tls.on_application_record = self._on_record
        if tls.established:
            self._on_tls_established(tls)

    # -- startup -------------------------------------------------------------

    def _on_tls_established(self, _tls: TlsSession) -> None:
        self._send_preface()

    def _send_preface(self) -> None:
        if self._preface_sent:
            return
        self._preface_sent = True
        settings_frame = fr.SettingsFrame(settings=self.settings.to_wire())
        extra = CLIENT_PREFACE_LEN if self.role == "client" else 0
        self._send_record([settings_frame], extra_bytes=extra)
        if self._connection_window_target > DEFAULT_WINDOW:
            self.send_frame(fr.WindowUpdateFrame(
                stream_id=0,
                increment=self._connection_window_target - DEFAULT_WINDOW))

    # -- frame egress -----------------------------------------------------------

    def send_frame(self, frame: fr.Frame) -> None:
        """Send one frame in its own TLS record."""
        self._send_record([frame])

    def _send_record(self, frame_list, extra_bytes: int = 0) -> None:
        if self.probe is not None:
            for frame in frame_list:
                self.probe(self, "send", frame, False)
        payload_len = sum(f.wire_size for f in frame_list) + extra_bytes
        self.tls.send_application(tuple(frame_list), payload_len)
        self.frames_sent += len(frame_list)

    def send_data_frame(self, frame: fr.DataFrame) -> None:
        """Send DATA, spending flow-control credit."""
        window = self._stream_send_window(frame.stream_id)
        self.send_window_connection.consume(frame.length)
        window.consume(frame.length)
        self.send_frame(frame)

    def can_send_data(self, stream_id: int, nbytes: int) -> bool:
        """True when both windows cover ``nbytes``."""
        return (self.send_window_connection.can_send(nbytes)
                and self._stream_send_window(stream_id).can_send(nbytes))

    def _stream_send_window(self, stream_id: int) -> FlowControlWindow:
        window = self.send_window_streams.get(stream_id)
        if window is None:
            window = FlowControlWindow(self.peer_settings.initial_window_size,
                                       f"stream-{stream_id}-send")
            self.send_window_streams[stream_id] = window
        return window

    # -- frame ingress ------------------------------------------------------------

    def _on_record(self, record, dup: bool) -> None:
        payload = record.payload
        if not isinstance(payload, tuple):
            return
        for frame in payload:
            self.frames_received += 1
            self._dispatch(frame, dup)

    def _dispatch(self, frame: fr.Frame, dup: bool) -> None:
        if isinstance(frame, fr.SettingsFrame):
            if not dup:
                self._on_settings(frame)
        elif isinstance(frame, fr.WindowUpdateFrame):
            if not dup:
                self._on_window_update(frame)
        elif isinstance(frame, fr.PingFrame):
            if not frame.ack and not dup:
                self.send_frame(fr.PingFrame(ack=True))
        elif isinstance(frame, fr.GoAwayFrame):
            self.goaway_received = True
            self.handle_goaway(frame)
        elif isinstance(frame, fr.HeadersFrame):
            if dup:
                self.duplicate_headers_received += 1
            self.handle_headers(frame, dup)
        elif isinstance(frame, fr.DataFrame):
            if not dup:
                self._account_received_data(frame)
            self.handle_data(frame, dup)
        elif isinstance(frame, fr.RstStreamFrame):
            if not dup:
                self.handle_rst_stream(frame)
        elif isinstance(frame, fr.PriorityFrame):
            if not dup:
                self.handle_priority(frame)
        elif isinstance(frame, fr.PushPromiseFrame):
            if not dup:
                self.handle_push_promise(frame)
        # After the handlers, so monitors observe post-update window and
        # stream state (e.g. a WINDOW_UPDATE has already replenished).
        if self.probe is not None:
            self.probe(self, "recv", frame, dup)

    def _on_settings(self, frame: fr.SettingsFrame) -> None:
        if frame.ack:
            return
        self.peer_settings = Http2Settings.from_wire(frame.settings)
        self.send_frame(fr.SettingsFrame(ack=True))
        if not self.ready:
            self.ready = True
            if self.on_ready is not None:
                self.on_ready()

    def _on_window_update(self, frame: fr.WindowUpdateFrame) -> None:
        if frame.stream_id == 0:
            self.send_window_connection.replenish(frame.increment)
        else:
            self._stream_send_window(frame.stream_id).replenish(frame.increment)
        self.handle_window_opened()

    def _account_received_data(self, frame: fr.DataFrame) -> None:
        conn_update = self._recv_conn.on_data(frame.length)
        if conn_update:
            self.send_frame(fr.WindowUpdateFrame(stream_id=0,
                                                 increment=conn_update))
        manager = self._recv_streams.get(frame.stream_id)
        if manager is None:
            manager = ReceiveWindowManager(self.settings.initial_window_size)
            self._recv_streams[frame.stream_id] = manager
        stream_update = manager.on_data(frame.length)
        if stream_update:
            self.send_frame(fr.WindowUpdateFrame(stream_id=frame.stream_id,
                                                 increment=stream_update))

    # -- endpoint hooks (overridden by server/client) --------------------------

    def handle_headers(self, frame: fr.HeadersFrame, dup: bool) -> None:
        raise NotImplementedError

    def handle_data(self, frame: fr.DataFrame, dup: bool) -> None:
        raise NotImplementedError

    def handle_rst_stream(self, frame: fr.RstStreamFrame) -> None:
        raise NotImplementedError

    def handle_goaway(self, frame: fr.GoAwayFrame) -> None:
        return None

    def handle_priority(self, frame: fr.PriorityFrame) -> None:
        return None

    def handle_push_promise(self, frame: fr.PushPromiseFrame) -> None:
        return None

    def handle_window_opened(self) -> None:
        return None

"""HTTP/2 error codes and protocol exceptions (RFC 7540 section 7)."""

from __future__ import annotations

from enum import IntEnum


class ErrorCode(IntEnum):
    """Wire error codes."""

    NO_ERROR = 0x0
    PROTOCOL_ERROR = 0x1
    INTERNAL_ERROR = 0x2
    FLOW_CONTROL_ERROR = 0x3
    SETTINGS_TIMEOUT = 0x4
    STREAM_CLOSED = 0x5
    FRAME_SIZE_ERROR = 0x6
    REFUSED_STREAM = 0x7
    CANCEL = 0x8
    COMPRESSION_ERROR = 0x9
    CONNECT_ERROR = 0xA
    ENHANCE_YOUR_CALM = 0xB
    INADEQUATE_SECURITY = 0xC
    HTTP_1_1_REQUIRED = 0xD


class Http2ProtocolError(Exception):
    """Connection-level protocol violation."""

    def __init__(self, message: str, code: ErrorCode = ErrorCode.PROTOCOL_ERROR):
        super().__init__(message)
        self.code = code


class StreamError(Exception):
    """Stream-level violation (peer answers with RST_STREAM)."""

    def __init__(self, stream_id: int, message: str,
                 code: ErrorCode = ErrorCode.PROTOCOL_ERROR):
        super().__init__(f"stream {stream_id}: {message}")
        self.stream_id = stream_id
        self.code = code

"""Connection- and stream-level flow control (RFC 7540 section 5.2)."""

from __future__ import annotations

from repro.http2.errors import ErrorCode, Http2ProtocolError

#: Flow-control windows may never exceed 2^31 - 1.
MAX_WINDOW = (1 << 31) - 1


class FlowControlWindow:
    """A send-side credit counter."""

    def __init__(self, initial: int, label: str = "window"):
        if not 0 <= initial <= MAX_WINDOW:
            raise ValueError(f"initial window {initial} out of range")
        self._available = initial
        self.label = label

    @property
    def available(self) -> int:
        return self._available

    def can_send(self, nbytes: int) -> bool:
        return nbytes <= self._available

    def consume(self, nbytes: int) -> None:
        """Spend credit; raises on overdraft (a protocol bug)."""
        if nbytes > self._available:
            raise Http2ProtocolError(
                f"{self.label}: consume {nbytes} > available {self._available}",
                ErrorCode.FLOW_CONTROL_ERROR)
        self._available -= nbytes

    def replenish(self, nbytes: int) -> None:
        """Add credit from a WINDOW_UPDATE."""
        if nbytes <= 0:
            raise Http2ProtocolError("WINDOW_UPDATE increment must be positive",
                                     ErrorCode.PROTOCOL_ERROR)
        if self._available + nbytes > MAX_WINDOW:
            raise Http2ProtocolError(f"{self.label}: window overflow",
                                     ErrorCode.FLOW_CONTROL_ERROR)
        self._available += nbytes


class ReceiveWindowManager:
    """Receive-side accounting that auto-issues WINDOW_UPDATE credit.

    Mirrors the browser behaviour: once more than half of the window has
    been consumed, send a WINDOW_UPDATE restoring it.
    """

    def __init__(self, initial: int, update_divisor: int = 4):
        self.initial = initial
        self.update_divisor = update_divisor
        self.consumed = 0

    def on_data(self, nbytes: int) -> int:
        """Account received bytes; returns the update increment to send
        (0 when no update is due)."""
        self.consumed += nbytes
        if self.consumed > self.initial // self.update_divisor:
            increment, self.consumed = self.consumed, 0
            return increment
        return 0

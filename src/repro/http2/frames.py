"""HTTP/2 frames (RFC 7540 section 6).

Frames carry their *wire sizes* (9-byte header plus payload) so the TLS
and TCP layers below see exactly the byte counts a real stack would put
on the wire.  DATA frames additionally carry ground-truth attribution
(which web object, which serve instance) used only by metrics and tests,
never by the adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Every frame starts with a 9-byte header.
FRAME_HEADER_LEN = 9


@dataclass(slots=True)
class Frame:
    """Base frame: subclasses define their payload length."""

    stream_id: int = 0

    @property
    def payload_len(self) -> int:
        raise NotImplementedError

    @property
    def wire_size(self) -> int:
        return FRAME_HEADER_LEN + self.payload_len

    @property
    def type_name(self) -> str:
        return type(self).__name__.replace("Frame", "").upper()


@dataclass(slots=True)
class DataFrame(Frame):
    """A chunk of response body.

    ``object_ref``/``serve_id``/``object_offset`` are simulation ground
    truth: which web object these bytes belong to, which serve instance
    produced them (duplicates from retransmitted GETs get fresh serve
    ids), and the offset within the object.
    """

    length: int = 0
    end_stream: bool = False
    object_ref: Any = None
    serve_id: int = 0
    object_offset: int = 0

    @property
    def payload_len(self) -> int:
        return self.length


@dataclass(slots=True)
class HeadersFrame(Frame):
    """Request or response headers (one HPACK-encoded block)."""

    headers: Dict[str, str] = field(default_factory=dict)
    header_block_len: int = 0
    end_stream: bool = False
    end_headers: bool = True
    priority_weight: Optional[int] = None

    @property
    def payload_len(self) -> int:
        extra = 5 if self.priority_weight is not None else 0
        return self.header_block_len + extra


@dataclass(slots=True)
class PushPromiseFrame(Frame):
    """Server push announcement (RFC 7540 section 6.6)."""

    promised_stream_id: int = 0
    headers: Dict[str, str] = field(default_factory=dict)
    header_block_len: int = 0

    @property
    def payload_len(self) -> int:
        return 4 + self.header_block_len


@dataclass(slots=True)
class SettingsFrame(Frame):
    """Connection settings exchange."""

    settings: Dict[int, int] = field(default_factory=dict)
    ack: bool = False

    @property
    def payload_len(self) -> int:
        return 0 if self.ack else 6 * len(self.settings)


@dataclass(slots=True)
class RstStreamFrame(Frame):
    """Abort one stream -- the frame the targeted-drop phase provokes."""

    error_code: int = 0x8  # CANCEL

    @property
    def payload_len(self) -> int:
        return 4


@dataclass(slots=True)
class GoAwayFrame(Frame):
    """Connection shutdown notice."""

    last_stream_id: int = 0
    error_code: int = 0

    @property
    def payload_len(self) -> int:
        return 8


@dataclass(slots=True)
class WindowUpdateFrame(Frame):
    """Flow-control credit."""

    increment: int = 0

    @property
    def payload_len(self) -> int:
        return 4


@dataclass(slots=True)
class PingFrame(Frame):
    """Liveness probe."""

    ack: bool = False

    @property
    def payload_len(self) -> int:
        return 8


@dataclass(slots=True)
class PriorityFrame(Frame):
    """Stream reprioritization."""

    depends_on: int = 0
    weight: int = 16
    exclusive: bool = False

    @property
    def payload_len(self) -> int:
        return 5

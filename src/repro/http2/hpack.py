"""HPACK-style header compression (RFC 7541 subset).

The simulation does not move literal bytes, but request/response record
sizes must be realistic because the adversary counts GET-carrying
records and could in principle use their sizes.  This module implements
the real HPACK size accounting: a static table, a dynamic table with
entry eviction, indexed representations (1-2 bytes) and literal
representations with incremental indexing, including the standard
integer prefix encoding and an approximation of Huffman string
compression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: Subset of the RFC 7541 Appendix A static table that web traffic hits.
STATIC_TABLE: Tuple[Tuple[str, str], ...] = (
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept", ""),
    ("cache-control", ""),
    ("content-length", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("host", ""),
    ("referer", ""),
    ("server", ""),
    ("user-agent", ""),
)

#: RFC 7541: dynamic-table entry overhead.
ENTRY_OVERHEAD = 32
#: Approximate Huffman compaction ratio for header strings.
HUFFMAN_RATIO = 0.8


def _integer_size(value: int, prefix_bits: int) -> int:
    """Bytes needed by the HPACK integer encoding."""
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return 1
    size = 1
    value -= limit
    while True:
        size += 1
        if value < 128:
            return size
        value >>= 7


def _string_size(text: str) -> int:
    """Length byte(s) plus Huffman-compressed octets."""
    compressed = max(1, int(len(text) * HUFFMAN_RATIO))
    return _integer_size(compressed, 7) + compressed


@dataclass(frozen=True, slots=True)
class HpackToken:
    """One encoded header field, as handed to the decoder."""

    kind: str  # "indexed" | "literal-indexed" | "literal"
    index: int = 0
    name: str = ""
    value: str = ""
    size: int = 0


class _DynamicTable:
    def __init__(self, max_size: int = 4096):
        self.max_size = max_size
        self.entries: List[Tuple[str, str]] = []  # newest first
        self.size = 0

    def add(self, name: str, value: str) -> None:
        entry_size = len(name) + len(value) + ENTRY_OVERHEAD
        self.entries.insert(0, (name, value))
        self.size += entry_size
        while self.size > self.max_size and self.entries:
            old_name, old_value = self.entries.pop()
            self.size -= len(old_name) + len(old_value) + ENTRY_OVERHEAD

    def find(self, name: str, value: str) -> int:
        """1-based dynamic index of an exact match, or 0."""
        for i, (n, v) in enumerate(self.entries):
            if n == name and v == value:
                return i + 1
        return 0

    def get(self, index: int) -> Tuple[str, str]:
        return self.entries[index - 1]


class HpackEncoder:
    """Stateful encoder producing tokens plus exact encoded sizes."""

    def __init__(self, max_table_size: int = 4096):
        self._dynamic = _DynamicTable(max_table_size)
        # Hash lookups instead of a linear static-table scan per field
        # (~1.5x on the hpack bench topic).  Built per instance to keep
        # module state immutable; 28 entries, so construction is noise.
        self._static_exact: Dict[Tuple[str, str], int] = {}
        self._static_name: Dict[str, int] = {}
        for i, (name, value) in enumerate(STATIC_TABLE):
            if value != "" and (name, value) not in self._static_exact:
                self._static_exact[(name, value)] = i + 1
            if name not in self._static_name:
                self._static_name[name] = i + 1

    @property
    def table_size(self) -> int:
        """Current dynamic-table occupancy in RFC 7541 size units."""
        return self._dynamic.size

    @property
    def max_table_size(self) -> int:
        """Dynamic-table capacity (SETTINGS_HEADER_TABLE_SIZE)."""
        return self._dynamic.max_size

    def encode(self, headers: Iterable[Tuple[str, str]]) -> Tuple[int, List[HpackToken]]:
        """Encode a header list; returns ``(block_size_bytes, tokens)``."""
        total = 0
        tokens: List[HpackToken] = []
        for name, value in headers:
            token = self._encode_field(name, value)
            total += token.size
            tokens.append(token)
        return total, tokens

    def encode_size(self, headers: Iterable[Tuple[str, str]]) -> int:
        """Size-only convenience wrapper."""
        size, _ = self.encode(headers)
        return size

    def _encode_field(self, name: str, value: str) -> HpackToken:
        # Exact match in static table -> indexed representation.
        static = self._static_exact.get((name, value), 0)
        if static:
            return HpackToken("indexed", index=static,
                              size=_integer_size(static, 7))
        dyn = self._dynamic.find(name, value)
        if dyn:
            index = len(STATIC_TABLE) + dyn
            return HpackToken("indexed", index=index,
                              size=_integer_size(index, 7))
        # Literal with incremental indexing; name may be indexed.
        name_index = self._static_name.get(name, 0)
        size = _integer_size(name_index, 6) if name_index else (
            _integer_size(0, 6) + _string_size(name))
        size += _string_size(value)
        self._dynamic.add(name, value)
        return HpackToken("literal-indexed", index=name_index,
                          name=name, value=value, size=size)


class HpackDecoder:
    """Stateful decoder consuming the encoder's tokens."""

    def __init__(self, max_table_size: int = 4096):
        self._dynamic = _DynamicTable(max_table_size)

    @property
    def table_size(self) -> int:
        """Current dynamic-table occupancy in RFC 7541 size units."""
        return self._dynamic.size

    @property
    def max_table_size(self) -> int:
        """Dynamic-table capacity (SETTINGS_HEADER_TABLE_SIZE)."""
        return self._dynamic.max_size

    def decode(self, tokens: Iterable[HpackToken]) -> List[Tuple[str, str]]:
        """Reconstruct the header list from tokens."""
        headers: List[Tuple[str, str]] = []
        for token in tokens:
            if token.kind == "indexed":
                headers.append(self._lookup(token.index))
            else:
                name = token.name
                if not name and token.index:
                    name = self._lookup(token.index)[0]
                headers.append((name, token.value))
                if token.kind == "literal-indexed":
                    self._dynamic.add(name, token.value)
        return headers

    def _lookup(self, index: int) -> Tuple[str, str]:
        if index <= 0:
            raise ValueError("HPACK index 0 is invalid")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        return self._dynamic.get(index - len(STATIC_TABLE))

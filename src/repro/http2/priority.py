"""Stream priority tree (RFC 7540 section 5.3).

The paper's future-work defense shuffles priorities/order per load, so
the tree is a first-class object here.  Scheduling uses the weights of
streams that are ready to send; dependencies collapse into weight
shares of the parent's allocation, as real servers approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class _Node:
    stream_id: int
    parent: int = 0
    weight: int = 16
    children: List[int] = field(default_factory=list)


class PriorityTree:
    """Dependency tree rooted at stream 0."""

    def __init__(self):
        self._nodes: Dict[int, _Node] = {0: _Node(stream_id=0, weight=0)}

    def add_stream(self, stream_id: int, depends_on: int = 0,
                   weight: int = 16, exclusive: bool = False) -> None:
        """Insert a stream (idempotent for re-prioritisation)."""
        if not 1 <= weight <= 256:
            raise ValueError(f"weight {weight} out of [1, 256]")
        if depends_on == stream_id:
            raise ValueError("stream cannot depend on itself")
        if depends_on not in self._nodes:
            # Unknown parent: RFC says treat as depending on the root.
            depends_on = 0
        if stream_id in self._nodes:
            self._detach(stream_id)
            node = self._nodes[stream_id]
            node.parent = depends_on
            node.weight = weight
        else:
            node = _Node(stream_id=stream_id, parent=depends_on, weight=weight)
            self._nodes[stream_id] = node
        parent = self._nodes[depends_on]
        if exclusive:
            for child_id in parent.children:
                self._nodes[child_id].parent = stream_id
                node.children.append(child_id)
            parent.children.clear()
        parent.children.append(stream_id)

    def remove_stream(self, stream_id: int) -> None:
        """Drop a closed stream; its children move to its parent."""
        node = self._nodes.get(stream_id)
        if node is None or stream_id == 0:
            return
        self._detach(stream_id)
        parent = self._nodes[node.parent]
        for child_id in node.children:
            self._nodes[child_id].parent = node.parent
            parent.children.append(child_id)
        del self._nodes[stream_id]

    def effective_weight(self, stream_id: int) -> float:
        """Share of bandwidth the stream gets among all known streams.

        The share of a node is its weight divided by the sibling weight
        sum, multiplied by its parent's share.
        """
        node = self._nodes.get(stream_id)
        if node is None:
            return 1.0
        share = 1.0
        while node.stream_id != 0:
            parent = self._nodes[node.parent]
            sibling_total = sum(self._nodes[c].weight for c in parent.children)
            share *= node.weight / sibling_total if sibling_total else 1.0
            node = parent
        return share

    def scheduling_weights(self, ready: Iterable[int]) -> Dict[int, float]:
        """Normalized weights for the ready streams."""
        ready = list(ready)
        weights = {sid: self.effective_weight(sid) for sid in ready}
        total = sum(weights.values())
        if total <= 0:
            return {sid: 1.0 / len(ready) for sid in ready} if ready else {}
        return {sid: w / total for sid, w in weights.items()}

    def contains(self, stream_id: int) -> bool:
        return stream_id in self._nodes

    def _detach(self, stream_id: int) -> None:
        node = self._nodes[stream_id]
        parent = self._nodes.get(node.parent)
        if parent is not None and stream_id in parent.children:
            parent.children.remove(stream_id)

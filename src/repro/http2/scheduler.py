"""Multiplexing schedulers for the server's shared TCP stream.

The scheduler decides, whenever the TCP connection has room, which
stream's next frame to enqueue.  The paper's multiplexing (Fig. 3) is
the round-robin policy; FIFO (finish one object before starting the
next) is the HTTP/1.1-like ablation; the weighted policy honours the
client's priority tree and backs the paper's future-work defense of
per-load priority shuffling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.http2.priority import PriorityTree


class MuxScheduler:
    """Interface: pick the next stream to service."""

    name = "base"

    def pick(self, eligible: List[int]) -> int:
        """Choose one of ``eligible`` (non-empty, ascending stream ids)."""
        raise NotImplementedError

    def on_stream_done(self, stream_id: int) -> None:
        """Notification that a stream has no more queued frames."""
        return None


class RoundRobinScheduler(MuxScheduler):
    """Rotate across active streams -- the paper's multiplexing server."""

    name = "round-robin"

    def __init__(self):
        self._last: Optional[int] = None

    def pick(self, eligible: List[int]) -> int:
        if self._last is None:
            choice = eligible[0]
        else:
            later = [sid for sid in eligible if sid > self._last]
            choice = later[0] if later else eligible[0]
        self._last = choice
        return choice


class FifoScheduler(MuxScheduler):
    """Serve the oldest stream to completion before starting the next.

    This is the serialization the adversary wants to force; as a server
    policy it is also the "multiplexing disabled" configuration the
    paper notes most 2020 HTTP/2 deployments ran with.
    """

    name = "fifo"

    def __init__(self):
        # Insertion-ordered dict as an ordered set: arrival order is the
        # service order, and pick() runs once per transmitted frame.
        self._order: Dict[int, None] = {}

    def pick(self, eligible: List[int]) -> int:
        eligible_set = frozenset(eligible)
        for sid in eligible:
            if sid not in self._order:
                self._order[sid] = None
        for sid in self._order:
            if sid in eligible_set:
                return sid
        return eligible[0]

    def on_stream_done(self, stream_id: int) -> None:
        self._order.pop(stream_id, None)


class WeightedScheduler(MuxScheduler):
    """Smooth weighted round-robin driven by the priority tree.

    Deterministic (no randomness): each pick adds every eligible
    stream's weight to its running credit, picks the highest credit, and
    subtracts the credit total from the winner.
    """

    name = "weighted"

    def __init__(self, tree: Optional[PriorityTree] = None):
        self.tree = tree or PriorityTree()
        self._credit: Dict[int, float] = {}

    def pick(self, eligible: List[int]) -> int:
        weights = self.tree.scheduling_weights(eligible)
        total = 0.0
        best, best_credit = eligible[0], float("-inf")
        for sid in eligible:
            weight = weights.get(sid, 1.0 / len(eligible))
            credit = self._credit.get(sid, 0.0) + weight
            self._credit[sid] = credit
            total += weight
            if credit > best_credit:
                best, best_credit = sid, credit
        self._credit[best] -= total
        return best

    def on_stream_done(self, stream_id: int) -> None:
        self._credit.pop(stream_id, None)


def make_scheduler(kind: str, tree: Optional[PriorityTree] = None) -> MuxScheduler:
    """Factory for the named scheduler."""
    if kind == "round-robin":
        return RoundRobinScheduler()
    if kind == "fifo":
        return FifoScheduler()
    if kind == "weighted":
        return WeightedScheduler(tree)
    raise ValueError(f"unknown scheduler {kind!r}")

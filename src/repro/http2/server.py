"""Multi-worker HTTP/2 server.

Models the server of the paper's Figure 3: every GET spawns a worker
("thread") after a small processing delay; workers enqueue response
frames on per-stream queues; a :class:`~repro.http2.scheduler.MuxScheduler`
drains those queues round-robin into the shared TCP stream, interleaving
the objects.  Three behaviours matter to the attack and are modelled
faithfully:

* **Duplicate GET service** (Fig. 4): when the TCP layer re-delivers a
  retransmitted GET (duplicate-delivery mode) the server spawns another
  worker and serves another copy of the object, intensifying
  multiplexing.  Disable with ``serve_duplicate_requests=False``.
* **RST_STREAM flush** (Section IV-D): a reset closes the stream and
  flushes its queued frames immediately.
* **Dynamic objects**: the survey result HTML is generated in chunks
  over time; once generated, the result is cached so a re-request (after
  the adversary forces a reset) is served fast and alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.http2 import frames as fr
from repro.http2.connection import Http2Connection
from repro.http2.errors import ErrorCode
from repro.http2.hpack import HpackEncoder
from repro.http2.priority import PriorityTree
from repro.http2.scheduler import MuxScheduler, make_scheduler
from repro.http2.settings import Http2Settings
from repro.http2.stream import StreamState
from repro.simnet.timers import TimerWheel
from repro.tcp.connection import TcpConfig, TcpConnection, TcpStack
from repro.tls.session import TlsSession


@dataclass
class Http2ServerConfig:
    """Server tunables."""

    port: int = 443
    #: DATA payload bytes per frame; one frame rides one TLS record and
    #: (with the default MSS) one packet -- the interleave granularity.
    max_frame_payload: int = 1370
    #: Mean of the exponential per-request worker spawn delay (seconds).
    processing_delay_mean_s: float = 0.0008
    scheduler: str = "round-robin"
    #: Reproduce the paper's observed re-serving of retransmitted GETs.
    serve_duplicate_requests: bool = True
    #: Keep the TCP unsent backlog at most this many bytes ahead of the
    #: scheduler, so interleaving decisions happen at wire pace.
    backlog_watermark_bytes: int = 4 * 1400
    settings: Http2Settings = field(default_factory=Http2Settings)
    #: Optional defense hook: ``pad_object(size, rng) -> padded_size``
    #: applied to every response body (padding / morphing defenses).
    pad_object: Optional[Callable] = None
    #: Optional defense hook: path -> list of paths to server-push when
    #: that path is served (requires the client to enable push).
    push_map: Optional[Dict[str, List[str]]] = None
    #: Accepted-connection cap: further accepts are refused (slow-DoS
    #: guard; generous enough that legitimate workloads never hit it).
    max_connections: int = 256

    # -- resource-robustness layer (docs/DOS.md) -------------------------
    #
    # Every knob defaults to *off* (None / False): an unhardened server
    # schedules no deadline events and is byte-identical to the
    # pre-hardening model.  Deadlines ride a
    # :class:`repro.simnet.timers.TimerWheel` on the simulator clock.

    #: Accept-to-TLS-established deadline (kills silent TCP dialers).
    handshake_timeout_s: Optional[float] = None
    #: TLS-established-to-client-SETTINGS deadline.
    preamble_timeout_s: Optional[float] = None
    #: HEADERS(END_STREAM=0)-to-first-body-byte deadline per stream.
    header_timeout_s: Optional[float] = None
    #: Maximum gap between request-body DATA frames per stream.
    body_progress_timeout_s: Optional[float] = None
    #: Per-connection PING budget per second of simulated time.
    max_pings_per_s: Optional[float] = None
    #: Per-connection non-ack SETTINGS budget per second.
    max_settings_per_s: Optional[float] = None
    #: Per-connection RST_STREAM budget per second (rapid-reset guard).
    max_resets_per_s: Optional[float] = None
    #: Per-connection open-stream cap below ``max_concurrent_streams``.
    max_open_streams: Optional[int] = None
    #: Per-connection cap on response frames queued for the mux (the
    #: memory proxy); exceeding it sheds the connection.
    max_queued_frames: Optional[int] = None
    #: At the ``max_connections`` accept cap, abort the connection with
    #: the oldest activity instead of refusing the newcomer.
    reap_slowest_at_capacity: bool = False

    #: (name, must-be-positive-float) knobs validated in __post_init__.
    _TIMEOUT_KNOBS = ("handshake_timeout_s", "preamble_timeout_s",
                      "header_timeout_s", "body_progress_timeout_s",
                      "max_pings_per_s", "max_settings_per_s",
                      "max_resets_per_s")
    _CAP_KNOBS = ("max_open_streams", "max_queued_frames")

    def __post_init__(self) -> None:
        for name in ("port", "max_frame_payload", "backlog_watermark_bytes",
                     "max_connections"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"Http2ServerConfig.{name} must be > 0, "
                                 f"got {value}")
        if self.processing_delay_mean_s <= 0:
            raise ValueError("Http2ServerConfig.processing_delay_mean_s "
                             f"must be > 0, got {self.processing_delay_mean_s}")
        for name in self._TIMEOUT_KNOBS + self._CAP_KNOBS:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"Http2ServerConfig.{name} must be > 0 "
                                 f"when set, got {value}")

    def hardening_active(self) -> bool:
        """True when any per-connection hardening knob is set."""
        return any(getattr(self, name) is not None
                   for name in self._TIMEOUT_KNOBS + self._CAP_KNOBS)


class _ConnectionHardening:
    """Per-connection resource-robustness state (docs/DOS.md).

    Created only when :meth:`Http2ServerConfig.hardening_active` -- an
    unhardened connection carries ``None`` and pays one ``is not None``
    test per frame.  Deadlines live on a
    :class:`~repro.simnet.timers.TimerWheel`; rate budgets are plain
    per-second windows on the simulator clock, so nothing here
    schedules an event unless a deadline knob is set.
    """

    def __init__(self, conn: "ServerConnection"):
        self.conn = conn
        self.config = conn.config
        self.timers = TimerWheel(conn.sim)
        #: ``key -> [window_start_s, count]`` rate-budget windows.
        self._windows: Dict[str, List] = {}
        #: Streams whose request body is still expected (END_STREAM unseen).
        self._pending_bodies: set = set()
        #: Streams refused by the per-connection ``max_open_streams`` cap.
        self.capped_streams = 0
        #: Streams reset by a header/body-progress deadline.
        self.timed_out_streams = 0
        if self.config.handshake_timeout_s is not None:
            self.timers.arm("handshake", self.config.handshake_timeout_s,
                            self._connection_deadline, "handshake")

    # -- connection lifecycle ------------------------------------------------

    def on_tls_established(self) -> None:
        self.timers.cancel("handshake")
        if self.config.preamble_timeout_s is not None:
            self.timers.arm("preamble", self.config.preamble_timeout_s,
                            self._connection_deadline, "preamble")

    def disarm(self) -> None:
        """Connection teardown: every deadline dies with the resource."""
        self.timers.cancel_all()
        self._pending_bodies.clear()

    # -- frame admission (non-duplicate receive path) ------------------------

    def admit(self, frame: fr.Frame) -> bool:
        """Account ``frame`` against budgets; False drops it (the
        connection has been shed)."""
        if isinstance(frame, fr.SettingsFrame):
            if frame.ack:
                return True
            self.timers.cancel("preamble")
            return self._within_budget("settings",
                                       self.config.max_settings_per_s)
        if isinstance(frame, fr.PingFrame):
            if frame.ack:
                return True
            return self._within_budget("ping", self.config.max_pings_per_s)
        if isinstance(frame, fr.RstStreamFrame):
            self._stream_done(frame.stream_id)
            return self._within_budget("reset", self.config.max_resets_per_s)
        if isinstance(frame, fr.DataFrame):
            self._on_body_data(frame)
        return True

    def admit_stream(self, frame: fr.HeadersFrame) -> bool:
        """Per-connection open-stream cap, checked before stream setup."""
        cap = self.config.max_open_streams
        if cap is not None and self.conn._open_stream_count() >= cap:
            self.capped_streams += 1
            self.conn.send_frame(fr.RstStreamFrame(
                stream_id=frame.stream_id,
                error_code=int(ErrorCode.REFUSED_STREAM)))
            return False
        return True

    def on_request_opened(self, frame: fr.HeadersFrame) -> None:
        if frame.end_stream:
            return
        if len(self._pending_bodies) < 4096:  # bound tracked state
            self._pending_bodies.add(frame.stream_id)
        if self.config.header_timeout_s is not None:
            self.timers.arm(f"hdr:{frame.stream_id}",
                            self.config.header_timeout_s,
                            self._stream_deadline, frame.stream_id)

    def _on_body_data(self, frame: fr.DataFrame) -> None:
        stream_id = frame.stream_id
        if stream_id not in self._pending_bodies:
            return
        self.timers.cancel(f"hdr:{stream_id}")
        if frame.end_stream:
            self._stream_done(stream_id)
        elif self.config.body_progress_timeout_s is not None:
            self.timers.arm(f"body:{stream_id}",
                            self.config.body_progress_timeout_s,
                            self._stream_deadline, stream_id)

    def _stream_done(self, stream_id: int) -> None:
        self._pending_bodies.discard(stream_id)
        self.timers.cancel(f"hdr:{stream_id}")
        self.timers.cancel(f"body:{stream_id}")

    # -- budgets, queue cap, deadlines ---------------------------------------

    def _within_budget(self, key: str, per_s: Optional[float]) -> bool:
        if per_s is None:
            return True
        now = self.conn.sim.now
        window = self._windows.get(key)
        if window is None or now - window[0] >= 1.0:
            self._windows[key] = [now, 1]
            return True
        window[1] += 1
        if window[1] > per_s:
            self._shed(f"{key} rate {window[1]}/s exceeds budget "
                       f"{per_s:g}/s")
            return False
        return True

    def on_frames_queued(self) -> None:
        cap = self.config.max_queued_frames
        if cap is None:
            return
        queued = sum(len(queue) for queue in self.conn.stream_queues.values())
        if queued > cap:
            self._shed(f"{queued} response frames queued exceeds cap {cap}")

    def _shed(self, reason: str) -> None:
        """Graceful shedding: ENHANCE_YOUR_CALM GOAWAY, then teardown."""
        if self.conn._aborted:
            return
        self.conn.server.shed_connections += 1
        self.conn.shed_reason = reason
        self.conn.abort(ErrorCode.ENHANCE_YOUR_CALM)

    def _connection_deadline(self, which: str) -> None:
        if self.conn._aborted:
            return
        self.conn.server.timed_out_connections += 1
        self.conn.shed_reason = f"{which} deadline expired"
        self.conn.abort(ErrorCode.ENHANCE_YOUR_CALM)

    def _stream_deadline(self, stream_id: int) -> None:
        if self.conn._aborted:
            return
        self.timed_out_streams += 1
        self._stream_done(stream_id)
        self.conn._reset_stream(stream_id, ErrorCode.CANCEL)


@dataclass(frozen=True, slots=True)
class TxEntry:
    """Ground-truth record of one response frame entering the TCP stream."""

    time: float
    stream_id: int
    object_path: str
    serve_id: int
    tcp_offset: int
    length: int
    is_data: bool
    end_stream: bool
    duplicate: bool


class ServerConnection(Http2Connection):
    """Server side of one client connection."""

    def __init__(self, server: "Http2Server", tls: TlsSession):
        super().__init__(server.sim, tls, settings=server.config.settings)
        # Propagated before any frame moves: the TLS handshake that
        # triggers the preface completes in later events.
        self.probe = server.frame_probe
        self.server = server
        self.site = server.site
        self.config = server.config
        self.streams: Dict[int, StreamState] = {}
        #: Per-stream response queues of ``(frame, dup_serve)`` pairs --
        #: the dup flag rides beside the frame (frames are slotted; no
        #: ad-hoc attributes).
        self.stream_queues: Dict[int, Deque[Tuple[fr.Frame, bool]]] = {}
        self.priority_tree = PriorityTree()
        self.scheduler: MuxScheduler = make_scheduler(self.config.scheduler,
                                                      self.priority_tree)
        self.tx_log: List[TxEntry] = []
        self.requests_received = 0
        self.duplicate_requests_served = 0
        self._serve_ids = 0
        self._next_push_stream_id = 2
        self._shutting_down = False
        self._aborted = False
        self.refused_streams = 0
        self._dynamic_cache: Dict[str, bool] = {}
        self._rng = server.sim.rng("http2-server")
        # Passive robustness telemetry: counter/attribute updates only,
        # never events, so an unhardened server stays byte-identical.
        self.pings_received = 0
        self.settings_received = 0
        self.resets_received = 0
        self.last_activity_s = server.sim.now
        #: Why the robustness layer shed/reaped this connection ("" if alive).
        self.shed_reason = ""
        self._hardening: Optional[_ConnectionHardening] = (
            _ConnectionHardening(self) if server.config.hardening_active()
            else None)
        tls.conn.on_send_space = self.pump

    # -- robustness layer ----------------------------------------------------

    def _on_tls_established(self, tls: TlsSession) -> None:
        hardening = getattr(self, "_hardening", None)
        if hardening is not None:
            hardening.on_tls_established()
        super()._on_tls_established(tls)

    def _dispatch(self, frame: fr.Frame, dup: bool) -> None:
        if not dup:
            self.last_activity_s = self.sim.now
            if isinstance(frame, fr.PingFrame):
                if not frame.ack:
                    self.pings_received += 1
            elif isinstance(frame, fr.SettingsFrame):
                if not frame.ack:
                    self.settings_received += 1
            elif isinstance(frame, fr.RstStreamFrame):
                self.resets_received += 1
            if self._hardening is not None \
                    and not self._hardening.admit(frame):
                return
        super()._dispatch(frame, dup)

    def _reset_stream(self, stream_id: int, error_code: ErrorCode) -> None:
        """Server-initiated stream teardown (deadline expiry): RST the
        peer, retire local state, flush queued frames."""
        stream = self.streams.get(stream_id)
        if stream is None or stream.was_reset:
            return
        if not self._aborted and self.tls.conn.state != "closed":
            self.send_frame(fr.RstStreamFrame(stream_id=stream_id,
                                              error_code=int(error_code)))
        stream.on_recv_rst(int(error_code))
        if self.stream_queues.pop(stream_id, None) is not None:
            self.scheduler.on_stream_done(stream_id)

    # -- request ingress -----------------------------------------------------

    def handle_headers(self, frame: fr.HeadersFrame, dup: bool) -> None:
        path = frame.headers.get(":path")
        if path is None:
            return
        if dup and not self.config.serve_duplicate_requests:
            return
        if not dup:
            if self._shutting_down:
                # Streams above the GOAWAY watermark were never started.
                self.send_frame(fr.RstStreamFrame(
                    stream_id=frame.stream_id,
                    error_code=int(ErrorCode.REFUSED_STREAM)))
                return
            if self._hardening is not None \
                    and not self._hardening.admit_stream(frame):
                return
            if self._open_stream_count() >= self.settings.max_concurrent_streams:
                self.refused_streams += 1
                self.send_frame(fr.RstStreamFrame(
                    stream_id=frame.stream_id,
                    error_code=int(ErrorCode.REFUSED_STREAM)))
                return
            self.requests_received += 1
            stream = self.streams.setdefault(frame.stream_id,
                                             StreamState(frame.stream_id))
            stream.on_recv_headers(end_stream=frame.end_stream)
            weight = frame.priority_weight or 16
            self.priority_tree.add_stream(frame.stream_id, weight=weight)
            if self._hardening is not None:
                self._hardening.on_request_opened(frame)
        else:
            stream = self.streams.get(frame.stream_id)
            if stream is None or stream.was_reset:
                return
            self.duplicate_requests_served += 1

        delay = self._rng.expovariate(1.0 / self.config.processing_delay_mean_s)
        self.sim.schedule(delay, self._spawn_worker, frame.stream_id, path, dup)

    def handle_priority(self, frame: fr.PriorityFrame) -> None:
        self.priority_tree.add_stream(frame.stream_id, frame.depends_on,
                                      frame.weight, frame.exclusive)

    def handle_rst_stream(self, frame: fr.RstStreamFrame) -> None:
        stream = self.streams.get(frame.stream_id)
        if stream is not None:
            stream.on_recv_rst(frame.error_code)
        # Flush queued segments for the stream (the paper's observation
        # about Reset Stream reducing load immediately).
        queue = self.stream_queues.pop(frame.stream_id, None)
        if queue is not None:
            self.scheduler.on_stream_done(frame.stream_id)

    def handle_data(self, frame: fr.DataFrame, dup: bool) -> None:
        return None  # Request bodies are out of scope (GET-only workload).

    def handle_window_opened(self) -> None:
        self.pump()

    def _open_stream_count(self) -> int:
        return sum(1 for stream in self.streams.values()
                   if not stream.is_closed and stream.stream_id % 2 == 1)

    def shutdown(self) -> None:
        """Graceful close: announce GOAWAY, refuse new streams, finish
        the ones in flight (RFC 7540 section 6.8)."""
        if self._shutting_down:
            return
        self._shutting_down = True
        last = max((sid for sid in self.streams if sid % 2 == 1), default=0)
        self.send_frame(fr.GoAwayFrame(last_stream_id=last,
                                       error_code=int(ErrorCode.NO_ERROR)))

    def abort(self, error_code: ErrorCode = ErrorCode.INTERNAL_ERROR) -> None:
        """Crash close: GOAWAY with an error, then tear the TCP
        connection down mid-response.

        The GOAWAY is best-effort -- ``close()`` sends a FIN immediately
        and abandons retransmission, exactly like a process that dies
        with unflushed sockets -- so the client may see only the FIN.
        Idempotent."""
        if self._aborted:
            return
        self._aborted = True
        self._shutting_down = True
        if self._hardening is not None:
            self._hardening.disarm()
        if self.tls.conn.state != "closed":
            # The GOAWAY needs an established TLS session; a connection
            # aborted mid-handshake dies with a bare FIN.
            if self.tls.established:
                last = max((sid for sid in self.streams if sid % 2 == 1),
                           default=0)
                self.send_frame(fr.GoAwayFrame(last_stream_id=last,
                                               error_code=int(error_code)))
            self.tls.conn.close()

    # -- workers -----------------------------------------------------------------

    def _spawn_worker(self, stream_id: int, path: str, dup: bool) -> None:
        if self._aborted:
            return
        stream = self.streams.get(stream_id)
        if stream is None or stream.was_reset:
            return
        obj = self.site.lookup(path)
        self._serve_ids += 1
        serve_id = self._serve_ids

        if not dup:
            self._maybe_push(stream_id, path)

        headers_frame = self._response_headers(stream_id, obj)
        self._enqueue(stream_id, headers_frame)

        if obj is None:
            return
        generation = getattr(obj, "generation", None)
        if generation is not None and not self._dynamic_cache.get(path):
            self._generate_dynamic(stream_id, obj, serve_id, dup)
        else:
            self._enqueue_object(stream_id, obj, serve_id, dup)

    def _maybe_push(self, stream_id: int, path: str) -> None:
        push_map = self.config.push_map
        if not push_map or path not in push_map:
            return
        if not self.peer_settings.enable_push:
            return
        for pushed_path in push_map[path]:
            pushed = self.site.lookup(pushed_path)
            if pushed is None:
                continue
            promised_id = self._next_push_stream_id
            self._next_push_stream_id += 2
            headers = {":method": "GET", ":path": pushed_path,
                       ":authority": self.site.authority}
            block = self.server.hpack.encode_size(sorted(headers.items()))
            self.send_frame(fr.PushPromiseFrame(
                stream_id=stream_id, promised_stream_id=promised_id,
                headers=headers, header_block_len=block))
            pushed_stream = StreamState(promised_id)
            pushed_stream.on_recv_headers(end_stream=True)
            self.streams[promised_id] = pushed_stream
            self._serve_ids += 1
            self._enqueue(promised_id, self._response_headers(promised_id,
                                                              pushed))
            self._enqueue_object(promised_id, pushed, self._serve_ids,
                                 dup=False)

    def _response_headers(self, stream_id: int, obj) -> fr.HeadersFrame:
        if obj is None:
            headers = {":status": "404", "content-length": "0"}
            block = self.server.hpack.encode_size(sorted(headers.items()))
            return fr.HeadersFrame(stream_id=stream_id, headers=headers,
                                   header_block_len=block, end_stream=True)
        headers = {
            ":status": "200",
            "content-type": obj.content_type,
            "content-length": str(obj.size),
            "server": "repro-h2",
            "cache-control": "no-cache" if getattr(obj, "generation", None)
                             else "max-age=3600",
        }
        block = self.server.hpack.encode_size(sorted(headers.items()))
        return fr.HeadersFrame(stream_id=stream_id, headers=headers,
                               header_block_len=block, end_stream=False)

    def _enqueue_object(self, stream_id: int, obj, serve_id: int,
                        dup: bool) -> None:
        chunk = self.config.max_frame_payload
        total = obj.size
        if self.config.pad_object is not None:
            # Defense hook: ship `total` wire bytes for a `obj.size`-byte
            # object (HTTP/2 DATA padding / TLS record padding schemes).
            total = max(total, int(self.config.pad_object(obj.size, self._rng)))
        # Batched delivery: append every DATA frame of the object, then
        # pump once.  The enqueue loop runs inside a single simulator
        # event, so one pump at the end transmits the identical frames
        # in the identical order as a pump per frame -- without paying
        # the scheduler/backlog bookkeeping per frame (a large object is
        # hundreds of frames).
        offset = 0
        frames = []
        while offset < total:
            length = min(chunk, total - offset)
            offset += length
            frames.append(fr.DataFrame(
                stream_id=stream_id, length=length,
                end_stream=(offset >= total),
                object_ref=obj, serve_id=serve_id, object_offset=offset - length,
            ))
        self._enqueue_batch(stream_id, frames, dup=dup)

    def _generate_dynamic(self, stream_id: int, obj, serve_id: int,
                          dup: bool) -> None:
        rng = self.sim.rng(f"dynamic:{obj.path}")
        schedule = obj.generation.plan(rng, obj.size)
        gap, _ = schedule[0]
        self.sim.schedule(gap, self._emit_dynamic_chunk,
                          stream_id, obj, serve_id, dup, 0, schedule, 0)

    def _emit_dynamic_chunk(self, stream_id: int, obj, serve_id: int,
                            dup: bool, offset: int, schedule, index: int) -> None:
        stream = self.streams.get(stream_id)
        if stream is None or stream.was_reset:
            # Generation keeps running server-side; cache the result so a
            # re-request is served fast.
            self._dynamic_cache[obj.path] = True
            return
        frame_cap = self.config.max_frame_payload
        _, chunk_len = schedule[index]
        chunk_len = min(chunk_len, obj.size - offset)
        # A generation chunk may span several DATA frames; batch them
        # into one enqueue + pump (same wire order, one bookkeeping pass).
        emitted = 0
        frames = []
        while emitted < chunk_len:
            length = min(frame_cap, chunk_len - emitted)
            emitted += length
            end = offset + emitted >= obj.size
            frames.append(fr.DataFrame(
                stream_id=stream_id, length=length, end_stream=end,
                object_ref=obj, serve_id=serve_id,
                object_offset=offset + emitted - length,
            ))
        self._enqueue_batch(stream_id, frames, dup=dup)
        offset += chunk_len
        if offset >= obj.size or index + 1 >= len(schedule):
            self._dynamic_cache[obj.path] = True
            return
        gap, _ = schedule[index + 1]
        self.sim.schedule(gap, self._emit_dynamic_chunk,
                          stream_id, obj, serve_id, dup, offset, schedule,
                          index + 1)

    # -- scheduling into TCP ---------------------------------------------------

    def _enqueue(self, stream_id: int, frame: fr.Frame, dup: bool = False) -> None:
        self._enqueue_batch(stream_id, (frame,), dup=dup)

    def _enqueue_batch(self, stream_id: int, frames, dup: bool = False) -> None:
        queue = self.stream_queues.get(stream_id)
        if queue is None:
            queue = deque()
            self.stream_queues[stream_id] = queue
        for frame in frames:
            queue.append((frame, dup))
        if self._hardening is not None:
            self._hardening.on_frames_queued()
        self.pump()

    def pump(self) -> None:
        """Drain stream queues into TCP while there is room."""
        tcp = self.tls.conn
        if self._aborted or self.server.stalled or tcp.state == "closed":
            # A stalled server mux stops transmitting (workers keep
            # queueing); an aborted/closed connection has nowhere to
            # transmit to.
            return
        watermark = self.config.backlog_watermark_bytes
        while tcp.unsent_backlog < watermark:
            eligible = self._eligible_streams()
            if not eligible:
                break
            sid = self.scheduler.pick(eligible)
            queue = self.stream_queues[sid]
            frame, dup = queue.popleft()
            if not queue:
                del self.stream_queues[sid]
                # A queue can be transiently empty while a worker is
                # still enqueueing (TCP backpressure gates its loop);
                # the stream is *done* for scheduling purposes only at
                # END_STREAM, or FIFO service would lose its place.
                if getattr(frame, "end_stream", False):
                    self.scheduler.on_stream_done(sid)
            self._transmit(sid, frame, dup)

    def _eligible_streams(self) -> List[int]:
        eligible = []
        for sid in sorted(self.stream_queues):
            stream = self.streams.get(sid)
            if stream is not None and stream.was_reset:
                continue
            head = self.stream_queues[sid][0][0]
            if isinstance(head, fr.DataFrame) and not self.can_send_data(
                    sid, head.length):
                continue
            eligible.append(sid)
        return eligible

    def _transmit(self, sid: int, frame: fr.Frame, dup: bool = False) -> None:
        tcp = self.tls.conn
        offset = tcp.send_buffer.total_written
        is_data = isinstance(frame, fr.DataFrame)
        if is_data:
            self.send_data_frame(frame)
            stream = self.streams.get(sid)
            # Duplicate-serve copies keep flowing after the first copy
            # closed the stream (the paper's Fig. 4 behaviour); the state
            # machine only tracks the first serve.
            if stream is not None and not stream.is_closed:
                stream.on_send_data(frame.length, frame.end_stream)
        else:
            self.send_frame(frame)
        self.tx_log.append(TxEntry(
            time=self.sim.now,
            stream_id=sid,
            object_path=(frame.object_ref.path if is_data and frame.object_ref
                         else ""),
            serve_id=frame.serve_id if is_data else 0,
            tcp_offset=offset,
            length=frame.length if is_data else 0,
            is_data=is_data,
            end_stream=getattr(frame, "end_stream", False),
            duplicate=dup,
        ))


class Http2Server:
    """Accepts connections on a host and serves a site."""

    def __init__(self, sim, host, site, config: Optional[Http2ServerConfig] = None,
                 tcp_config: Optional[TcpConfig] = None):
        self.sim = sim
        self.host = host
        self.site = site
        self.config = config or Http2ServerConfig()
        self.hpack = HpackEncoder()
        #: Frame observation hook handed to every accepted connection
        #: (see :attr:`repro.http2.connection.Http2Connection.probe`).
        self.frame_probe: Optional[Callable] = None
        self.connections: List[ServerConnection] = []
        #: While True the mux pump transmits nothing (a wedged worker
        #: pool / GC pause / overloaded host); workers keep generating.
        self.stalled = False
        self.stalls = 0
        #: Accepts refused at the ``max_connections`` cap.
        self.refused_connections = 0
        #: Connections shed for exceeding a rate/queue budget.
        self.shed_connections = 0
        #: Slowest-connection evictions made to admit a new accept.
        self.reaped_connections = 0
        #: Connections killed by a handshake/preamble deadline.
        self.timed_out_connections = 0

        tcp_config = tcp_config or TcpConfig(deliver_duplicates=True)
        self.tcp = TcpStack(sim, host, tcp_config)
        self.tcp.listen(self.config.port, self._on_accept)

    #: Minimum idle time before an established connection may be reaped
    #: to admit a new accept.  A connection mid-page-load receives
    #: frames far more often than this; one that finished (or stalled)
    #: goes quiet for longer.
    REAP_IDLE_MIN_S = 1.0

    def _on_accept(self, conn: TcpConnection) -> None:
        live = [c for c in self.connections if not c._aborted]
        if len(live) >= self.config.max_connections:
            victim = None
            if self.config.reap_slowest_at_capacity:
                # Reap the longest-idle *established* connection.  A
                # connection that never finished TLS is already on the
                # handshake deadline's clock, and in an accept burst it
                # is indistinguishable from the newcomer itself -- so it
                # is never a reaping candidate; with no eligible victim
                # the newcomer is refused instead.  Stable min keeps the
                # choice deterministic.
                idle = [c for c in live if c.tls.established
                        and self.sim.now - c.last_activity_s
                        >= self.REAP_IDLE_MIN_S]
                if idle:
                    victim = min(idle, key=lambda c: c.last_activity_s)
            if victim is None:
                self.refused_connections += 1
                return  # connection flood: refuse, keep the rest alive
            victim.shed_reason = "reaped: slowest at accept capacity"
            victim.abort(ErrorCode.ENHANCE_YOUR_CALM)
            self.reaped_connections += 1
        tls = TlsSession(conn, role="server")
        self.connections.append(ServerConnection(self, tls))

    # -- fault-injection control surface ---------------------------------

    def stall(self) -> None:
        """Freeze the mux: no frame leaves any connection until
        :meth:`resume`.  Idempotent."""
        if not self.stalled:
            self.stalled = True
            self.stalls += 1

    def resume(self) -> None:
        """Unfreeze the mux and drain whatever queued up meanwhile."""
        if not self.stalled:
            return
        self.stalled = False
        for connection in self.connections:
            connection.pump()

    def abort_connections(self,
                          error_code: ErrorCode = ErrorCode.INTERNAL_ERROR,
                          ) -> None:
        """Crash-close every open connection (GOAWAY + immediate FIN)."""
        for connection in list(self.connections):
            connection.abort(error_code)

    def combined_tx_log(self) -> List[TxEntry]:
        """Concatenated transmission log across connections."""
        entries: List[TxEntry] = []
        for connection in self.connections:
            entries.extend(connection.tx_log)
        entries.sort(key=lambda e: (e.time, e.tcp_offset))
        return entries

"""HTTP/2 settings (RFC 7540 section 6.5.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Setting identifiers.
SETTINGS_HEADER_TABLE_SIZE = 0x1
SETTINGS_ENABLE_PUSH = 0x2
SETTINGS_MAX_CONCURRENT_STREAMS = 0x3
SETTINGS_INITIAL_WINDOW_SIZE = 0x4
SETTINGS_MAX_FRAME_SIZE = 0x5
SETTINGS_MAX_HEADER_LIST_SIZE = 0x6


@dataclass
class Http2Settings:
    """One endpoint's advertised settings."""

    header_table_size: int = 4096
    enable_push: bool = False
    max_concurrent_streams: int = 128
    initial_window_size: int = 262_144
    max_frame_size: int = 16_384
    max_header_list_size: int = 65_536

    def to_wire(self) -> Dict[int, int]:
        """The identifier -> value map carried by a SETTINGS frame."""
        return {
            SETTINGS_HEADER_TABLE_SIZE: self.header_table_size,
            SETTINGS_ENABLE_PUSH: int(self.enable_push),
            SETTINGS_MAX_CONCURRENT_STREAMS: self.max_concurrent_streams,
            SETTINGS_INITIAL_WINDOW_SIZE: self.initial_window_size,
            SETTINGS_MAX_FRAME_SIZE: self.max_frame_size,
            SETTINGS_MAX_HEADER_LIST_SIZE: self.max_header_list_size,
        }

    @classmethod
    def from_wire(cls, values: Dict[int, int]) -> "Http2Settings":
        """Parse a SETTINGS payload, keeping defaults for absent ids."""
        settings = cls()
        if SETTINGS_HEADER_TABLE_SIZE in values:
            settings.header_table_size = values[SETTINGS_HEADER_TABLE_SIZE]
        if SETTINGS_ENABLE_PUSH in values:
            settings.enable_push = bool(values[SETTINGS_ENABLE_PUSH])
        if SETTINGS_MAX_CONCURRENT_STREAMS in values:
            settings.max_concurrent_streams = values[SETTINGS_MAX_CONCURRENT_STREAMS]
        if SETTINGS_INITIAL_WINDOW_SIZE in values:
            settings.initial_window_size = values[SETTINGS_INITIAL_WINDOW_SIZE]
        if SETTINGS_MAX_FRAME_SIZE in values:
            settings.max_frame_size = values[SETTINGS_MAX_FRAME_SIZE]
        if SETTINGS_MAX_HEADER_LIST_SIZE in values:
            settings.max_header_list_size = values[SETTINGS_MAX_HEADER_LIST_SIZE]
        return settings

"""HTTP/2 stream state machine (RFC 7540 section 5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.http2.errors import ErrorCode, StreamError

# Stream states.
IDLE = "idle"
OPEN = "open"
HALF_CLOSED_LOCAL = "half-closed-local"
HALF_CLOSED_REMOTE = "half-closed-remote"
CLOSED = "closed"


@dataclass
class StreamState:
    """State and byte accounting for one stream at one endpoint."""

    stream_id: int
    state: str = IDLE
    bytes_sent: int = 0
    bytes_received: int = 0
    reset_code: Optional[int] = None
    #: Set once a HEADERS with END_STREAM or final DATA was sent/received.
    end_stream_sent: bool = False
    end_stream_received: bool = False

    # -- local actions -------------------------------------------------------

    def on_send_headers(self, end_stream: bool = False) -> None:
        if self.state == IDLE:
            self.state = OPEN
        elif self.state not in (OPEN, HALF_CLOSED_REMOTE):
            raise StreamError(self.stream_id,
                              f"HEADERS sent in state {self.state}")
        if end_stream:
            self._local_end()

    def on_send_data(self, nbytes: int, end_stream: bool = False) -> None:
        if self.state not in (OPEN, HALF_CLOSED_REMOTE):
            raise StreamError(self.stream_id,
                              f"DATA sent in state {self.state}",
                              ErrorCode.STREAM_CLOSED)
        self.bytes_sent += nbytes
        if end_stream:
            self._local_end()

    def on_send_rst(self, code: int) -> None:
        self.reset_code = code
        self.state = CLOSED

    # -- remote actions ----------------------------------------------------------

    def on_recv_headers(self, end_stream: bool = False) -> None:
        if self.state == IDLE:
            self.state = OPEN
        elif self.state == CLOSED:
            # Frames racing a reset are tolerated and ignored upstream.
            return
        if end_stream:
            self._remote_end()

    def on_recv_data(self, nbytes: int, end_stream: bool = False) -> None:
        if self.state == CLOSED:
            return
        if self.state not in (OPEN, HALF_CLOSED_LOCAL):
            raise StreamError(self.stream_id,
                              f"DATA received in state {self.state}",
                              ErrorCode.STREAM_CLOSED)
        self.bytes_received += nbytes
        if end_stream:
            self._remote_end()

    def on_recv_rst(self, code: int) -> None:
        self.reset_code = code
        self.state = CLOSED

    # -- helpers ------------------------------------------------------------------

    def _local_end(self) -> None:
        self.end_stream_sent = True
        if self.state == OPEN:
            self.state = HALF_CLOSED_LOCAL
        elif self.state == HALF_CLOSED_REMOTE:
            self.state = CLOSED

    def _remote_end(self) -> None:
        self.end_stream_received = True
        if self.state == OPEN:
            self.state = HALF_CLOSED_REMOTE
        elif self.state == HALF_CLOSED_LOCAL:
            self.state = CLOSED

    @property
    def is_closed(self) -> bool:
        return self.state == CLOSED

    @property
    def was_reset(self) -> bool:
        return self.reset_code is not None

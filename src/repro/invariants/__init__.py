"""Runtime invariant monitors and the seeded chaos harness.

Public surface:

* :class:`MonitorSuite` -- attachable monitors asserting conservation
  laws on a live simulation (see ``docs/INVARIANTS.md``),
* the :class:`InvariantViolation` taxonomy raised or collected when a
  law breaks,
* :class:`ChaosSpec` / :func:`generate_spec` / :func:`shrink_candidates`
  -- the data side of the ``repro chaos`` fuzzer (the driver lives in
  :mod:`repro.experiments.chaos`).
"""

from repro.invariants.chaos import (
    CHAOS_DEFENSES,
    CHAOS_SCHEDULERS,
    ChaosSpec,
    generate_spec,
    shrink_candidates,
)
from repro.invariants.dos_detector import DosDetector, DosDetectorConfig
from repro.invariants.monitors import MonitorSuite
from repro.invariants.violations import (
    ClockViolation,
    DosViolation,
    EventRing,
    HpackViolation,
    Http2Violation,
    InvariantViolation,
    LinkViolation,
    TcpViolation,
    Violation,
    make_error,
)

__all__ = [
    "CHAOS_DEFENSES",
    "CHAOS_SCHEDULERS",
    "ChaosSpec",
    "ClockViolation",
    "DosDetector",
    "DosDetectorConfig",
    "DosViolation",
    "EventRing",
    "HpackViolation",
    "Http2Violation",
    "InvariantViolation",
    "LinkViolation",
    "MonitorSuite",
    "TcpViolation",
    "Violation",
    "generate_spec",
    "make_error",
    "shrink_candidates",
]

"""Seeded chaos specs: random topologies x sessions x faults x defenses.

A :class:`ChaosSpec` is the declarative description of one fuzzed
session: everything :func:`repro.experiments.chaos.run_cell` needs to
assemble a run with monitors armed, as plain JSON-able data -- so a spec
rides inside a :class:`repro.experiments.runner.RunSpec` (and its cache
key), crosses process boundaries, and can be written to disk as a
reproducer.  :func:`generate_spec` derives spec ``index`` from a master
seed through a string-seeded ``random.Random``, so chaos campaigns are
reproducible run to run.  :func:`shrink_candidates` enumerates the
single-step reductions the failure minimizer tries, in the order tried.

This module is pure data and randomness; the session assembly and the
shrink *driver* live in :mod:`repro.experiments.chaos`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from repro.faults.plan import FaultEvent

#: Defense stacks the fuzzer cycles through.  ``push`` is excluded: its
#: push map is derived from the isidewith site, not the synthetic sites
#: chaos builds.
CHAOS_DEFENSES = ("none", "padding", "morphing", "random-order", "batching")

#: Server mux schedulers under test.
CHAOS_SCHEDULERS = ("round-robin", "fifo", "weighted")

#: Link names `link_down` faults may target.
FLAPPABLE_LINKS = ("client->mbox", "mbox->client", "mbox->server",
                   "server->mbox")


@dataclass(frozen=True)
class ChaosSpec:
    """One fuzzed session, as cache-key-compatible data."""

    seed: int
    html_size: int
    object_sizes: Tuple[int, ...]
    defense: str
    attack: bool
    scheduler: str
    initial_window_size: int
    max_reconnects: int
    client_bandwidth_bps: float
    client_propagation_s: float
    server_propagation_s: float
    natural_jitter_mean_s: float
    natural_loss_rate: float
    buffer_bytes: int
    fault_events: Tuple[dict, ...] = ()
    time_limit_s: float = 8.0

    def to_jsonable(self) -> dict:
        """Plain-dict form (fault events deep-copied, tuples to lists)."""
        return {
            "seed": self.seed,
            "html_size": self.html_size,
            "object_sizes": list(self.object_sizes),
            "defense": self.defense,
            "attack": self.attack,
            "scheduler": self.scheduler,
            "initial_window_size": self.initial_window_size,
            "max_reconnects": self.max_reconnects,
            "client_bandwidth_bps": self.client_bandwidth_bps,
            "client_propagation_s": self.client_propagation_s,
            "server_propagation_s": self.server_propagation_s,
            "natural_jitter_mean_s": self.natural_jitter_mean_s,
            "natural_loss_rate": self.natural_loss_rate,
            "buffer_bytes": self.buffer_bytes,
            "fault_events": [dict(event) for event in self.fault_events],
            "time_limit_s": self.time_limit_s,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ChaosSpec":
        events = tuple(dict(event) for event in data.get("fault_events", ()))
        for event in events:
            FaultEvent.from_jsonable(event)  # validate early, fail loudly
        return cls(
            seed=int(data["seed"]),
            html_size=int(data["html_size"]),
            object_sizes=tuple(int(s) for s in data.get("object_sizes", ())),
            defense=str(data["defense"]),
            attack=bool(data["attack"]),
            scheduler=str(data["scheduler"]),
            initial_window_size=int(data["initial_window_size"]),
            max_reconnects=int(data["max_reconnects"]),
            client_bandwidth_bps=float(data["client_bandwidth_bps"]),
            client_propagation_s=float(data["client_propagation_s"]),
            server_propagation_s=float(data["server_propagation_s"]),
            natural_jitter_mean_s=float(data["natural_jitter_mean_s"]),
            natural_loss_rate=float(data["natural_loss_rate"]),
            buffer_bytes=int(data["buffer_bytes"]),
            fault_events=events,
            time_limit_s=float(data.get("time_limit_s", 8.0)),
        )


def generate_spec(master_seed, index: int) -> ChaosSpec:
    """Derive spec ``index`` of a campaign, reproducibly.

    The generator stream is keyed by ``(master_seed, index)`` so every
    spec can be regenerated in isolation (the shrinker and the CLI's
    ``--seed`` replay rely on this).
    """
    rng = random.Random(f"chaos:{master_seed}:{index}")

    n_objects = rng.randrange(0, 11)
    object_sizes = tuple(rng.randrange(400, 50_001) for _ in range(n_objects))

    fault_events = []
    for _ in range(rng.randrange(0, 4)):
        kind = rng.choice(("link_down", "link_down", "middlebox_crash",
                           "server_stall", "server_abort"))
        at_s = round(rng.uniform(0.05, 4.0), 4)
        if kind == "server_abort":
            event = FaultEvent(kind=kind, at_s=at_s)
        elif kind == "link_down":
            event = FaultEvent(kind=kind, at_s=at_s,
                               duration_s=round(rng.uniform(0.05, 1.2), 4),
                               target=rng.choice(FLAPPABLE_LINKS))
        else:
            event = FaultEvent(kind=kind, at_s=at_s,
                               duration_s=round(rng.uniform(0.05, 1.2), 4))
        event.validate()
        fault_events.append(event.to_jsonable())

    return ChaosSpec(
        seed=rng.randrange(1 << 30),
        html_size=rng.randrange(2_000, 90_001),
        object_sizes=object_sizes,
        defense=rng.choice(CHAOS_DEFENSES),
        attack=rng.random() < 0.5,
        scheduler=rng.choice(CHAOS_SCHEDULERS),
        initial_window_size=rng.choice((16_384, 65_535, 262_144)),
        max_reconnects=rng.randrange(0, 3),
        client_bandwidth_bps=float(rng.choice((8_000_000, 40_000_000,
                                               1_000_000_000))),
        client_propagation_s=round(rng.uniform(0.001, 0.010), 6),
        server_propagation_s=round(rng.uniform(0.005, 0.030), 6),
        natural_jitter_mean_s=round(rng.uniform(0.0, 0.003), 6),
        natural_loss_rate=round(rng.uniform(0.0, 0.03), 5),
        buffer_bytes=rng.choice((32_000, 128_000, 256_000)),
        fault_events=tuple(fault_events),
    )


def shrink_candidates(spec: ChaosSpec) -> Iterator[Tuple[str, ChaosSpec]]:
    """Single-step reductions of ``spec``, simplest-first.

    Yields ``(description, candidate)`` pairs; the driver keeps the
    first candidate that still reproduces the violation and restarts
    from it (greedy delta debugging), so the order here is the
    preference order of the final reproducer.
    """
    if spec.attack:
        yield "disable attack", replace(spec, attack=False)
    if spec.defense != "none":
        yield f"drop defense {spec.defense}", replace(spec, defense="none")
    for i in range(len(spec.fault_events)):
        kept = spec.fault_events[:i] + spec.fault_events[i + 1:]
        dropped = spec.fault_events[i]
        yield (f"drop fault {dropped['kind']}@{dropped['at_s']}s",
               replace(spec, fault_events=kept))
    for i in range(len(spec.object_sizes)):
        kept = spec.object_sizes[:i] + spec.object_sizes[i + 1:]
        yield (f"drop object #{i} ({spec.object_sizes[i]}B)",
               replace(spec, object_sizes=kept))
    if spec.natural_jitter_mean_s > 0:
        yield "zero jitter", replace(spec, natural_jitter_mean_s=0.0)
    if spec.natural_loss_rate > 0:
        yield "zero loss", replace(spec, natural_loss_rate=0.0)
    if spec.max_reconnects > 0:
        yield "no reconnects", replace(spec, max_reconnects=0)
    if spec.scheduler != "round-robin":
        yield (f"default scheduler (was {spec.scheduler})",
               replace(spec, scheduler="round-robin"))

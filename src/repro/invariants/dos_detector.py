"""Real-time slow-HTTP/2 DoS detection over passive probe taps.

The :class:`DosDetector` consumes the two observation hooks the stack
already exposes -- the server's per-frame ``frame_probe`` and its TCP
stack's per-segment ``probe`` -- and classifies traffic *in simulated
time* into the attack taxonomy of :mod:`repro.attacks.spec`, emitting
one ``domain="dos"`` :class:`~repro.invariants.violations.Violation`
per (connection, code).

Design rules (docs/DOS.md):

* **Passive**: the detector never schedules simulator events and never
  draws randomness, so an instrumented run is byte-identical to a bare
  one (the standard zero-overhead probe contract).
* **Event-driven sweeps**: slow rules (preamble, dangling headers, body
  trickle) are evaluated every ``sweep_every_events`` observed events
  rather than on a timer; :meth:`finalize` runs one last sweep so
  quiet endings cannot hide a slow attack.
* **Rate rules fire inline**: flood rules (PING / SETTINGS / RST churn)
  are pure per-second counters checked as frames arrive.
* **Thresholds sit below hardening budgets**: every detector threshold
  is deliberately tighter than the corresponding
  :class:`~repro.http2.server.Http2ServerConfig` hardening knob, so a
  hardened server still *detects* before it shields (the probe stops
  seeing frames once the server sheds a connection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.http2 import frames as fr
from repro.invariants.violations import Violation

#: Bound on distinct connections tracked (DoS-safe bookkeeping).
_MAX_TRACKS = 1024

#: Bound on per-connection request streams tracked.
_MAX_STREAMS_TRACKED = 4096


@dataclass(frozen=True)
class DosDetectorConfig:
    """Detection thresholds.

    Defaults are tuned to sit *below* the reference hardened-server
    budgets in :mod:`repro.experiments.dos_eval` and *above* anything
    the legitimate client does (it always sends ``END_STREAM`` on
    request HEADERS, completes TLS+SETTINGS within ~1.2 s even on a
    slow access link, and caps retry resets at 3 per load).
    """

    #: Seconds a connection may exist without a client SETTINGS before
    #: it reads as a slow-preamble attack.
    preamble_threshold_s: float = 2.0
    #: Seconds a request stream may dangle (END_STREAM unseen, zero
    #: body bytes) before it counts toward the slow-headers rule.
    dangling_threshold_s: float = 2.5
    #: Dangling / trickling streams required before a connection is
    #: flagged (a legitimate client dangles none).
    dangling_min_streams: int = 8
    #: Body DATA frames per stream before the trickle rule can fire.
    trickle_min_frames: int = 2
    #: Mean body bytes per DATA frame at or below which a stream's
    #: body counts as a trickle.
    trickle_max_bytes: int = 64
    #: Per-connection received non-ack PING budget per second.
    ping_rate_per_s: float = 20.0
    #: Per-connection received non-ack SETTINGS budget per second.
    settings_rate_per_s: float = 10.0
    #: Per-connection received RST_STREAM budget per second.
    reset_rate_per_s: float = 20.0
    #: Observed events between slow-rule sweeps.
    sweep_every_events: int = 32
    #: Hard cap on emitted violations.
    max_flags: int = 256

    def validate(self) -> None:
        for name in ("preamble_threshold_s", "dangling_threshold_s",
                     "dangling_min_streams", "trickle_min_frames",
                     "trickle_max_bytes", "ping_rate_per_s",
                     "settings_rate_per_s", "reset_rate_per_s",
                     "sweep_every_events", "max_flags"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"DosDetectorConfig.{name} must be > 0, "
                                 f"got {value}")


class _ConnTrack:
    """Per-connection observation state, keyed by the TCP connection."""

    __slots__ = ("seq", "tcp_conn", "first_seen_s", "settings_seen",
                 "open_requests", "body_frames", "rates", "flagged")

    def __init__(self, seq: int, tcp_conn, first_seen_s: float):
        self.seq = seq
        self.tcp_conn = tcp_conn
        self.first_seen_s = first_seen_s
        #: True once a client (non-ack) SETTINGS was seen: the HTTP/2
        #: preamble completed.
        self.settings_seen = False
        #: ``stream_id -> opened_at_s`` for requests announcing a body.
        self.open_requests: Dict[int, float] = {}
        #: ``stream_id -> [data_frames, body_bytes]``.
        self.body_frames: Dict[int, List] = {}
        #: ``key -> [window_start_s, count]`` per-second rate windows.
        self.rates: Dict[str, List] = {}
        #: Codes already flagged for this connection (one flag each).
        self.flagged: set = set()


class DosDetector:
    """Classify server-side traffic into the slow-DoS taxonomy."""

    def __init__(self, clock, config: Optional[DosDetectorConfig] = None):
        self.clock = clock
        self.config = config or DosDetectorConfig()
        self.config.validate()
        #: Emitted ``domain="dos"`` violations, oldest first.
        self.flags: List[Violation] = []
        #: Observed probe events (segments + frames, both directions).
        self.events = 0
        self._tracks: Dict[int, _ConnTrack] = {}
        self._next_seq = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, server) -> None:
        """Install this detector's taps on ``server``.

        Attach *before* traffic arrives: the frame probe is propagated
        to each connection when it is accepted.
        """
        server.frame_probe = self.on_frame
        server.tcp.probe = self.on_segment
        for connection in server.connections:  # late attach: best effort
            connection.probe = self.on_frame

    # -- observation taps ----------------------------------------------------

    def on_segment(self, tcp_conn, direction: str, segment) -> None:
        """TCP-level tap: existence and liveness of connections."""
        self._track(tcp_conn)
        self._bump()

    def on_frame(self, h2_conn, direction: str, frame, dup: bool) -> None:
        """HTTP/2-level tap on the server's connections."""
        track = self._track(h2_conn.tls.conn)
        if track is not None and direction == "recv" and not dup:
            # A server-*sent* RST does not clear a tracked request: a
            # stream the server had to kill stays suspicious, and a
            # hardened server must still detect what it shed.
            self._observe_recv(track, frame)
        self._bump()

    def finalize(self, now: Optional[float] = None) -> None:
        """Run a final sweep so a quiet tail cannot hide a slow attack."""
        self._sweep(self.clock.now if now is None else now)

    # -- results -------------------------------------------------------------

    @property
    def detected(self) -> bool:
        return bool(self.flags)

    @property
    def first_flag_at(self) -> Optional[float]:
        return self.flags[0].at_s if self.flags else None

    def codes(self) -> List[str]:
        """Distinct flagged codes, in first-flag order."""
        seen: List[str] = []
        for violation in self.flags:
            if violation.code not in seen:
                seen.append(violation.code)
        return seen

    # -- internals -----------------------------------------------------------

    def _track(self, tcp_conn) -> Optional[_ConnTrack]:
        key = id(tcp_conn)
        track = self._tracks.get(key)
        if track is None:
            if len(self._tracks) >= _MAX_TRACKS:  # bound tracked state
                return None
            track = _ConnTrack(self._next_seq, tcp_conn, self.clock.now)
            self._next_seq += 1
            self._tracks[key] = track
        return track

    def _observe_recv(self, track: _ConnTrack, frame) -> None:
        config = self.config
        if isinstance(frame, fr.SettingsFrame):
            if not frame.ack:
                track.settings_seen = True
                self._rate(track, "settings", config.settings_rate_per_s,
                           "DOS_SETTINGS_FLOOD")
        elif isinstance(frame, fr.PingFrame):
            if not frame.ack:
                self._rate(track, "ping", config.ping_rate_per_s,
                           "DOS_PING_FLOOD")
        elif isinstance(frame, fr.RstStreamFrame):
            track.open_requests.pop(frame.stream_id, None)
            track.body_frames.pop(frame.stream_id, None)
            self._rate(track, "reset", config.reset_rate_per_s,
                       "DOS_RESET_CHURN")
        elif isinstance(frame, fr.HeadersFrame):
            # Client request announcing a body (END_STREAM unset) --
            # the legitimate client never does this.
            if (frame.stream_id % 2 == 1 and not frame.end_stream
                    and len(track.open_requests) < _MAX_STREAMS_TRACKED):
                track.open_requests[frame.stream_id] = self.clock.now
        elif isinstance(frame, fr.DataFrame):
            if frame.stream_id in track.open_requests:
                entry = track.body_frames.setdefault(frame.stream_id, [0, 0])
                entry[0] += 1
                entry[1] += frame.length
                if frame.end_stream:
                    track.open_requests.pop(frame.stream_id, None)
                    track.body_frames.pop(frame.stream_id, None)

    def _rate(self, track: _ConnTrack, key: str, per_s: float,
              code: str) -> None:
        now = self.clock.now
        window = track.rates.get(key)
        if window is None or now - window[0] >= 1.0:
            track.rates[key] = [now, 1]
            return
        window[1] += 1
        if window[1] > per_s:
            self._flag(track, code,
                       f"{key} rate {window[1]}/s exceeds {per_s:g}/s")

    def _bump(self) -> None:
        self.events += 1
        if self.events % self.config.sweep_every_events == 0:
            self._sweep(self.clock.now)

    def _sweep(self, now: float) -> None:
        config = self.config
        for track in self._tracks.values():
            if (not track.settings_seen
                    and now - track.first_seen_s
                    > config.preamble_threshold_s):
                self._flag(track, "DOS_SLOW_PREAMBLE",
                           f"no HTTP/2 preamble "
                           f"{now - track.first_seen_s:.2f}s after accept")
                continue
            dangling = 0
            trickling = 0
            for stream_id, opened_at in track.open_requests.items():
                body = track.body_frames.get(stream_id)
                if body is None:
                    if now - opened_at > config.dangling_threshold_s:
                        dangling += 1
                elif (body[0] >= config.trickle_min_frames
                      and body[1] <= body[0] * config.trickle_max_bytes):
                    trickling += 1
            if dangling >= config.dangling_min_streams:
                self._flag(track, "DOS_SLOW_HEADERS",
                           f"{dangling} request streams dangling > "
                           f"{config.dangling_threshold_s:g}s with no body")
            if trickling >= config.dangling_min_streams:
                self._flag(track, "DOS_SLOW_POST",
                           f"{trickling} request bodies trickling <= "
                           f"{config.trickle_max_bytes}B/frame")

    def _flag(self, track: _ConnTrack, code: str, message: str) -> None:
        if code in track.flagged:
            return
        if len(self.flags) >= self.config.max_flags:  # bound emissions
            return
        track.flagged.add(code)
        self.flags.append(Violation(
            code=code, domain="dos", at_s=self.clock.now,
            where=f"conn#{track.seq}", message=message))


__all__ = ["DosDetector", "DosDetectorConfig"]

"""Attachable runtime monitors asserting simulation conservation laws.

A :class:`MonitorSuite` hooks the passive ``probe`` attributes exposed by
the simulator (:attr:`repro.simnet.engine.Simulator.probe`), links
(:attr:`repro.simnet.link.Link.probe`), TCP stacks
(:attr:`repro.tcp.connection.TcpStack.probe`) and HTTP/2 endpoints
(``frame_probe`` on :class:`repro.http2.server.Http2Server` /
:class:`repro.http2.client.Http2Client`).  Unarmed, every probe is
``None`` and the instrumented code pays one ``is not None`` test per
event; armed, the suite *only observes* -- it never schedules events and
never draws randomness -- so an armed run is byte-identical to an
unarmed one.

Checked laws (full catalogue with codes in ``docs/INVARIANTS.md``):

* sim clock never moves backwards across executed events,
* per-link byte conservation (``sent == delivered + drops + in-flight``),
  queue-occupancy bounds and FIFO delivery order,
* TCP sequence-space sanity (``snd_una <= snd_nxt <= written``), payload
  only in ESTABLISHED, emitted segments inside the window, ``rcv_nxt``
  monotone,
* HTTP/2 flow-control: windows never negative, never replenished past
  what the peer could legally grant, never exceeding the initial window
  size; DATA never sent on a stream the sender reset or never announced,
* HPACK dynamic tables within ``0 <= size <= max_size``.

One deliberate non-law: DATA *after* END_STREAM-closed streams is legal
here -- duplicate-serve copies keep flowing after the first copy closed
the stream (the paper's Figure 4 behaviour).  Only reset streams are
off-limits.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.http2 import frames as fr
from repro.http2.connection import DEFAULT_WINDOW
from repro.invariants.violations import EventRing, Violation, make_error

#: TCP payload is only legal in this state (string, see repro.tcp.connection).
_ESTABLISHED = "established"


class _LinkWatch:
    """Byte-conservation and ordering state for one link direction."""

    def __init__(self, suite: "MonitorSuite", link):
        self.suite = suite
        self.link = link
        #: id(packet) -> size for accepted-but-not-yet-arrived packets.
        #: The link holds references to these packets (queued handles or
        #: scheduled arrival args), so ids cannot be recycled while here.
        self.inflight: Dict[int, int] = {}
        #: Accept-order packet ids, for the FIFO delivery check.
        self.order: deque = deque()
        #: Ids dropped by ``set_down`` after acceptance; skipped when they
        #: surface at the head of ``order``.
        self.cancelled: Dict[int, bool] = {}

    def handle(self, event: str, packet) -> None:
        link = self.link
        suite = self.suite
        size = packet.size if packet is not None else 0
        suite.ring.record(link.sim.now, f"link {link.name}: {event} {size}B")

        if event == "accept":
            self.inflight[id(packet)] = packet.size
            if not link.config.allow_reorder:
                self.order.append(id(packet))
        elif event == "drop_down" and id(packet) in self.inflight:
            # Queued packet discarded by set_down before serialization.
            del self.inflight[id(packet)]
            self.cancelled[id(packet)] = True
        elif event == "depart":
            if not link.up:
                suite.violate("link", "LINK_TX_WHILE_DOWN", f"link {link.name}",
                              "packet serialized onto a link that is down")
        elif event == "arrive":
            if id(packet) not in self.inflight:
                suite.violate("link", "LINK_PHANTOM_DELIVERY", f"link {link.name}",
                              "delivered a packet the link never accepted "
                              "(or already delivered)")
            else:
                del self.inflight[id(packet)]
            if not link.config.allow_reorder:
                while self.order and self.order[0] in self.cancelled:
                    del self.cancelled[self.order.popleft()]
                if not self.order or self.order.popleft() != id(packet):
                    suite.violate("link", "LINK_FIFO_ORDER", f"link {link.name}",
                                  "packet delivered out of accept order on a "
                                  "FIFO link")

        self.check_now()

    def check_now(self) -> None:
        """Conservation and bounds; cheap enough to run per event."""
        link = self.link
        stats = link.stats
        accounted = (stats.delivered + stats.dropped_loss + stats.dropped_queue
                     + stats.dropped_down + len(self.inflight))
        if stats.sent != accounted:
            self.suite.violate(
                "link", "LINK_CONSERVATION", f"link {link.name}",
                f"sent={stats.sent} != delivered={stats.delivered} "
                f"+ loss={stats.dropped_loss} + queue={stats.dropped_queue} "
                f"+ down={stats.dropped_down} + in_flight={len(self.inflight)}")
        depth = link.queue_depth_bytes()
        if depth < 0 or depth > link.config.buffer_bytes:
            self.suite.violate(
                "link", "LINK_QUEUE_BOUNDS", f"link {link.name}",
                f"queue depth {depth}B outside "
                f"[0, {link.config.buffer_bytes}]B")


class _TcpWatch:
    """Sequence-space state for one TCP connection endpoint."""

    def __init__(self, suite: "MonitorSuite", conn, label: str):
        self.suite = suite
        self.conn = conn  # strong ref: keeps id(conn) from being recycled
        self.label = label
        self.last_rcv_nxt = 0

    def handle(self, direction: str, segment) -> None:
        conn = self.conn
        suite = self.suite
        suite.ring.record(
            conn.sim.now,
            f"tcp {self.label} {direction} seq={segment.seq} "
            f"len={segment.payload_len} ack={segment.ack_no}")

        if direction == "send":
            written = conn.send_buffer.total_written
            if not (0 <= conn.snd_una <= conn.snd_nxt <= written):
                suite.violate(
                    "tcp", "TCP_SEQ_BOUNDS", self.label,
                    f"sender pointers out of order: snd_una={conn.snd_una} "
                    f"snd_nxt={conn.snd_nxt} written={written}")
            if segment.payload_len > 0:
                if conn.state != _ESTABLISHED:
                    suite.violate(
                        "tcp", "TCP_DATA_OUTSIDE_ESTABLISHED", self.label,
                        f"payload segment emitted in state {conn.state!r}")
                if (segment.seq < conn.snd_una
                        or segment.seq + segment.payload_len > conn.snd_nxt):
                    suite.violate(
                        "tcp", "TCP_SEQ_CONTINUITY", self.label,
                        f"segment [{segment.seq}, "
                        f"{segment.seq + segment.payload_len}) outside the "
                        f"sent window [snd_una={conn.snd_una}, "
                        f"snd_nxt={conn.snd_nxt})")
        else:
            rcv_nxt = conn.receive_buffer.rcv_nxt
            if rcv_nxt < self.last_rcv_nxt:
                suite.violate(
                    "tcp", "TCP_RCV_NXT_REGRESSION", self.label,
                    f"rcv_nxt moved backwards: {self.last_rcv_nxt} -> "
                    f"{rcv_nxt}")
            self.last_rcv_nxt = rcv_nxt


class _H2Watch:
    """Flow-control and stream-legality state for one HTTP/2 endpoint."""

    def __init__(self, suite: "MonitorSuite", conn, label: str):
        self.suite = suite
        self.conn = conn  # strong ref: keeps id(conn) from being recycled
        self.label = label
        #: Streams this endpoint has sent or received RST_STREAM on.
        self.reset_streams: Dict[int, bool] = {}
        #: Streams announced by HEADERS / PUSH_PROMISE in either direction.
        self.announced: Dict[int, bool] = {}
        #: Cumulative DATA bytes this endpoint sent, per stream and total.
        self.data_sent: Dict[int, int] = {}
        self.data_sent_total = 0
        #: Cumulative WINDOW_UPDATE credit received, per stream and conn.
        self.wu_received: Dict[int, int] = {}
        self.wu_conn_received = 0
        #: The peer's preface grant: one connection WINDOW_UPDATE received
        #: before any DATA was sent raises the usable connection window
        #: above the RFC default.  Recorded as an allowance, not a grant
        #: against sent bytes.
        self.conn_allowance = 0

    def handle(self, direction: str, frame, dup: bool) -> None:
        suite = self.suite
        suite.ring.record(
            self.conn.sim.now,
            f"h2 {self.label} {direction} {frame.type_name}"
            f" sid={frame.stream_id}" + (" dup" if dup else ""))

        if direction == "send":
            self._on_send(frame)
        elif not dup:
            # Duplicate TCP deliveries are ignored by the connection's
            # own accounting; mirror that (the first copy arrived first).
            self._on_recv(frame)
        if isinstance(frame, (fr.HeadersFrame, fr.PushPromiseFrame)):
            suite.check_hpack_tables()

    def _on_send(self, frame) -> None:
        suite = self.suite
        sid = frame.stream_id
        if isinstance(frame, fr.HeadersFrame):
            self.announced[sid] = True
        elif isinstance(frame, fr.PushPromiseFrame):
            self.announced[frame.promised_stream_id] = True
        elif isinstance(frame, fr.RstStreamFrame):
            self.reset_streams[sid] = True
        elif isinstance(frame, fr.DataFrame):
            if sid in self.reset_streams:
                suite.violate(
                    "http2", "H2_DATA_ON_RESET_STREAM", self.label,
                    f"DATA sent on stream {sid} after RST_STREAM")
            if sid not in self.announced:
                suite.violate(
                    "http2", "H2_DATA_UNKNOWN_STREAM", self.label,
                    f"DATA sent on stream {sid} never announced by "
                    f"HEADERS or PUSH_PROMISE")
            self.data_sent[sid] = self.data_sent.get(sid, 0) + frame.length
            self.data_sent_total += frame.length
            self._check_window_floor(sid)

    def _on_recv(self, frame) -> None:
        suite = self.suite
        sid = frame.stream_id
        if isinstance(frame, fr.HeadersFrame):
            self.announced[sid] = True
        elif isinstance(frame, fr.PushPromiseFrame):
            self.announced[frame.promised_stream_id] = True
        elif isinstance(frame, fr.RstStreamFrame):
            self.reset_streams[sid] = True
        elif isinstance(frame, fr.WindowUpdateFrame):
            if frame.increment <= 0:
                suite.violate(
                    "http2", "H2_WINDOW_UPDATE_INVALID", self.label,
                    f"WINDOW_UPDATE increment {frame.increment} on stream "
                    f"{sid} (must be positive)")
            elif sid == 0:
                if self.data_sent_total == 0 and self.wu_conn_received == 0 \
                        and self.conn_allowance == 0:
                    self.conn_allowance = frame.increment
                else:
                    self.wu_conn_received += frame.increment
                    if self.wu_conn_received > self.data_sent_total:
                        suite.violate(
                            "http2", "H2_CONN_WINDOW_OVERGRANT", self.label,
                            f"connection credit received "
                            f"({self.wu_conn_received}B beyond the preface "
                            f"grant) exceeds DATA bytes sent "
                            f"({self.data_sent_total}B)")
            else:
                self.wu_received[sid] = (
                    self.wu_received.get(sid, 0) + frame.increment)
                if self.wu_received[sid] > self.data_sent.get(sid, 0):
                    suite.violate(
                        "http2", "H2_STREAM_WINDOW_OVERGRANT", self.label,
                        f"stream {sid} credit received "
                        f"({self.wu_received[sid]}B) exceeds DATA bytes "
                        f"sent ({self.data_sent.get(sid, 0)}B)")
            self._check_window_ceiling(sid)

    def _check_window_floor(self, sid: int) -> None:
        """After a DATA send both consumed windows must be >= 0."""
        conn = self.conn
        if conn.send_window_connection.available < 0:
            self.suite.violate(
                "http2", "H2_WINDOW_NEGATIVE", self.label,
                f"connection send window at "
                f"{conn.send_window_connection.available}B")
        window = conn.send_window_streams.get(sid)
        if window is not None and window.available < 0:
            self.suite.violate(
                "http2", "H2_WINDOW_NEGATIVE", self.label,
                f"stream {sid} send window at {window.available}B")

    def _check_window_ceiling(self, sid: int) -> None:
        """After a replenish no window may exceed its legal maximum."""
        conn = self.conn
        ceiling = DEFAULT_WINDOW + self.conn_allowance
        if conn.send_window_connection.available > ceiling:
            self.suite.violate(
                "http2", "H2_CONN_WINDOW_EXCEEDS_INITIAL", self.label,
                f"connection send window "
                f"{conn.send_window_connection.available}B above its "
                f"initial value {ceiling}B")
        if sid != 0:
            window = conn.send_window_streams.get(sid)
            initial = conn.peer_settings.initial_window_size
            if window is not None and window.available > initial:
                self.suite.violate(
                    "http2", "H2_STREAM_WINDOW_EXCEEDS_INITIAL", self.label,
                    f"stream {sid} send window {window.available}B above "
                    f"SETTINGS_INITIAL_WINDOW_SIZE {initial}B")


class MonitorSuite:
    """Armed set of invariant monitors for one simulation run.

    ``mode="raise"`` (the default) raises the domain-specific
    :class:`repro.invariants.violations.InvariantViolation` subclass at
    the first breach; ``mode="collect"`` records every breach in
    :attr:`violations` and keeps running -- useful for tests and for
    counting distinct breaches in chaos triage.
    """

    def __init__(self, mode: str = "raise", ring_capacity: int = 48):
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown monitor mode {mode!r}")
        self.mode = mode
        self.ring = EventRing(ring_capacity)
        self.violations: List[Violation] = []
        self._sim = None
        self._last_clock: Optional[float] = None
        self._links: List[_LinkWatch] = []
        self._tcp: Dict[int, _TcpWatch] = {}
        self._tcp_labels: Dict[str, int] = {}
        self._h2: Dict[int, _H2Watch] = {}
        self._h2_labels: Dict[str, int] = {}
        self._hpack: List[tuple] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, sim, topology=None, server=None, client=None) -> None:
        """Install probes.  Arm ``sim`` and ``topology`` *before* the
        endpoints are constructed (the client emits its SYN at build
        time); ``attach_server`` / ``attach_client`` can be called later
        as each endpoint comes up -- their connection-level probes are
        propagated to connections as those are created."""
        self._sim = sim
        sim.probe = self._on_sim_event
        if topology is not None:
            for name in sorted(topology.links):
                self.attach_link(topology.links[name])
        if server is not None:
            self.attach_server(server)
        if client is not None:
            self.attach_client(client)

    def attach_server(self, server) -> None:
        """Arm TCP, frame and HPACK monitors on an ``Http2Server``."""
        server.tcp.probe = self._make_tcp_probe("server")
        server.frame_probe = self._make_h2_probe("server")
        self.watch_hpack("server.hpack", server.hpack)

    def attach_client(self, client) -> None:
        """Arm TCP, frame and HPACK monitors on an ``Http2Client``."""
        client.tcp.probe = self._make_tcp_probe("client")
        client.frame_probe = self._make_h2_probe("client")
        self.watch_hpack("client.hpack", client.hpack)

    def attach_link(self, link) -> None:
        """Arm the byte-conservation monitor on one link direction."""
        watch = _LinkWatch(self, link)
        self._links.append(watch)
        link.probe = watch.handle

    def watch_hpack(self, label: str, codec) -> None:
        """Register an encoder/decoder for dynamic-table bound checks."""
        self._hpack.append((label, codec))

    def _make_tcp_probe(self, side: str) -> Callable:
        def probe(conn, direction, segment):
            watch = self._tcp.get(id(conn))
            if watch is None:
                index = self._tcp_labels.get(side, 0)
                self._tcp_labels[side] = index + 1
                watch = _TcpWatch(self, conn, f"tcp {side}#{index}")
                self._tcp[id(conn)] = watch
            watch.handle(direction, segment)

        return probe

    def _make_h2_probe(self, side: str) -> Callable:
        def probe(conn, direction, frame, dup):
            watch = self._h2.get(id(conn))
            if watch is None:
                index = self._h2_labels.get(side, 0)
                self._h2_labels[side] = index + 1
                watch = _H2Watch(self, conn, f"h2 {side}#{index}")
                self._h2[id(conn)] = watch
            watch.handle(direction, frame, dup)

        return probe

    # -- checks ----------------------------------------------------------

    def _on_sim_event(self, when: float, _callback) -> None:
        last = self._last_clock
        if last is not None and when < last:
            self.violate("clock", "CLOCK_BACKWARD", "simulator",
                         f"event at t={when:.9f}s after clock reached "
                         f"t={last:.9f}s")
        self._last_clock = when

    def check_hpack_tables(self) -> None:
        """Dynamic tables must satisfy ``0 <= size <= max_size``."""
        for label, codec in self._hpack:
            size = codec.table_size
            if size < 0 or size > codec.max_table_size:
                self.violate(
                    "hpack", "HPACK_TABLE_BOUNDS", label,
                    f"dynamic table at {size}B outside "
                    f"[0, {codec.max_table_size}]B")

    def violate(self, domain: str, code: str, where: str, message: str) -> None:
        """Record one breach; raises in ``raise`` mode."""
        at_s = self._sim.now if self._sim is not None else 0.0
        violation = Violation(code=code, domain=domain, at_s=at_s,
                              where=where, message=message,
                              recent=self.ring.snapshot())
        self.violations.append(violation)
        if self.mode == "raise":
            raise make_error(violation)

    def finalize(self) -> List[Violation]:
        """End-of-run sweep: teardown-time conservation and table bounds.

        Returns all collected violations (empty on a clean run).
        """
        for watch in self._links:
            watch.check_now()
        self.check_hpack_tables()
        return self.violations

"""Structured taxonomy for runtime invariant violations.

A :class:`Violation` is a frozen record of one broken conservation law:
a stable machine-readable ``code``, the simulated time and place it was
detected, and a bounded snapshot of the events that led up to it.  The
exception classes wrap a violation per domain so harnesses can catch
broadly (:class:`InvariantViolation`) or narrowly (e.g.
:class:`Http2Violation`).  Everything here is passive data -- detection
lives in :mod:`repro.invariants.monitors`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach, safe to serialize in run metrics."""

    #: Stable identifier, e.g. ``LINK_CONSERVATION`` (see docs/INVARIANTS.md).
    code: str
    #: Which monitor domain tripped: clock / link / tcp / http2 / hpack
    #: / worker (emitted by the supervised runner pool) / dos (emitted
    #: by the slow-DoS traffic detector).
    domain: str
    #: Simulated time of detection (seconds).
    at_s: float
    #: Where in the topology/stack, e.g. ``link client->mbox`` or
    #: ``h2 server#0``.
    where: str
    #: Human-readable statement of the broken law, with the numbers.
    message: str
    #: Bounded trail of recent observed events, oldest first.
    recent: Tuple[str, ...] = ()

    def oneline(self) -> str:
        """Compact single-line rendering for logs and CLI output."""
        return f"[{self.code}] t={self.at_s:.6f}s {self.where}: {self.message}"

    def to_jsonable(self) -> dict:
        """Plain-dict form for ``RunResult`` metrics and reproducer files."""
        return {
            "code": self.code,
            "domain": self.domain,
            "at_s": self.at_s,
            "where": self.where,
            "message": self.message,
            "recent": list(self.recent),
        }


class InvariantViolation(AssertionError):
    """Base class for every monitor-raised violation.

    Subclasses :class:`AssertionError` so harnesses that know nothing of
    monitors still treat a breach as a failed assertion, not a crash of
    the harness itself.
    """

    def __init__(self, violation: Violation):
        self.violation = violation
        detail = violation.oneline()
        if violation.recent:
            detail += "\n  recent events:\n    " + "\n    ".join(violation.recent)
        super().__init__(detail)


class ClockViolation(InvariantViolation):
    """Simulation clock moved backwards."""


class LinkViolation(InvariantViolation):
    """Link byte conservation, queue bounds or FIFO order broken."""


class TcpViolation(InvariantViolation):
    """TCP sequence-space or state-machine law broken."""


class Http2Violation(InvariantViolation):
    """HTTP/2 flow-control or stream-legality law broken."""


class HpackViolation(InvariantViolation):
    """HPACK dynamic-table size bounds broken."""


class WorkerViolation(InvariantViolation):
    """Runner worker-health law broken (supervised pool events).

    Codes in this domain describe the execution substrate rather than
    the simulation: ``WORKER_CRASH`` (a worker process died),
    ``WORKER_HEARTBEAT_LOST`` (beats stopped; worker killed as wedged),
    ``WORKER_STATE_DIRTY`` (a worker refused a cell after detecting
    ambient-state contamination), ``CELL_POISONED`` (a cell was
    quarantined for killing consecutive workers) and
    ``WORKER_POOL_DEGRADED`` (respawn budget exhausted; sweep finished
    serially).  ``at_s`` for these is wall-clock seconds since the pool
    started, not simulated time.
    """


class DosViolation(InvariantViolation):
    """Slow-HTTP/2 denial-of-service traffic pattern detected.

    Codes in this domain are emitted by
    :class:`repro.invariants.dos_detector.DosDetector`, one per attack
    kind: ``DOS_SLOW_PREAMBLE`` (TCP connection never spoke TLS/HTTP2),
    ``DOS_SLOW_HEADERS`` (many request streams dangling with announced
    bodies that never arrive), ``DOS_SLOW_POST`` (many streams trickling
    tiny body frames), ``DOS_PING_FLOOD``, ``DOS_SETTINGS_FLOOD`` and
    ``DOS_RESET_CHURN`` (control-frame rates beyond any legitimate
    client).  Unlike the other domains these are traffic *judgements*,
    not broken conservation laws -- harnesses typically collect rather
    than raise them.
    """


#: Domain -> exception class used by :func:`make_error`.
DOMAIN_ERRORS = {
    "clock": ClockViolation,
    "link": LinkViolation,
    "tcp": TcpViolation,
    "http2": Http2Violation,
    "hpack": HpackViolation,
    "worker": WorkerViolation,
    "dos": DosViolation,
}


def make_error(violation: Violation) -> InvariantViolation:
    """Wrap a violation in its domain-specific exception class."""
    error_class = DOMAIN_ERRORS.get(violation.domain, InvariantViolation)
    return error_class(violation)


class EventRing:
    """Bounded ring buffer of recent ``(sim_time, description)`` events.

    Attached violations carry a snapshot of this ring so a raised error
    shows what the simulation was doing just before the breach, without
    unbounded memory growth on long runs.
    """

    def __init__(self, capacity: int = 48):
        self._events: deque = deque(maxlen=capacity)

    def record(self, at_s: float, what: str) -> None:
        self._events.append((at_s, what))

    def snapshot(self) -> Tuple[str, ...]:
        """Render the ring oldest-first for embedding in a violation."""
        return tuple(f"t={t:.6f}s {what}" for t, what in self._events)

"""Whole-program static analyzer for the repro package.

The simulator's reproducibility contract (docs/ARCHITECTURE.md) is only
worth something if it is enforced; ``repro.lint`` turns its clauses into
machine-checked rules.  A run parses every file, builds a project-wide
symbol table / call graph (:mod:`repro.lint.project`), and dispatches
five rule families:

=========  ============================================================
DET001-6   determinism: set-iteration order (now interprocedural, with
           escape paths), wall-clock reads, global random state,
           layering, shared mutable state, sim-time float equality
SIM001-2   simulation contracts: scheduling into the simulated past
           (law CLOCK_BACKWARD), unguarded probe/frame_probe hook calls
CACHE001-2 cache purity: ambient env/filesystem/cwd reads and mutable
           module-global use reachable from RunSpec cell functions
PROTO001-2 static counterparts of runtime protocol laws: window
           consume() domination (H2_WINDOW_NEGATIVE), frame emission
           after reset/CLOSED (H2_DATA_ON_RESET_STREAM)
PERF001-2  accidentally quadratic patterns (list.pop(0), linear 'in'
           on lists) inside event-loop-reachable hot paths
=========  ============================================================

Silence a finding with a trailing ``# repro-lint: ignore[CODE]``
comment; unused suppressions are reported per code (SUP001) and unknown
codes in suppressions are flagged (SUP002).  Mechanical fixes:
``repro lint --fix``; gradual adoption: ``--baseline`` /
``--write-baseline``.  Run as ``repro lint [paths]`` or
``python -m repro.lint``; see docs/LINTING.md for the full catalogue.
"""

from repro.lint.engine import (ALL_CODES, KNOWN_CODES, UNKNOWN_CODE,
                               UNUSED_CODE, build_project, lint_paths,
                               lint_source, module_name_for,
                               resolve_codes)
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES

__all__ = [
    "ALL_CODES",
    "Finding",
    "KNOWN_CODES",
    "LintReport",
    "RULES",
    "UNKNOWN_CODE",
    "UNUSED_CODE",
    "build_project",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "resolve_codes",
]

"""Whole-program static analyzer for the repro package.

The simulator's reproducibility contract (docs/ARCHITECTURE.md) is only
worth something if it is enforced; ``repro.lint`` turns its clauses into
machine-checked rules.  A run parses every file, builds a project-wide
symbol table / call graph (:mod:`repro.lint.project`), and dispatches
the rule families:

=========  ============================================================
DET001-6   determinism: set-iteration order (now interprocedural, with
           escape paths), wall-clock reads, global random state,
           layering, shared mutable state, sim-time float equality
SIM001-2   simulation contracts: scheduling into the simulated past
           (law CLOCK_BACKWARD), unguarded probe/frame_probe hook calls
CACHE001-2 cache purity: ambient env/filesystem/cwd reads and mutable
           module-global use reachable from RunSpec cell functions
PROTO001-2 static counterparts of runtime protocol laws: window
           consume() domination (H2_WINDOW_NEGATIVE, true CFG
           dominance), frame emission after reset/CLOSED
           (H2_DATA_ON_RESET_STREAM)
RES001-3   typestate resource lifecycles over CFG paths: stream
           handles closed/reset on every path (H2_STREAM_LEAK),
           flow-control credit replenished on exception paths
           (H2_CREDIT_LEAK), probe hooks disarmed (PROBE_LIFECYCLE,
           autofixable)
DOS001-2   peer-driven exhaustion shapes: receive loops with no
           timeout/deadline reachable from dispatch (DOS_SLOW_READ),
           unbounded appends of peer input in event handlers
           (DOS_UNBOUNDED_QUEUE)
PERF001-2  accidentally quadratic patterns (list.pop(0), linear 'in'
           on lists) inside event-loop-reachable hot paths
LEAK001-3  the adversary's information boundary, as interprocedural
           taint flows (:mod:`repro.lint.taint`): ground truth into
           adversary code (ADV_INFO_BOUNDARY), adversary output into
           defenses (DEFENSE_NO_FEEDBACK), passive taps mutating the
           observed system (TAP_PASSIVITY)
=========  ============================================================

The flow-sensitive core behind PROTO/RES/DOS lives in
:mod:`repro.lint.cfg` (per-function control-flow graphs),
:mod:`repro.lint.dataflow` (worklist solver: dominators, reaching
definitions, liveness) and :mod:`repro.lint.typestate` (declarative
acquire/release state machines); findings carry the concrete CFG path
(``via file:line`` hops) as evidence.

Silence a finding with a trailing ``# repro-lint: ignore[CODE]``
comment; unused suppressions are reported per code (SUP001) and unknown
codes in suppressions are flagged (SUP002).  Mechanical fixes:
``repro lint --fix``; gradual adoption: ``--baseline`` /
``--write-baseline`` / ``--prune-baseline``; code-scanning export:
``--sarif out.sarif``.  Run as ``repro lint [paths]`` or
``python -m repro.lint``; see docs/LINTING.md for the full catalogue.
"""

from repro.lint.cfg import CFG, BasicBlock, Edge, build_cfg
from repro.lint.dataflow import (dominators, immediate_dominators,
                                 liveness, reaching_definitions, solve)
from repro.lint.engine import (ALL_CODES, KNOWN_CODES, UNKNOWN_CODE,
                               UNUSED_CODE, build_project, lint_paths,
                               lint_source, module_name_for,
                               resolve_codes)
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES
from repro.lint.sarif import to_sarif, write_sarif
from repro.lint.taint import LEAK_SPECS, BoundarySpec, check_taint
from repro.lint.typestate import LIFECYCLES, Lifecycle, check_lifecycles

__all__ = [
    "ALL_CODES",
    "BasicBlock",
    "BoundarySpec",
    "CFG",
    "Edge",
    "Finding",
    "KNOWN_CODES",
    "LEAK_SPECS",
    "LIFECYCLES",
    "Lifecycle",
    "LintReport",
    "RULES",
    "UNKNOWN_CODE",
    "UNUSED_CODE",
    "build_cfg",
    "build_project",
    "check_lifecycles",
    "check_taint",
    "dominators",
    "immediate_dominators",
    "lint_paths",
    "lint_source",
    "liveness",
    "module_name_for",
    "reaching_definitions",
    "resolve_codes",
    "solve",
    "to_sarif",
    "write_sarif",
]

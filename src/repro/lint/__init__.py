"""AST-based determinism & layering linter for the repro package.

The simulator's reproducibility contract (docs/ARCHITECTURE.md) is only
worth something if it is enforced; ``repro.lint`` turns its clauses into
machine-checked rules:

=======  ==============================================================
DET001   set/frozenset iteration feeding an order-sensitive consumer
DET002   wall-clock reads outside the runner-telemetry/CLI allowlist
DET003   global ``random.*`` / ``numpy.random.*`` state
DET004   layering violations against the ARCHITECTURE.md layer map
DET005   mutable class-/module-level state and mutable default args
DET006   ``==``/``!=`` on simulated-time floats
=======  ==============================================================

Silence a finding with a trailing ``# repro-lint: ignore[DETnnn]``
comment; unused suppressions are themselves reported (SUP001).  Run as
``repro lint [paths]`` or ``python -m repro.lint``; see docs/LINTING.md
for the full catalogue.
"""

from repro.lint.engine import (ALL_CODES, UNUSED_CODE, lint_paths,
                               lint_source, module_name_for, resolve_codes)
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES

__all__ = [
    "ALL_CODES",
    "Finding",
    "LintReport",
    "RULES",
    "UNUSED_CODE",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "resolve_codes",
]

"""Mechanical fixes for a small set of rules (``repro lint --fix``).

Three rules have a fix that is correct by construction and cheap to
verify by re-linting:

* **DET001** -- wrap the set-typed expression in ``sorted(...)``: the
  consumer then sees a deterministic order regardless of hash
  randomization.
* **SIM002** -- wrap a bare ``x.probe(...)`` / ``x.frame_probe(...)``
  statement in the required ``if x.probe is not None:`` guard.
* **RES003** -- insert the missing probe disarm (``x.probe = None``)
  before the leaking ``return``, as directed by the finding's
  ``fix_hint`` (the typestate rule computes the exact line).

Fixes are applied as text edits spanning the node's
``lineno``/``end_lineno`` range, bottom-up so earlier edits never
invalidate later offsets, then the file is re-linted; the loop repeats
until no fixable finding remains (a fix can unmask another, e.g. a
second set iteration on the next line).  Everything else about the file
is left byte-for-byte untouched.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import _dotted_name

#: Codes --fix knows how to repair.
FIXABLE_CODES = frozenset({"DET001", "SIM002", "RES003"})

#: Upper bound on fix/re-lint rounds; each round strictly reduces the
#: fixable-finding count, so this only guards against a misbehaving fix.
MAX_PASSES = 5

_Edit = Tuple[int, int, str]   # (start offset, end offset, replacement)


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _abs_offset(offsets: List[int], lineno: int, col: int) -> int:
    return offsets[lineno - 1] + col


def _node_at(tree: ast.Module, line: int, col: int,
             kinds) -> Optional[ast.AST]:
    """Outermost node of the given kinds at exactly (line, col)."""
    best = None
    best_span = -1
    for node in ast.walk(tree):
        if not isinstance(node, kinds):
            continue
        if getattr(node, "lineno", None) != line \
                or getattr(node, "col_offset", None) != col:
            continue
        end_line = getattr(node, "end_lineno", line)
        end_col = getattr(node, "end_col_offset", col)
        span = (end_line - line) * 10_000 + (end_col - col)
        if span > best_span:
            best, best_span = node, span
    return best


def _det001_edit(source: str, offsets: List[int], tree: ast.Module,
                 finding: Finding) -> Optional[_Edit]:
    node = _node_at(tree, finding.line, finding.col, ast.expr)
    if node is None or node.end_lineno is None:
        return None
    start = _abs_offset(offsets, node.lineno, node.col_offset)
    end = _abs_offset(offsets, node.end_lineno, node.end_col_offset)
    return (start, end, f"sorted({source[start:end]})")


def _sim002_edit(source: str, offsets: List[int], tree: ast.Module,
                 finding: Finding) -> Optional[_Edit]:
    call = _node_at(tree, finding.line, finding.col, ast.Call)
    if call is None:
        return None
    stmt = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and node.value is call:
            stmt = node
            break
    if stmt is None or stmt.end_lineno is None:
        # The call is part of a larger expression; wrapping the whole
        # statement would change semantics, so leave it to a human.
        return None
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    lines = source.splitlines(keepends=True)
    start = offsets[stmt.lineno - 1]
    end = offsets[stmt.end_lineno]
    indent = " " * stmt.col_offset
    body = "".join("    " + line for line in lines[stmt.lineno - 1:
                                                   stmt.end_lineno])
    return (start, end, f"{indent}if {dotted} is not None:\n{body}")


def _res003_edit(source: str, offsets: List[int], tree: ast.Module,
                 finding: Finding) -> Optional[_Edit]:
    """Insert the missing disarm before the leaking ``return``.

    The typestate rule hands over the exact repair as a ``fix_hint``
    triple ``("insert_before", line, code)`` -- it only does so when
    the leaking exit is a plain return (exception exits need a
    try/finally, which is a human's call).
    """
    if len(finding.fix_hint) != 3 or finding.fix_hint[0] != "insert_before":
        return None
    _action, line_text, code = finding.fix_hint
    try:
        lineno = int(line_text)
    except ValueError:
        return None
    lines = source.splitlines(keepends=True)
    if not 1 <= lineno <= len(lines):
        return None
    target = lines[lineno - 1]
    indent = target[:len(target) - len(target.lstrip())]
    start = offsets[lineno - 1]
    return (start, start, f"{indent}{code}\n")


_FIXERS = {"DET001": _det001_edit, "SIM002": _sim002_edit,
           "RES003": _res003_edit}


def fix_source(source: str, findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every fixable finding to ``source``; (new source, #fixed)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    offsets = _line_offsets(source)
    edits: List[_Edit] = []
    for finding in findings:
        fixer = _FIXERS.get(finding.code)
        if fixer is None:
            continue
        edit = fixer(source, offsets, tree, finding)
        if edit is not None:
            edits.append(edit)
    # Bottom-up, skipping any edit overlapping one already applied.
    edits.sort(key=lambda e: (e[0], e[1]), reverse=True)
    applied = 0
    floor = len(source) + 1
    for start, end, text in edits:
        if end > floor:
            continue
        source = source[:start] + text + source[end:]
        floor = start
        applied += 1
    return source, applied


def fix_paths(paths: Sequence[str],
              select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Fix every fixable finding under ``paths`` in place.

    Re-lints after each round until a fixed point (bounded by
    ``MAX_PASSES``); returns path -> number of fixes applied.
    """
    from repro.lint.engine import lint_paths
    fixed: Dict[str, int] = {}
    for _ in range(MAX_PASSES):
        report = lint_paths(paths, select=select, ignore=ignore)
        per_file: Dict[str, List[Finding]] = {}
        for finding in report.findings:
            if finding.code in FIXABLE_CODES:
                per_file.setdefault(finding.path, []).append(finding)
        if not per_file:
            break
        progressed = False
        for path, file_findings in sorted(per_file.items()):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            new_source, applied = fix_source(source, file_findings)
            if applied:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(new_source)
                fixed[path] = fixed.get(path, 0) + applied
                progressed = True
        if not progressed:
            break
    return fixed


__all__ = ["FIXABLE_CODES", "MAX_PASSES", "fix_paths", "fix_source"]

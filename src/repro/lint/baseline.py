"""Committed finding baselines for gradual rule adoption.

A baseline file records findings that predate a rule (or live in code
the rule deliberately tolerates, e.g. tests exercising the bad pattern
on purpose) so a newly enabled family can gate CI immediately without a
mass-suppression commit.  Entries match on ``(path, code, context)``
where *context* is the stripped text of the offending line -- stable
across unrelated edits that shift line numbers -- with a ``count`` so
N identical lines in one file stay N, not unlimited.

Workflow::

    repro lint tests benchmarks --write-baseline lint-baseline.json
    repro lint tests benchmarks --baseline lint-baseline.json

Matched findings are dropped from the report (counted as
``baselined``); baseline entries that no longer match anything are
reported as ``stale_baseline`` so the file shrinks as debt is paid.
New findings are never absorbed: anything not in the file still fails
the run.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


class Baseline:
    """In-memory view of a baseline file, consumed during filtering."""

    def __init__(self, entries: Dict[_Key, int]):
        self._original: Dict[_Key, int] = dict(entries)
        self._budget: Dict[_Key, int] = dict(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})")
        entries: Dict[_Key, int] = {}
        for entry in payload.get("entries", []):
            key = (entry["path"], entry["code"], entry["context"])
            entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
        return cls(entries)

    def absorb(self, finding: Finding, line_text: str) -> bool:
        """True (and one use consumed) when the finding is baselined."""
        key = (finding.path, finding.code, line_text.strip())
        remaining = self._budget.get(key, 0)
        if remaining <= 0:
            return False
        self._budget[key] = remaining - 1
        return True

    def stale_count(self) -> int:
        """Entries (by count) that matched nothing this run."""
        return sum(count for count in self._budget.values() if count > 0)

    def stale_entries(self) -> List[Tuple[str, str, str, int]]:
        """(path, code, context, unmatched count) per stale entry, so
        the CLI can name exactly which lines of the committed file are
        dead weight."""
        return [(path, code, context, remaining)
                for (path, code, context), remaining
                in sorted(self._budget.items()) if remaining > 0]

    def prune(self, path: str) -> int:
        """Rewrite ``path`` keeping only the matched portion of each
        entry (``--prune-baseline``).  Returns the number of finding
        slots dropped.  Must run after a full lint pass has consumed
        the budget, or everything looks stale."""
        entries = []
        dropped = 0
        for key in sorted(self._original):
            used = self._original[key] - self._budget.get(key, 0)
            dropped += self._original[key] - used
            if used > 0:
                entry_path, code, context = key
                entries.append({"path": entry_path, "code": code,
                                "context": context, "count": used})
        payload = {"version": BASELINE_VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return dropped


def write_baseline(path: str, findings: List[Finding],
                   line_text_for) -> int:
    """Serialize ``findings`` as a baseline file; returns entry count.

    ``line_text_for(finding)`` must return the source line the finding
    points at (the engine has the decoded sources in hand).
    """
    counts: Dict[_Key, int] = {}
    for finding in findings:
        key = (finding.path, finding.code,
               line_text_for(finding).strip())
        counts[key] = counts.get(key, 0) + 1
    entries = [{"path": p, "code": c, "context": ctx, "count": n}
               for (p, c, ctx), n in sorted(counts.items())]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


__all__ = ["BASELINE_VERSION", "Baseline", "write_baseline"]

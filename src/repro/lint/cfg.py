"""Per-function control-flow graphs over stdlib ``ast``.

One :class:`CFG` is built per function (or method) body.  Blocks are
maximal straight-line statement sequences; edges carry a *kind* and the
line number of the statement that created them, so analyses can render
a concrete branch sequence (``via path:line: note`` hops) as finding
evidence.

Shape choices, tuned for the flow-sensitive rules that consume them
(PROTO001 dominance, the RES typestate family, DOS loop checks):

* Two synthetic sinks: :attr:`CFG.exit` (returns and the fall-off end)
  and :attr:`CFG.error` (uncaught exceptions).  Edges into them have
  kinds ``return`` / ``raise``.
* ``if``/``while`` tests end their block with ``true``/``false``
  edges; ``for`` uses ``loop``/``loop-exit``; ``break``/``continue``
  edges keep their kinds; back edges are ``back``.
* ``try``: every statement-bearing block inside the body gets one
  ``except`` edge to the handler-dispatch block (statement-level raise
  points stay inside the block; :mod:`repro.lint.typestate` reasons
  about within-block ordering itself).  ``finally`` bodies are built
  once on the normal path, with an extra ``raise`` continuation when
  the try can leak an exception.
* ``with`` introduces a dedicated body-entry block via a ``with`` edge
  (the golden tests pin this), and ``match`` lowers each case to a
  ``case`` edge plus a shared ``case-else`` fall-through.

The graphs over-approximate feasible paths (no condition evaluation);
that is the right polarity for the lifecycle rules, which must prove a
release happens on *every* path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Edge kinds that represent a concrete control decision; path evidence
#: renders these (plain fall-through hops stay silent).
BRANCH_KINDS = frozenset({
    "true", "false", "loop", "loop-exit", "break", "continue",
    "except", "case", "case-else", "back", "raise", "with",
})

#: Statements whose evaluation may raise (approximation: anything that
#: performs a call, subscript, attribute access, arithmetic, or is an
#: explicit raise/assert).  Used by the typestate rules to decide
#: whether an ``except`` edge can fire mid-block while a resource is
#: held.
_RAISING_EXPR = (ast.Call, ast.Subscript, ast.BinOp, ast.Attribute)


def header_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The parts of a statement evaluated in *its own* basic block
    (compound statements carry their bodies in other blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = []
        for item in stmt.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        return nodes
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    return [stmt]


def header_walk(stmt: ast.stmt):
    """Walk only the header parts of ``stmt`` (see ``header_nodes``)."""
    for node in header_nodes(stmt):
        yield from ast.walk(node)


def may_raise(stmt: ast.stmt) -> bool:
    """True when evaluating ``stmt``'s *own block part* can plausibly
    raise.  Compound statements contribute only their headers: the
    calls inside an ``if`` body raise from the body's block, not from
    the block holding the test."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in header_walk(stmt):
        if isinstance(node, _RAISING_EXPR):
            return True
    return False


@dataclass(frozen=True)
class Edge:
    """One control transfer between blocks."""

    source: int
    target: int
    kind: str            # "next", "true", "false", "loop", "except", ...
    lineno: int          # statement that created the transfer
    note: str = ""       # human rendering, e.g. "branch `if x:` is false"


class BasicBlock:
    """A maximal straight-line run of statements."""

    __slots__ = ("bid", "statements")

    def __init__(self, bid: int):
        self.bid = bid
        self.statements: List[ast.stmt] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.statements]
        return f"<block {self.bid} lines={lines}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges: List[Edge] = []
        self.entry = 0
        #: Normal termination (every return + the fall-off end).
        self.exit = -1
        #: Uncaught-exception termination.
        self.error = -2
        self._succs: Optional[Dict[int, List[Edge]]] = None
        self._preds: Optional[Dict[int, List[Edge]]] = None
        self._stmt_block: Optional[Dict[int, int]] = None

    # -- topology -----------------------------------------------------------

    def successors(self, bid: int) -> List[Edge]:
        if self._succs is None:
            succs: Dict[int, List[Edge]] = {}
            for edge in self.edges:
                succs.setdefault(edge.source, []).append(edge)
            self._succs = succs
        return self._succs.get(bid, [])

    def predecessors(self, bid: int) -> List[Edge]:
        if self._preds is None:
            preds: Dict[int, List[Edge]] = {}
            for edge in self.edges:
                preds.setdefault(edge.target, []).append(edge)
            self._preds = preds
        return self._preds.get(bid, [])

    def node_ids(self) -> List[int]:
        """Every block id plus the two synthetic sinks, entry first."""
        return list(self.blocks) + [self.exit, self.error]

    def block_of_stmt(self, stmt: ast.stmt) -> Optional[int]:
        """The block a statement was placed in (id()-keyed)."""
        if self._stmt_block is None:
            table: Dict[int, int] = {}
            for bid, block in self.blocks.items():
                for statement in block.statements:
                    table[id(statement)] = bid
            self._stmt_block = table
        return self._stmt_block.get(id(stmt))

    def block_of_node(self, node: ast.AST) -> Optional[int]:
        """The block containing the statement that encloses ``node``."""
        target = id(node)
        for bid, block in self.blocks.items():
            for statement in block.statements:
                if id(statement) == target:
                    return bid
                for child in ast.walk(statement):
                    if id(child) == target:
                        return bid
        return None

    # -- path evidence ------------------------------------------------------

    def path_edges(self, target: int, avoid=frozenset(),
                   sources: Optional[List[int]] = None) -> Optional[List[Edge]]:
        """Shortest edge sequence from entry (or ``sources``) to
        ``target`` that never enters a block in ``avoid``.  None when
        no such path exists."""
        starts = sources if sources is not None else [self.entry]
        parents: Dict[int, Optional[Edge]] = {}
        frontier: List[int] = []
        for start in starts:
            if start in avoid:
                continue
            parents.setdefault(start, None)
            frontier.append(start)
        while frontier:
            current = frontier.pop(0)
            if current == target:
                hops: List[Edge] = []
                cursor: Optional[Edge] = parents[current]
                while cursor is not None:
                    hops.append(cursor)
                    cursor = parents[cursor.source]
                hops.reverse()
                return hops
            for edge in self.successors(current):
                if edge.target in avoid or edge.target in parents:
                    continue
                parents[edge.target] = edge
                frontier.append(edge.target)
        return None

    def describe_path(self, path: str,
                      edges: List[Edge]) -> Tuple[str, ...]:
        """Render the decision points of an edge path as trace hops."""
        hops = []
        for edge in edges:
            if edge.kind in BRANCH_KINDS and edge.note:
                hops.append(f"{path}:{edge.lineno}: {edge.note}")
        return tuple(hops)


def _test_text(test: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(test)
    except Exception:  # pragma: no cover - unparse is total on our input
        text = "<test>"
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


class _Builder:
    """Recursive statement walker producing a :class:`CFG`."""

    def __init__(self, name: str):
        self.cfg = CFG(name)
        self._next_id = 0
        self.current = self._new_block()
        self.cfg.entry = self.current.bid
        #: (continue_target, break_target) per enclosing loop.
        self.loops: List[Tuple[int, int]] = []
        #: Exception continuation per enclosing try (innermost last).
        self.handlers: List[int] = []
        #: Deferred ``return`` sites per enclosing try-with-finally
        #: (innermost last): a return inside must run the finally body
        #: before reaching the exit, so its edge is wired when the
        #: finally block exists.
        self.finally_returns: List[List[Tuple[int, int]]] = []

    # -- plumbing -----------------------------------------------------------

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_id)
        self._next_id += 1
        self.cfg.blocks[block.bid] = block
        return block

    def _edge(self, source: int, target: int, kind: str, lineno: int,
              note: str = "") -> None:
        self.cfg.edges.append(Edge(source=source, target=target, kind=kind,
                                   lineno=lineno, note=note))

    def _exception_target(self) -> int:
        return self.handlers[-1] if self.handlers else self.cfg.error

    def _seal_for_exceptions(self, block: BasicBlock) -> None:
        """One ``except``/``raise`` edge per statement-bearing block so
        an in-block raise can divert to the nearest handler."""
        if not any(may_raise(stmt) for stmt in block.statements):
            return
        target = self._exception_target()
        lineno = next((s.lineno for s in block.statements if may_raise(s)),
                      block.statements[0].lineno)
        kind = "except" if self.handlers else "raise"
        note = ("an exception raised here reaches the handler"
                if self.handlers else
                "an exception raised here escapes the function")
        self._edge(block.bid, target, kind, lineno, note)

    def _start_block(self) -> BasicBlock:
        """Seal the current block and start a fresh one (no implicit
        fall-through edge; the caller wires entries)."""
        self._seal_for_exceptions(self.current)
        self.current = self._new_block()
        return self.current

    def _fall_through(self, lineno: int) -> BasicBlock:
        """Seal the current block and continue into a fresh successor."""
        previous = self.current
        block = self._start_block()
        self._edge(previous.bid, block.bid, "next", lineno)
        return block

    # -- statement dispatch --------------------------------------------------

    def build(self, body: List[ast.stmt]) -> CFG:
        terminated = self._emit_body(body)
        if not terminated:
            last_line = body[-1].end_lineno or body[-1].lineno
            self._edge(self.current.bid, self.cfg.exit, "return", last_line,
                       "falls off the end of the function")
        self._seal_for_exceptions(self.current)
        self._prune_orphans()
        return self.cfg

    def _prune_orphans(self) -> None:
        """Drop empty blocks with no edges (created after return/raise
        to terminate a body) so golden tests see the real shape."""
        touched = {self.cfg.entry}
        for edge in self.cfg.edges:
            touched.add(edge.source)
            touched.add(edge.target)
        for bid in list(self.cfg.blocks):
            block = self.cfg.blocks[bid]
            if bid not in touched and not block.statements:
                del self.cfg.blocks[bid]

    def _emit_body(self, body: List[ast.stmt]) -> bool:
        """Emit statements into the current block; True when control
        cannot fall out of the bottom (return/raise/break/continue)."""
        for stmt in body:
            if self._emit_stmt(stmt):
                return True
        return False

    def _emit_stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt)
        if isinstance(stmt, ast.While):
            return self._emit_while(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._emit_for(stmt)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._emit_with(stmt)
        if isinstance(stmt, ast.Match):
            return self._emit_match(stmt)
        if isinstance(stmt, ast.Return):
            self.current.statements.append(stmt)
            if self.finally_returns:
                # Inside try/finally: the finally body intervenes; the
                # edge is wired once that body has been built.
                self.finally_returns[-1].append(
                    (self.current.bid, stmt.lineno))
            else:
                self._edge(self.current.bid, self.cfg.exit, "return",
                           stmt.lineno, "returns here")
            self._start_block()
            return True
        if isinstance(stmt, ast.Raise):
            self.current.statements.append(stmt)
            target = self._exception_target()
            kind = "except" if self.handlers else "raise"
            self._edge(self.current.bid, target, kind, stmt.lineno,
                       "raises here")
            self._start_block()
            return True
        if isinstance(stmt, ast.Break):
            self.current.statements.append(stmt)
            if self.loops:
                self._edge(self.current.bid, self.loops[-1][1], "break",
                           stmt.lineno, "breaks out of the loop")
            self._start_block()
            return True
        if isinstance(stmt, ast.Continue):
            self.current.statements.append(stmt)
            if self.loops:
                self._edge(self.current.bid, self.loops[-1][0], "continue",
                           stmt.lineno, "continues the loop")
            self._start_block()
            return True
        # Plain statement (nested def/class bodies are opaque here: the
        # statement is a unit of this function's control flow).
        self.current.statements.append(stmt)
        return False

    # -- compound statements ------------------------------------------------

    def _emit_if(self, stmt: ast.If) -> bool:
        self.current.statements.append(stmt)
        cond = self.current
        text = _test_text(stmt.test)
        then_entry = self._start_block()
        self._edge(cond.bid, then_entry.bid, "true", stmt.lineno,
                   f"branch `if {text}:` is taken")
        then_done = self._emit_body(stmt.body)
        then_exit = self.current

        else_entry = self._start_block()
        self._edge(cond.bid, else_entry.bid, "false", stmt.lineno,
                   f"branch `if {text}:` is not taken")
        else_done = self._emit_body(stmt.orelse) if stmt.orelse else False
        else_exit = self.current

        join = self._start_block()
        if not then_done:
            self._edge(then_exit.bid, join.bid, "next", stmt.lineno)
        if not else_done:
            self._edge(else_exit.bid, join.bid, "next", stmt.lineno)
        return then_done and else_done

    def _emit_while(self, stmt: ast.While) -> bool:
        self.current.statements.append(stmt)
        before = self.current
        text = _test_text(stmt.test)

        head = self._start_block()
        self._edge(before.bid, head.bid, "next", stmt.lineno)

        after = self._new_block()
        body_entry = self._new_block()
        self._edge(head.bid, body_entry.bid, "true", stmt.lineno,
                   f"loop `while {text}:` iterates")
        self._edge(head.bid, after.bid, "false", stmt.lineno,
                   f"loop `while {text}:` exits")

        self.loops.append((head.bid, after.bid))
        self.current = body_entry
        body_done = self._emit_body(stmt.body)
        if not body_done:
            self._seal_for_exceptions(self.current)
            self._edge(self.current.bid, head.bid, "back",
                       stmt.body[-1].lineno, "loops back")
        self.loops.pop()

        if stmt.orelse:
            # while/else: the else body runs on normal loop exit.
            self.current = after
            self._emit_body(stmt.orelse)
            after = self._fall_through(stmt.lineno)
        self.current = after
        return False

    def _emit_for(self, stmt) -> bool:
        self.current.statements.append(stmt)
        before = self.current
        text = _test_text(stmt.iter)

        head = self._start_block()
        self._edge(before.bid, head.bid, "next", stmt.lineno)

        after = self._new_block()
        body_entry = self._new_block()
        self._edge(head.bid, body_entry.bid, "loop", stmt.lineno,
                   f"loop `for ... in {text}:` iterates")
        self._edge(head.bid, after.bid, "loop-exit", stmt.lineno,
                   f"loop `for ... in {text}:` is exhausted")

        self.loops.append((head.bid, after.bid))
        self.current = body_entry
        body_done = self._emit_body(stmt.body)
        if not body_done:
            self._seal_for_exceptions(self.current)
            self._edge(self.current.bid, head.bid, "back",
                       stmt.body[-1].lineno, "loops back")
        self.loops.pop()

        if stmt.orelse:
            self.current = after
            self._emit_body(stmt.orelse)
            after = self._fall_through(stmt.lineno)
        self.current = after
        return False

    def _emit_try(self, stmt: ast.Try) -> bool:
        before = self.current
        dispatch = self._new_block()

        # Seal the pre-try block under the *outer* handler context, then
        # enter the body with this try's dispatch on the handler stack.
        body_entry = self._start_block()
        self._edge(before.bid, body_entry.bid, "next", stmt.lineno)
        if stmt.finalbody:
            # Collect returns in the body/orelse/handlers; they must
            # pass through the finally body on the way out.
            self.finally_returns.append([])
        self.handlers.append(dispatch.bid)
        body_done = self._emit_body(stmt.body)
        body_exit = self.current
        self._seal_for_exceptions(body_exit)
        self.handlers.pop()

        join = self._new_block()

        # Normal completion: orelse runs, then finally, then join.
        if not body_done:
            if stmt.orelse:
                else_entry = self._new_block()
                self._edge(body_exit.bid, else_entry.bid, "next",
                           stmt.lineno)
                self.current = else_entry
                else_done = self._emit_body(stmt.orelse)
                if not else_done:
                    self._seal_for_exceptions(self.current)
                    self._edge(self.current.bid, join.bid, "next",
                               stmt.lineno)
            else:
                self._edge(body_exit.bid, join.bid, "next", stmt.lineno)

        # Handlers hang off the dispatch block.
        catches_all = False
        for handler in stmt.handlers:
            if handler.type is None:
                catches_all = True
            label = (_test_text(handler.type) if handler.type is not None
                     else "BaseException")
            entry = self._new_block()
            self._edge(dispatch.bid, entry.bid, "except", handler.lineno,
                       f"handler `except {label}:` catches")
            self.current = entry
            handler_done = self._emit_body(handler.body or [ast.Pass()])
            if not handler_done:
                self._seal_for_exceptions(self.current)
                self._edge(self.current.bid, join.bid, "next",
                           handler.lineno)
        escapes = not stmt.handlers or not catches_all
        outer = self._exception_target()
        escape_kind = "except" if self.handlers else "raise"

        if stmt.finalbody:
            # The finally body runs on the normal continuation AND on a
            # propagating exception, so release sites in it cover both
            # paths.  We build the body once on the normal path and give
            # its exit an extra re-raise edge for the escape case.
            deferred_returns = self.finally_returns.pop()
            final_entry = join
            self.current = join
            final_done = self._emit_body(stmt.finalbody)
            final_exit = self.current
            self._seal_for_exceptions(final_exit)
            join = self._new_block()
            if not final_done:
                self._edge(final_exit.bid, join.bid, "next", stmt.lineno)
                if escapes:
                    self._edge(final_exit.bid, outer, escape_kind,
                               stmt.lineno,
                               "the exception propagates after finally")
            if escapes:
                self._edge(dispatch.bid, final_entry.bid, "except",
                           stmt.lineno,
                           "no handler matches; finally runs first")
            # Deferred returns: into the finally body, then out to the
            # exit once it completes.
            for bid, lineno in deferred_returns:
                self._edge(bid, final_entry.bid, "next", lineno,
                           "return runs `finally:` first")
            if deferred_returns and not final_done:
                self._edge(final_exit.bid, self.cfg.exit, "return",
                           stmt.lineno, "returns after finally")
        elif escapes:
            self._edge(dispatch.bid, outer, escape_kind, stmt.lineno,
                       "no handler matches; the exception propagates")
        self.current = join
        return False

    def _emit_with(self, stmt) -> bool:
        self.current.statements.append(stmt)
        before = self.current
        items = ", ".join(_test_text(item.context_expr, 24)
                          for item in stmt.items)
        body_entry = self._start_block()
        self._edge(before.bid, body_entry.bid, "with", stmt.lineno,
                   f"enters `with {items}:`")
        body_done = self._emit_body(stmt.body)
        if body_done:
            self._start_block()
            return True
        self._fall_through(stmt.lineno)
        return False

    def _emit_match(self, stmt: ast.Match) -> bool:
        self.current.statements.append(stmt)
        subject = self.current
        text = _test_text(stmt.subject, 24)
        join = self._new_block()
        all_done = bool(stmt.cases)
        has_wildcard = False
        for case in stmt.cases:
            pattern = _test_text(case.pattern, 30)
            if isinstance(case.pattern, ast.MatchAs) \
                    and case.pattern.pattern is None and case.guard is None:
                has_wildcard = True
            entry = self._new_block()
            self._edge(subject.bid, entry.bid, "case", case.pattern.lineno,
                       f"`match {text}` takes `case {pattern}:`")
            self.current = entry
            case_done = self._emit_body(case.body)
            all_done = all_done and case_done
            if not case_done:
                self._seal_for_exceptions(self.current)
                self._edge(self.current.bid, join.bid, "next",
                           case.pattern.lineno)
        if not has_wildcard:
            self._edge(subject.bid, join.bid, "case-else", stmt.lineno,
                       f"`match {text}` matches no case")
            all_done = False
        self.current = join
        return all_done


def build_cfg(func_node) -> CFG:
    """CFG for one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``."""
    name = getattr(func_node, "name", "<lambda>")
    builder = _Builder(name)
    return builder.build(list(func_node.body))


__all__ = ["BRANCH_KINDS", "BasicBlock", "CFG", "Edge", "build_cfg",
           "may_raise"]

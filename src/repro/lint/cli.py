"""Command line for the linter: ``repro lint`` / ``python -m repro.lint``.

Exit status: 0 when the tree is clean, 1 when any finding (including an
unused suppression) survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.engine import ALL_CODES, lint_paths


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def package_root() -> str:
    """Directory of the installed ``repro`` package (self-check target)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by ``repro lint`` and -m)."""
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format (default text)")
    parser.add_argument("--select", type=_csv, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to run "
                             f"(default: all of {', '.join(ALL_CODES)})")
    parser.add_argument("--ignore", type=_csv, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--self-check", action="store_true",
                        help="lint the repro package's own source tree")


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    paths = list(args.paths)
    if args.self_check or not paths:
        paths = [package_root()]
    try:
        report = lint_paths(paths, select=args.select, ignore=args.ignore)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = ", ".join(f"{code}: {n}" for code, n
                           in sorted(report.by_code().items()))
        summary = (f"{len(report.findings)} finding"
                   f"{'' if len(report.findings) == 1 else 's'}"
                   f" ({report.files_checked} files checked")
        summary += f"; {counts})" if counts else ")"
        print(summary)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & layering linter for the "
                    "repro package (rules DET001-DET006; see "
                    "docs/LINTING.md)")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command line for the linter: ``repro lint`` / ``python -m repro.lint``.

Exit status: 0 when the tree is clean, 1 when any finding (including an
unused suppression) survives, 2 on usage errors (unknown rule codes,
unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.engine import ALL_CODES, lint_paths, source_line
from repro.lint.rules import RULES


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def package_root() -> str:
    """Directory of the installed ``repro`` package (self-check target)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by ``repro lint`` and -m)."""
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format (default text)")
    parser.add_argument("--select", type=_csv, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to run "
                             f"(default: all of {', '.join(ALL_CODES)})")
    parser.add_argument("--ignore", type=_csv, default=None,
                        metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--self-check", action="store_true",
                        help="lint the repro package's own source tree")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (DET001 sorted() "
                             "wrap, SIM002 probe guard, RES003 probe "
                             "disarm insertion) before reporting what "
                             "remains")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="drop findings recorded in this baseline "
                             "file (see docs/LINTING.md)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write surviving findings to FILE as a new "
                             "baseline and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the --baseline file dropping "
                             "entries that matched nothing this run")
    parser.add_argument("--sarif", metavar="FILE", default=None,
                        help="also write the report as SARIF 2.1.0 "
                             "to FILE (for code-scanning uploads)")
    parser.add_argument("--stats", action="store_true",
                        help="print a per-rule summary table after the "
                             "findings")


def _print_stats(report) -> None:
    counts = report.by_code()
    print("per-rule summary:")
    for code in sorted(counts):
        description = RULES.get(code, "(engine diagnostic)")
        print(f"  {code:<9} {counts[code]:>4}  {description.split(';')[0]}")
    if not counts:
        print("  (no findings)")
    print(f"  baselined: {report.baselined}, "
          f"stale baseline entries: {report.stale_baseline}")
    for path, code, context, count in report.stale_entries:
        suffix = f" (x{count})" if count > 1 else ""
        print(f"  stale: {path} {code} {context!r}{suffix} -- "
              f"matches nothing; drop it or run --prune-baseline")


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    paths = list(args.paths)
    if args.self_check or not paths:
        paths = [package_root()]
    try:
        if getattr(args, "fix", False):
            from repro.lint.autofix import fix_paths
            fixed = fix_paths(paths, select=args.select,
                              ignore=args.ignore)
            for path, count in sorted(fixed.items()):
                print(f"fixed {count} finding"
                      f"{'' if count == 1 else 's'} in {path}",
                      file=sys.stderr)
        report = lint_paths(paths, select=args.select, ignore=args.ignore,
                            baseline_path=getattr(args, "baseline", None),
                            prune_baseline=getattr(args, "prune_baseline",
                                                   False))
    except (ValueError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if report.pruned_baseline:
        print(f"pruned {report.pruned_baseline} stale baseline "
              f"entr{'y' if report.pruned_baseline == 1 else 'ies'} "
              f"from {args.baseline}", file=sys.stderr)

    sarif_to = getattr(args, "sarif", None)
    if sarif_to:
        from repro.lint.sarif import write_sarif
        try:
            write_sarif(sarif_to, report)
        except OSError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        print(f"wrote SARIF report ({len(report.findings)} result"
              f"{'' if len(report.findings) == 1 else 's'}) to {sarif_to}",
              file=sys.stderr)

    write_to = getattr(args, "write_baseline", None)
    if write_to:
        from repro.lint.baseline import write_baseline
        cache = {}
        entries = write_baseline(write_to, report.findings,
                                 lambda f: source_line(cache, f))
        print(f"wrote {entries} baseline entr"
              f"{'y' if entries == 1 else 'ies'} "
              f"({len(report.findings)} findings) to {write_to}",
              file=sys.stderr)
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = ", ".join(f"{code}: {n}" for code, n
                           in sorted(report.by_code().items()))
        summary = (f"{len(report.findings)} finding"
                   f"{'' if len(report.findings) == 1 else 's'}"
                   f" ({report.files_checked} files checked")
        if report.baselined:
            summary += f", {report.baselined} baselined"
        if report.stale_baseline:
            summary += f", {report.stale_baseline} stale baseline entries"
        summary += f"; {counts})" if counts else ")"
        print(summary)
    if getattr(args, "stats", False) and args.format != "json":
        _print_stats(report)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Whole-program determinism, caching, protocol, "
                    "performance and information-boundary linter for the "
                    "repro package (rule families DET/SIM/CACHE/PROTO/"
                    "PERF/RES/DOS/LEAK; see docs/LINTING.md)")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

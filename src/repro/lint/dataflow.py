"""Generic worklist dataflow over :mod:`repro.lint.cfg` graphs.

Three clients ship with the analyzer:

* :func:`dominators` / :func:`immediate_dominators` — the PROTO001
  rewrite needs true intraprocedural dominance ("every path to the
  consume passes through the can_send branch").
* :func:`reaching_definitions` — which assignments of a name can reach
  a block entry; the typestate rules use it to tie a release back to
  the binding it releases, and the solver-convergence test pins the
  loop-carried-definition fixpoint.
* :func:`liveness` — backward may-analysis; exposed for completeness
  and exercised by the tests (dead resource handles are a cheap signal
  the RES rules lean on).

The solver is deliberately small: sets of hashable facts, union or
intersection meet, iterate to fixpoint in reverse-post-order (forward)
or post-order (backward).  Our CFGs are tiny (one function each), so
clarity wins over bitvectors.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .cfg import CFG


class DataflowProblem:
    """A monotone framework instance over set-valued facts."""

    #: "forward" or "backward".
    direction = "forward"
    #: "union" (may) or "intersection" (must).
    meet = "union"

    def boundary(self, cfg: CFG) -> Set:
        """Facts at the entry (forward) or exits (backward)."""
        return set()

    def initial(self, cfg: CFG, bid: int) -> Set:
        """Optimistic starting value for interior nodes."""
        return set()

    def transfer(self, cfg: CFG, bid: int, facts: Set) -> Set:
        raise NotImplementedError


def _reverse_postorder(cfg: CFG) -> List[int]:
    seen: Set[int] = set()
    order: List[int] = []

    def visit(bid: int) -> None:
        # Iterative DFS; recursion depth is bounded by function size but
        # generated fixtures can chain deeply.
        stack: List[Tuple[int, int]] = [(bid, 0)]
        while stack:
            node, idx = stack.pop()
            if idx == 0:
                if node in seen:
                    continue
                seen.add(node)
            succs = cfg.successors(node)
            if idx < len(succs):
                stack.append((node, idx + 1))
                target = succs[idx].target
                if target not in seen:
                    stack.append((target, 0))
            else:
                order.append(node)

    visit(cfg.entry)
    for node in cfg.node_ids():
        if node not in seen:
            visit(node)
    order.reverse()
    return order


def solve(cfg: CFG, problem: DataflowProblem) -> Dict[int, Set]:
    """Fixpoint facts at *entry* of each node (forward) or *exit*
    (backward)."""
    forward = problem.direction == "forward"
    order = _reverse_postorder(cfg)
    if not forward:
        order = list(reversed(order))

    nodes = cfg.node_ids()
    boundary_nodes = {cfg.entry} if forward else {cfg.exit, cfg.error}
    facts_in: Dict[int, Set] = {}
    for node in nodes:
        if node in boundary_nodes:
            facts_in[node] = set(problem.boundary(cfg))
        else:
            facts_in[node] = set(problem.initial(cfg, node))

    def neighbors_in(node: int) -> List[int]:
        edges = (cfg.predecessors(node) if forward
                 else cfg.successors(node))
        return [e.source if forward else e.target for e in edges]

    changed = True
    while changed:
        changed = False
        for node in order:
            if node in boundary_nodes:
                continue
            incoming = [problem.transfer(cfg, n, facts_in[n])
                        for n in neighbors_in(node)]
            if not incoming:
                merged: Set = set(problem.initial(cfg, node))
            elif problem.meet == "union":
                merged = set().union(*incoming)
            else:
                merged = set.intersection(*map(set, incoming))
            if merged != facts_in[node]:
                facts_in[node] = merged
                changed = True
    return facts_in


# -- dominators -------------------------------------------------------------

def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """dom[b] = the set of blocks on every entry→b path (incl. b)."""
    nodes = cfg.node_ids()
    universe = set(nodes)
    dom: Dict[int, Set[int]] = {n: set(universe) for n in nodes}
    dom[cfg.entry] = {cfg.entry}
    order = [n for n in _reverse_postorder(cfg) if n != cfg.entry]
    changed = True
    while changed:
        changed = False
        for node in order:
            preds = [e.source for e in cfg.predecessors(node)]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()  # unreachable from entry
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def immediate_dominators(cfg: CFG) -> Dict[int, Optional[int]]:
    """idom[b] = the unique closest strict dominator (None at entry and
    unreachable nodes)."""
    dom = dominators(cfg)
    idom: Dict[int, Optional[int]] = {}
    for node, doms in dom.items():
        if node == cfg.entry:
            idom[node] = None
            continue
        strict = doms - {node}
        best = None
        for candidate in sorted(strict):
            if all(candidate in dom[other] for other in strict):
                best = candidate
        idom[node] = best
    return idom


def dominates(dom: Dict[int, Set[int]], a: int, b: int) -> bool:
    """True when block ``a`` dominates block ``b``."""
    return a in dom.get(b, set())


# -- reaching definitions ---------------------------------------------------

#: A definition fact: (variable name, line number of the assignment).
Definition = Tuple[str, int]


def _assigned_names(stmt: ast.stmt) -> List[Tuple[str, int]]:
    """Names (re)bound by a statement, with their line numbers."""
    out: List[Tuple[str, int]] = []

    def targets_of(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            out.append((node.id, node.lineno))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                targets_of(element)
        elif isinstance(node, ast.Starred):
            targets_of(node.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets_of(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets_of(item.optional_vars)
    return out


class ReachingDefinitions(DataflowProblem):
    """Forward may-analysis over (name, def_line) facts."""

    direction = "forward"
    meet = "union"

    def __init__(self, params: Tuple[str, ...] = (), param_line: int = 0):
        self.params = params
        self.param_line = param_line

    def boundary(self, cfg: CFG) -> Set[Definition]:
        return {(name, self.param_line) for name in self.params}

    def transfer(self, cfg: CFG, bid: int,
                 facts: Set[Definition]) -> Set[Definition]:
        block = cfg.blocks.get(bid)
        if block is None:
            return set(facts)
        out = set(facts)
        for stmt in block.statements:
            for name, line in _assigned_names(stmt):
                out = {fact for fact in out if fact[0] != name}
                out.add((name, line))
        return out


def reaching_definitions(cfg: CFG, func_node=None) -> Dict[int, Set[Definition]]:
    """Definitions reaching each block entry.  Parameters count as
    definitions on the ``def`` line."""
    params: Tuple[str, ...] = ()
    line = 0
    if func_node is not None:
        args = func_node.args
        names = [a.arg for a in
                 (args.posonlyargs + args.args + args.kwonlyargs)]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        params = tuple(names)
        line = func_node.lineno
    return solve(cfg, ReachingDefinitions(params, line))


# -- liveness ---------------------------------------------------------------

class Liveness(DataflowProblem):
    """Backward may-analysis: names whose current value may be read
    later.  Facts at a node are live-at-exit; transfer applies the
    block's use/def backwards."""

    direction = "backward"
    meet = "union"

    def transfer(self, cfg: CFG, bid: int, facts: Set[str]) -> Set[str]:
        block = cfg.blocks.get(bid)
        if block is None:
            return set(facts)
        live = set(facts)
        for stmt in reversed(block.statements):
            defined = {name for name, _ in _assigned_names(stmt)}
            live -= defined
            live |= _used_names(stmt)
        return live


def _used_names(stmt: ast.stmt) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
    return used


def liveness(cfg: CFG) -> Dict[int, Set[str]]:
    """Live variables at the *exit* of each block."""
    return solve(cfg, Liveness())


__all__ = ["DataflowProblem", "Definition", "Liveness",
           "ReachingDefinitions", "dominates", "dominators",
           "immediate_dominators", "liveness", "reaching_definitions",
           "solve"]

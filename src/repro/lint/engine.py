"""File discovery, whole-program model construction, and rule dispatch.

A lint run parses every discovered file once, builds the
:class:`repro.lint.project.Project` (symbol table, call graph,
reachability closures) over all of them, then dispatches the per-module
rules with that project in hand so the interprocedural rules (DET001
through helpers, CACHE/PERF reachability, PROTO001 caller chains) see
across file boundaries.

Files that are not valid UTF-8, or carry a UTF-8 BOM, produce a
structured ``E902`` finding instead of a traceback; syntax errors
produce ``E999``.  Both keep the exit status nonzero without aborting
the run.
"""

from __future__ import annotations

import ast
import codecs
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.families import (check_dos_paths, check_module_all,
                                 check_taint, check_window_paths)
from repro.lint.findings import Finding, LintReport
from repro.lint.project import ModuleInfo, Project, collect_aliases
from repro.lint.rules import RULES, ModuleContext
from repro.lint.suppressions import (UNKNOWN_CODE, UNUSED_CODE,
                                     apply_suppressions)
from repro.lint.typestate import check_lifecycles


def _project_findings(project, enabled) -> List[Finding]:
    """The whole-program rules: PROTO001 chains, RES lifecycles, DOS
    shapes, LEAK taint flows."""
    findings = list(check_window_paths(project, set(enabled)))
    findings.extend(check_lifecycles(project, set(enabled)))
    findings.extend(check_dos_paths(project, set(enabled)))
    findings.extend(check_taint(project, set(enabled)))
    return findings

ALL_CODES = tuple(sorted(RULES))

#: Codes the engine emits itself (not selectable rules, but legal in
#: suppression comments).
SPECIAL_CODES = ("E902", "E999", UNUSED_CODE, UNKNOWN_CODE)

KNOWN_CODES = frozenset(ALL_CODES) | frozenset(SPECIAL_CODES)


def _expand_codes(tokens: Sequence[str]) -> set:
    """Expand --select/--ignore tokens to exact codes.

    A token is either an exact code (``LEAK001``) or a family prefix
    (``LEAK``, ``DET``) that selects every code starting with it.
    Unknown tokens raise, same as before.
    """
    resolved = set()
    unknown: List[str] = []
    for token in tokens:
        token = token.upper()
        if token in RULES:
            resolved.add(token)
            continue
        family = {code for code in ALL_CODES if code.startswith(token)}
        if family:
            resolved |= family
        else:
            unknown.append(token)
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return resolved


def resolve_codes(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> frozenset:
    """The enabled rule-code set for --select/--ignore.

    Both accept exact codes and family prefixes (``--select LEAK``
    enables LEAK001..LEAK003)."""
    enabled = _expand_codes(select) if select else set(ALL_CODES)
    if ignore:
        enabled -= _expand_codes(ignore)
    return frozenset(enabled)


def module_name_for(path: str) -> str:
    """Dotted module name, derived by walking package ``__init__``s up."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _package_of(module: str, path: str) -> str:
    if os.path.basename(path) == "__init__.py":
        return module
    return module.rpartition(".")[0]


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return sorted(dict.fromkeys(files))


def _decode(raw: bytes, rel: str) -> Tuple[Optional[str], List[Finding]]:
    """Decode file bytes, reporting BOM / non-UTF-8 as E902 findings."""
    findings: List[Finding] = []
    if raw.startswith(codecs.BOM_UTF8):
        findings.append(Finding(
            path=rel, line=1, col=0, code="E902",
            message="file starts with a UTF-8 BOM; save without a BOM "
                    "(the rest of the file was still linted)"))
        raw = raw[len(codecs.BOM_UTF8):]
    try:
        return raw.decode("utf-8"), findings
    except UnicodeDecodeError as exc:
        findings.append(Finding(
            path=rel, line=1, col=0, code="E902",
            message=f"file is not valid UTF-8 ({exc.reason} at byte "
                    f"{exc.start}); file skipped"))
        return None, findings


def _parse_files(files: Sequence[str]):
    """(contexts, io/syntax findings) for every discovered file."""
    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    for file_path in files:
        rel = os.path.relpath(file_path)
        with open(file_path, "rb") as handle:
            raw = handle.read()
        source, file_findings = _decode(raw, rel)
        findings.extend(file_findings)
        if source is None:
            continue
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            findings.append(Finding(
                path=rel, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                code="E999", message=f"syntax error: {exc.msg}"))
            continue
        module = module_name_for(file_path)
        contexts.append(ModuleContext(
            path=rel, module=module,
            package=_package_of(module, file_path),
            tree=tree, source=source))
    return contexts, findings


def load_contexts(paths: Sequence[str]) -> List[ModuleContext]:
    """Parsed module contexts for every ``.py`` file under ``paths``
    (undecodable/unparsable files are skipped).  Public wrapper for
    tooling that wants the project model without a rule pass -- the
    bench suite's CFG/dataflow sweep drives it."""
    contexts, _ = _parse_files(discover_files(paths))
    return contexts


def build_project(contexts: Sequence[ModuleContext]) -> Project:
    """The whole-program model over every successfully parsed module."""
    return Project([
        ModuleInfo(module=ctx.module, path=ctx.path, tree=ctx.tree,
                   aliases=collect_aliases(ctx.tree))
        for ctx in contexts])


def lint_source(source: str, module_name: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None,
                package: Optional[str] = None) -> List[Finding]:
    """Lint one source string (the unit the fixture tests drive).

    The module is its own single-file project, so the interprocedural
    rules work within it (helpers, schedule seeds, cell specs naming
    this module).
    """
    enabled = resolve_codes(select, ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code="E999",
                        message=f"syntax error: {exc.msg}")]
    if package is None:
        package = module_name.rpartition(".")[0]
    ctx = ModuleContext(path=path, module=module_name, package=package,
                        tree=tree, source=source)
    project = build_project([ctx])
    findings = check_module_all(ctx, set(enabled), project)
    findings.extend(_project_findings(project, enabled))
    kept, _ = apply_suppressions(findings, source, path, enabled,
                                 known_codes=KNOWN_CODES)
    kept.sort(key=lambda f: f.sort_key())
    return kept


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               baseline_path: Optional[str] = None,
               prune_baseline: bool = False) -> LintReport:
    """Lint files and directories; the CLI's workhorse.

    With ``prune_baseline=True`` (requires ``baseline_path``), the
    baseline file is rewritten after filtering, keeping only the
    matched portion of each entry.
    """
    if prune_baseline and baseline_path is None:
        raise ValueError("--prune-baseline requires --baseline FILE")
    enabled = resolve_codes(select, ignore)
    files = discover_files(paths)
    contexts, findings = _parse_files(files)
    project = build_project(contexts)
    per_file: Dict[str, List[Finding]] = {
        ctx.path: check_module_all(ctx, set(enabled), project)
        for ctx in contexts}
    for finding in _project_findings(project, enabled):
        per_file.setdefault(finding.path, []).append(finding)
    sources = {ctx.path: ctx.source for ctx in contexts}
    for ctx in contexts:
        kept, _ = apply_suppressions(per_file[ctx.path], ctx.source,
                                     ctx.path, enabled,
                                     known_codes=KNOWN_CODES)
        findings.extend(kept)
    baselined = stale = pruned = 0
    stale_entries: Tuple[Tuple[str, str, str, int], ...] = ()
    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        surviving: List[Finding] = []
        for finding in findings:
            if baseline.absorb(finding,
                               source_line(sources, finding)):
                baselined += 1
            else:
                surviving.append(finding)
        stale = baseline.stale_count()
        stale_entries = tuple(baseline.stale_entries())
        findings = surviving
        if prune_baseline:
            pruned = baseline.prune(baseline_path)
    findings.sort(key=lambda f: f.sort_key())
    return LintReport(findings=findings, files_checked=len(files),
                      baselined=baselined, stale_baseline=stale,
                      stale_entries=stale_entries,
                      pruned_baseline=pruned)


def source_line(sources: Dict[str, str], finding: Finding) -> str:
    """The source line a finding points at ('' when unknown)."""
    source = sources.get(finding.path)
    if source is None:
        try:
            with open(finding.path, "rb") as handle:
                decoded, _ = _decode(handle.read(), finding.path)
            source = decoded or ""
        except OSError:
            source = ""
        sources[finding.path] = source
    lines = source.splitlines()
    if 1 <= finding.line <= len(lines):
        return lines[finding.line - 1]
    return ""


__all__ = ["ALL_CODES", "KNOWN_CODES", "SPECIAL_CODES", "UNUSED_CODE",
           "UNKNOWN_CODE", "build_project", "discover_files",
           "lint_paths", "lint_source", "load_contexts",
           "module_name_for", "resolve_codes", "source_line"]

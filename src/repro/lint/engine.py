"""File discovery, module-name resolution, and rule dispatch."""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES, ModuleContext, check_module
from repro.lint.suppressions import UNUSED_CODE, apply_suppressions

ALL_CODES = tuple(sorted(RULES))


def resolve_codes(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> frozenset:
    """The enabled rule-code set for --select/--ignore."""
    enabled = {code.upper() for code in select} if select else set(ALL_CODES)
    unknown = sorted(enabled - set(ALL_CODES))
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    if ignore:
        dropped = {code.upper() for code in ignore}
        unknown = sorted(dropped - set(ALL_CODES))
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        enabled -= dropped
    return frozenset(enabled)


def module_name_for(path: str) -> str:
    """Dotted module name, derived by walking package ``__init__``s up."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _package_of(module: str, path: str) -> str:
    if os.path.basename(path) == "__init__.py":
        return module
    return module.rpartition(".")[0]


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return sorted(dict.fromkeys(files))


def lint_source(source: str, module_name: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None,
                package: Optional[str] = None) -> List[Finding]:
    """Lint one source string (the unit the fixture tests drive)."""
    enabled = resolve_codes(select, ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, code="E999",
                        message=f"syntax error: {exc.msg}")]
    if package is None:
        package = module_name.rpartition(".")[0]
    ctx = ModuleContext(path=path, module=module_name, package=package,
                        tree=tree, source=source)
    findings = check_module(ctx, set(enabled))
    kept, _ = apply_suppressions(findings, source, path, enabled)
    kept.sort(key=lambda f: f.sort_key())
    return kept


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Lint files and directories; the CLI's workhorse."""
    enabled = resolve_codes(select, ignore)
    files = discover_files(paths)
    findings: List[Finding] = []
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        module = module_name_for(file_path)
        rel = os.path.relpath(file_path)
        file_findings = lint_source(
            source, module, path=rel,
            select=sorted(enabled), ignore=None,
            package=_package_of(module, file_path))
        findings.extend(file_findings)
    findings.sort(key=lambda f: f.sort_key())
    return LintReport(findings=findings, files_checked=len(files))


__all__ = ["ALL_CODES", "UNUSED_CODE", "discover_files", "lint_paths",
           "lint_source", "module_name_for", "resolve_codes"]

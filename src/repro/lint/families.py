"""The SIM / CACHE / PROTO / PERF rule families.

These rules consume the whole-program model built by
:mod:`repro.lint.project`:

* **SIM** -- misuse of the simulation clock and the probe contract.
  SIM001 is the static counterpart of the CLOCK_BACKWARD runtime law
  (scheduling into the simulated past); SIM002 enforces the
  zero-overhead probe contract (``probe``/``frame_probe`` hooks are
  invoked only under an ``is not None`` guard, so an unarmed run pays
  one pointer compare, never a call).
* **CACHE** -- the content-addressed result cache hashes only the
  :class:`RunSpec`.  Code reachable from a cell function that reads the
  environment/filesystem/cwd (CACHE001) or leans on mutable module
  globals (CACHE002) smuggles inputs past the hash and breaks the
  byte-identical-at-any-job-count guarantee.
* **PROTO** -- static counterparts of the HTTP/2 runtime laws in
  docs/INVARIANTS.md.  PROTO001 (H2_WINDOW_NEGATIVE): a flow-control
  ``consume()`` must be dominated by a ``can_send``/``can_send_data``
  check on every caller chain.  PROTO002 (H2_DATA_ON_RESET_STREAM): no
  DATA/HEADERS emission may follow a reset/CLOSED transition in the
  same function (RST_STREAM/GOAWAY emissions are exempt -- tearing a
  stream down *is* the legal reason to transition first; and DATA after
  a plain END_STREAM close is deliberately legal, the paper's Fig. 4
  duplicate-serve behaviour).
* **PERF** -- accidentally quadratic patterns, flagged only inside
  functions the event loop can actually reach (``list.pop(0)``,
  linear ``in`` on a list) and outside the experiments/interface
  layers where per-run code runs once.
* **LEAK** -- the adversary's information boundary, enforced as an
  interprocedural taint property.  The engine lives in
  :mod:`repro.lint.taint`; it is re-exported here so the LEAK family
  rides the same dispatch surface as the other project-level rules.

Findings cite the reachability witness (file:line call chain) as their
``trace`` and the runtime law they mirror as their ``law``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import layer_of
from repro.lint.rules import (
    DeterminismVisitor,
    ModuleContext,
    _dotted_name,
    _mutable_container,
    _terminal_name,
    check_layering,
)
from repro.lint.taint import check_taint  # noqa: F401  (family re-export)

#: Harness modules where CACHE rules do not apply: the runner/CLI own
#: the process boundary (cache dir, env overrides) by design.
CACHE_ALLOWED_PREFIXES = ("repro.experiments.runner", "repro.cli",
                          "repro.__main__", "repro.lint")

#: Layers whose code runs once per experiment, not per event: PERF
#: rules stay quiet there.
PERF_EXEMPT_LAYERS = frozenset({"experiments", "interface"})

#: Resolved call targets that read ambient process state.
_CACHE_ENV_SINKS = frozenset({
    "os.getenv", "os.environ.get", "os.environ.items",
    "os.environ.keys", "os.environ.values", "os.getcwd", "os.listdir",
    "os.scandir", "os.walk", "os.stat", "os.path.exists",
    "os.path.isfile", "os.path.isdir", "os.path.getsize",
    "os.path.getmtime", "pathlib.Path.cwd", "pathlib.Path.home",
    "open", "io.open", "tempfile.gettempdir",
})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "appendleft", "sort", "reverse",
})

_CLOSING_STATE_NAMES = frozenset({"CLOSED"})

#: Frame constructors whose emission after a close is legitimate
#: teardown (RST/GOAWAY) or bookkeeping (WINDOW_UPDATE, SETTINGS ack).
_TEARDOWN_FRAMES = frozenset({
    "RstStreamFrame", "GoAwayFrame", "WindowUpdateFrame",
    "SettingsFrame", "PingFrame",
})

_DATA_FRAMES = frozenset({"DataFrame", "HeadersFrame",
                          "ContinuationFrame", "PushPromiseFrame"})


class FamilyVisitor(DeterminismVisitor):
    """DET rules plus the SIM/CACHE/PROTO002/PERF families.

    Subclasses :class:`DeterminismVisitor` so one traversal serves both
    rule sets (``enabled`` still filters what is emitted) and the
    set/list type inference and qualname tracking are shared.
    """

    def __init__(self, ctx: ModuleContext, enabled: Set[str],
                 project=None):
        super().__init__(ctx, enabled, project=project)
        #: Stack of frames of dotted names proven non-None by an
        #: enclosing ``if`` test.
        self._guards: List[Set[str]] = []
        self._module_mutables = self._collect_module_mutables(ctx.tree)
        layer = layer_of(ctx.module)
        self._perf_exempt = (layer is not None
                             and layer[0] in PERF_EXEMPT_LAYERS)
        self._cache_exempt = ctx.module.startswith(CACHE_ALLOWED_PREFIXES)

    @staticmethod
    def _collect_module_mutables(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                targets, value = [stmt.target.id], stmt.value
            else:
                continue
            if _mutable_container(value)[0]:
                names.update(targets)
        return names

    # -- reachability lookups -----------------------------------------------

    def _current_key(self):
        qual = self._current_qualname()
        if not qual:
            return None
        return (self.ctx.module, qual)

    def _event_chain(self) -> Optional[List[str]]:
        if self.project is None or self._perf_exempt:
            return None
        key = self._current_key()
        if key is None:
            return None
        return self.project.event_reachable.get(key)

    def _cell_chain(self) -> Optional[List[str]]:
        if self.project is None or self._cache_exempt:
            return None
        key = self._current_key()
        if key is None:
            return None
        return self.project.cell_reachable.get(key)

    # -- None-guard tracking (SIM002) ---------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._guards.append(self._nonnull_guards(node.test))
        for stmt in node.body:
            self.visit(stmt)
        self._guards.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    @staticmethod
    def _nonnull_guards(test: ast.AST) -> Set[str]:
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            guards: Set[str] = set()
            for value in test.values:
                guards |= FamilyVisitor._nonnull_guards(value)
            return guards
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.IsNot) \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            dotted = _dotted_name(test.left)
            return {dotted} if dotted else set()
        if isinstance(test, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(test)
            return {dotted} if dotted else set()
        return set()

    def _is_guarded(self, dotted: str) -> bool:
        return any(dotted in frame for frame in self._guards)

    # -- call-site rules ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_sim001(node)
        self._check_sim002(node)
        self._check_cache001_call(node)
        self._check_cache002_call(node)
        self._check_perf001(node)
        super().visit_Call(node)

    def _check_sim001(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name == "schedule" and node.args:
            delay = node.args[0]
            if isinstance(delay, ast.UnaryOp) \
                    and isinstance(delay.op, ast.USub) \
                    and isinstance(delay.operand, ast.Constant) \
                    and isinstance(delay.operand.value, (int, float)):
                self._emit(node, "SIM001",
                           "negative delay schedules into the simulated "
                           "past; the engine raises at runtime",
                           law="CLOCK_BACKWARD")
        elif name == "schedule_at" and node.args:
            when = node.args[0]
            if isinstance(when, ast.BinOp) and isinstance(when.op, ast.Sub):
                left = _dotted_name(when.left)
                if left is not None and (left == "now"
                                         or left.endswith(".now")):
                    self._emit(node, "SIM001",
                               "schedule_at(now - x) targets the "
                               "simulated past; the engine raises at "
                               "runtime", law="CLOCK_BACKWARD")

    def _check_sim002(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in ("probe", "frame_probe"):
            return
        dotted = _dotted_name(node.func)
        if dotted is None or self._is_guarded(dotted):
            return
        self._emit(node, "SIM002",
                   f"{dotted}(...) invoked without an "
                   f"'if {dotted} is not None' guard; the hook is "
                   "Optional and the zero-overhead contract requires "
                   "the guard")

    def _check_cache001_call(self, node: ast.Call) -> None:
        chain = self._cell_chain()
        if chain is None:
            return
        resolved = self._resolve(node.func)
        if resolved in _CACHE_ENV_SINKS:
            self._emit(node, "CACHE001",
                       f"{resolved}() reads ambient process state inside "
                       "cell-reachable code; the result cache hashes "
                       "only the RunSpec, so this input escapes the "
                       "cache key", trace=tuple(chain))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        chain = self._cell_chain()
        if chain is not None:
            resolved = self._resolve(node.value)
            if resolved == "os.environ":
                self._emit(node, "CACHE001",
                           "os.environ[...] read inside cell-reachable "
                           "code; the result cache hashes only the "
                           "RunSpec", trace=tuple(chain))
        self.generic_visit(node)

    def _check_cache002_call(self, node: ast.Call) -> None:
        chain = self._cell_chain()
        if chain is None:
            return
        if isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in self._module_mutables \
                and node.func.attr in _MUTATOR_METHODS:
            self._emit(node, "CACHE002",
                       f"mutating module-global "
                       f"'{node.func.value.id}' in cell-reachable code; "
                       "state leaks across runs within a worker "
                       "process", trace=tuple(chain))

    def visit_Global(self, node: ast.Global) -> None:
        chain = self._cell_chain()
        if chain is not None:
            self._emit(node, "CACHE002",
                       "'global " + ", ".join(node.names) + "' in "
                       "cell-reachable code; rebinding module state "
                       "leaks across runs within a worker process",
                       trace=tuple(chain))
        self.generic_visit(node)

    def _check_mutating_store(self, target: ast.AST) -> None:
        if isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name) \
                and target.value.id in self._module_mutables:
            chain = self._cell_chain()
            if chain is not None:
                self._emit(target, "CACHE002",
                           f"item store into module-global "
                           f"'{target.value.id}' in cell-reachable "
                           "code; state leaks across runs within a "
                           "worker process", trace=tuple(chain))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutating_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutating_store(node.target)
        self.generic_visit(node)

    def _check_perf001(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
                and node.args[0].value is not False):
            return
        if not self._is_list_expr(node.func.value, None):
            return
        chain = self._event_chain()
        if chain is not None:
            self._emit(node, "PERF001",
                       "list.pop(0) shifts the whole list on every "
                       "event; use collections.deque and popleft()",
                       trace=tuple(chain))

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comp in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) \
                    and self._is_list_expr(comp, None):
                chain = self._event_chain()
                if chain is not None:
                    self._emit(node, "PERF002",
                               "linear 'in' on a list inside an "
                               "event-reachable hot path; use a set or "
                               "dict keys", trace=tuple(chain))
                break
        super().visit_Compare(node)

    # -- PROTO002: emission after close, per function -----------------------

    def _leave_function(self, node) -> None:
        close_line: Optional[int] = None
        close_what = ""
        emissions: List[Tuple[ast.Call, str]] = []
        for stmt in self._function_nodes(node):
            line = getattr(stmt, "lineno", None)
            if line is None:
                continue
            closing = self._closing_action(stmt)
            if closing and (close_line is None or line < close_line):
                close_line, close_what = line, closing
            emission = self._frame_emission(stmt)
            if emission:
                emissions.append((stmt, emission))
        if close_line is None:
            return
        for call, what in emissions:
            if call.lineno > close_line:
                self._emit(call, "PROTO002",
                           f"{what} emitted after {close_what} (line "
                           f"{close_line}); a reset/CLOSED stream must "
                           "not carry DATA/HEADERS (teardown frames "
                           "are exempt)", law="H2_DATA_ON_RESET_STREAM")

    @staticmethod
    def _function_nodes(func_node):
        stack = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _closing_action(node: ast.AST) -> str:
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("on_send_rst", "on_recv_rst"):
            return f"{node.func.attr}()"
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr == "reset" \
                        and isinstance(node.value, ast.Constant) \
                        and node.value.value is True:
                    return "a reset=True transition"
                if target.attr == "state":
                    name = _terminal_name(node.value)
                    if name in _CLOSING_STATE_NAMES or (
                            isinstance(node.value, ast.Constant)
                            and node.value.value == "closed"):
                        return "a CLOSED state transition"
        return ""

    @staticmethod
    def _frame_emission(node: ast.AST) -> str:
        if not isinstance(node, ast.Call):
            return ""
        name = _terminal_name(node.func)
        if name == "send_data_frame":
            return "send_data_frame()"
        if name in ("send_frame", "_send_frame") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                ctor = _terminal_name(arg.func)
                if ctor in _DATA_FRAMES:
                    return f"send_frame({ctor})"
        return ""


# -- PROTO001: window decrement domination, whole program -------------------


def _window_consume_sites(project):
    """(FuncKey, Call) pairs where a flow-control window is consumed."""
    for key, fn in project.functions.items():
        for node in project._own_nodes(fn.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "consume":
                recv = _dotted_name(node.func.value)
                if recv and "window" in recv.lower():
                    yield key, node


def _checking_functions(project) -> Set:
    """Functions that perform a window check, directly or via callees."""
    checked: Set = set()
    for key, fn in project.functions.items():
        for node in project._own_nodes(fn.node):
            if isinstance(node, ast.Call) \
                    and _terminal_name(node.func) in ("can_send",
                                                      "can_send_data"):
                checked.add(key)
                break
    changed = True
    while changed:
        changed = False
        for key, fn in project.functions.items():
            if key in checked:
                continue
            for candidates, _ in fn.calls:
                if any(callee in checked for callee in candidates):
                    checked.add(key)
                    changed = True
                    break
    return checked


class _CheckedRegion:
    """The lines of one function dominated by a window check.

    A *check event* is a direct ``can_send``/``can_send_data`` call or a
    call to a checking function (the :func:`_checking_functions`
    fixpoint).  Marking is flow-sensitive on the function's CFG:

    * check in an ``if``/``while`` **test**: only the success branch is
      checked -- the ``true`` successor (or the ``false`` successor for
      a negated ``if not can_send():`` guard) plus every block it
      dominates.  The untaken branch stays unchecked, which is exactly
      the ``else: consume()`` false negative the old reverse-BFS missed.
    * check in a plain **statement** (``eligible = self._filter()``):
      later statements in its own block plus every block it strictly
      dominates.
    """

    def __init__(self, project, fn, checking: Set):
        from repro.lint.cfg import build_cfg, header_walk as _header_walk
        from repro.lint.dataflow import dominators

        self.lines: Set[int] = set()
        cfg = build_cfg(fn.node)
        dom = dominators(cfg)
        info = project.modules[fn.module]

        block_lines: dict = {}
        for bid, block in cfg.blocks.items():
            for stmt in block.statements:
                for node in _header_walk(stmt):
                    line = getattr(node, "lineno", None)
                    if line is not None:
                        block_lines.setdefault(bid, set()).add(line)

        def is_check_call(node: ast.AST) -> bool:
            if not isinstance(node, ast.Call):
                return False
            if _terminal_name(node.func) in ("can_send", "can_send_data"):
                return True
            candidates = project._resolve_callable_ref(node.func, info, fn)
            return bool(candidates) and all(c in checking
                                            for c in candidates)

        def mark_dominated(root: int, strict: bool) -> None:
            for bid, lines in block_lines.items():
                if root in dom.get(bid, set()) \
                        and not (strict and bid == root):
                    self.lines |= lines

        _COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try,
                     ast.With, ast.AsyncWith, ast.Match, ast.FunctionDef,
                     ast.AsyncFunctionDef, ast.ClassDef)
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, (ast.If, ast.While)):
                if not any(is_check_call(n) for n in ast.walk(stmt.test)):
                    continue
                negated = isinstance(stmt.test, ast.UnaryOp) \
                    and isinstance(stmt.test.op, ast.Not)
                want = "false" if negated else "true"
                for edge in cfg.edges:
                    if edge.kind == want and edge.lineno == stmt.lineno:
                        mark_dominated(edge.target, strict=False)
            elif isinstance(stmt, ast.stmt) \
                    and not isinstance(stmt, _COMPOUND):
                if not any(is_check_call(n) for n in ast.walk(stmt)):
                    continue
                bid = cfg.block_of_stmt(stmt)
                if bid is None:
                    continue
                mark_dominated(bid, strict=True)
                self.lines |= {line for line
                               in block_lines.get(bid, set())
                               if line > stmt.lineno}

    def line_checked(self, lineno: int) -> bool:
        return lineno in self.lines


def check_window_paths(project, enabled: Set[str]) -> List[Finding]:
    """PROTO001: a window ``consume()`` must be *dominated* by a
    ``can_send``/``can_send_data`` check -- true CFG dominance inside
    the function, composed with caller-chain pruning (a caller whose
    call site sits inside its own checked region covers that chain;
    depth 6), mirroring the H2_WINDOW_NEGATIVE runtime law."""
    if project is None or "PROTO001" not in enabled:
        return []
    checking = _checking_functions(project)
    regions: dict = {}

    def region_for(key) -> _CheckedRegion:
        if key not in regions:
            regions[key] = _CheckedRegion(
                project, project.functions[key], checking)
        return regions[key]

    findings: List[Finding] = []
    for key, call in _window_consume_sites(project):
        if region_for(key).line_checked(call.lineno):
            continue
        fn = project.functions[key]
        # BFS up the reverse call graph looking for an unchecked chain
        # that dead-ends at a root (nothing above it performs the check
        # on the path to this call site).  A caller whose call site sits
        # inside its checked region dominates that chain and is pruned.
        parents = {key: None}
        frontier = [(key, 0)]
        witness = None
        while frontier and witness is None:
            current, depth = frontier.pop(0)
            callers = project.reverse_calls.get(current, [])
            if not callers:
                # Unchecked entry point (seed, public API, or the
                # consume function itself if nothing calls it).
                witness = current
                break
            if depth >= 6:
                continue
            for caller, lineno in callers:
                if caller in parents:
                    continue
                if region_for(caller).line_checked(lineno):
                    continue  # chain dominated by the caller's check
                parents[caller] = (current, lineno)
                frontier.append((caller, depth + 1))
        if witness is None:
            continue
        trace: List[str] = []
        cursor = witness
        while parents[cursor] is not None:
            child, lineno = parents[cursor]
            caller_fn = project.functions[cursor]
            child_fn = project.functions[child]
            trace.append(f"{caller_fn.path}:{lineno}: "
                         f"{caller_fn.qualname}() calls "
                         f"{child_fn.qualname}() without a window check")
            cursor = child
        root_fn = project.functions[witness]
        trace.insert(0, f"{root_fn.location()}: entry "
                        f"{root_fn.qualname}() performs no "
                        "can_send()/can_send_data() check")
        findings.append(Finding(
            path=fn.path, line=call.lineno, col=call.col_offset,
            code="PROTO001",
            message=(f"window consume() in {fn.qualname}() is not "
                     "dominated by a can_send()/can_send_data() check "
                     "on every caller chain"),
            trace=tuple(trace), law="H2_WINDOW_NEGATIVE"))
    return findings


# -- DOS: slow-DoS code shapes over reachability ----------------------------

#: Call names that read from a peer (a loop around one of these stalls
#: for as long as the peer cares to dribble bytes).
_RECV_NAME_PREFIXES = ("recv", "read", "wait", "poll", "accept")

#: Identifier fragments that signal the loop is bounded (a deadline, a
#: byte/iteration budget, or a clock comparison).
_DOS_GUARD_TOKENS = ("timeout", "deadline", "budget", "watermark",
                     "max", "limit", "remaining", "expires", "now")

#: Event-handler naming convention: these functions receive
#: peer-controlled arguments from the event loop.
_HANDLER_PREFIXES = ("on_", "_on_", "handle_", "_handle_")

#: Identifier fragments that signal growth of the container is bounded.
_BOUND_TOKENS = ("max", "limit", "capacity", "watermark", "maxlen",
                 "depth", "budget", "cap", "bound")


def _identifiers(node: ast.AST):
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr
        elif isinstance(child, ast.keyword) and child.arg:
            yield child.arg


def _has_token(node: ast.AST, tokens) -> bool:
    return any(any(token in ident.lower() for token in tokens)
               for ident in _identifiers(node))


def _has_len_guard(fn_node) -> bool:
    """A ``len(...)`` comparison anywhere in the function."""
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Compare):
            for side in [node.left] + list(node.comparators):
                if isinstance(side, ast.Call) \
                        and _terminal_name(side.func) == "len":
                    return True
    return False


def _tainted_names(fn_node) -> Set[str]:
    """Parameters plus locals assigned from tainted expressions
    (fixpoint, so statement order does not matter)."""
    args = fn_node.args
    tainted = {a.arg for a in (args.posonlyargs + args.args
                               + args.kwonlyargs)} - {"self"}
    if args.vararg:
        tainted.add(args.vararg.arg)
    if args.kwarg:
        tainted.add(args.kwarg.arg)
    assigns = [node for node in ast.walk(fn_node)
               if isinstance(node, ast.Assign)]
    changed = True
    while changed:
        changed = False
        for node in assigns:
            uses = {n.id for n in ast.walk(node.value)
                    if isinstance(n, ast.Name)}
            if not (uses & tainted):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id not in tainted:
                    tainted.add(target.id)
                    changed = True
    return tainted


def check_dos_paths(project, enabled: Set[str]) -> List[Finding]:
    """DOS001/DOS002: slow-DoS shapes on peer-reachable paths.

    DOS001 flags a ``while`` loop around a receive-style call inside
    dispatch-reachable code with no timeout/deadline/budget token in
    the loop -- the slow-read stall a peer can park forever.  DOS002
    flags an event-reachable handler appending peer-derived input to
    instance state with no ``len()`` comparison or bound token anywhere
    in the function -- the unbounded-queue memory shape.
    """
    findings: List[Finding] = []
    if project is None:
        return findings
    if "DOS001" in enabled:
        for key in sorted(project.dispatch_reachable):
            fn = project.functions[key]
            for node in project._own_nodes(fn.node):
                if not isinstance(node, ast.While):
                    continue
                recv_calls = [
                    c for c in ast.walk(node)
                    if isinstance(c, ast.Call)
                    and (_terminal_name(c.func) or "").startswith(
                        _RECV_NAME_PREFIXES)]
                if not recv_calls or _has_token(node, _DOS_GUARD_TOKENS):
                    continue
                recv = recv_calls[0]
                trace = tuple(project.dispatch_reachable[key]) + (
                    f"{fn.path}:{recv.lineno}: the loop body calls "
                    f"{_terminal_name(recv.func)}() with no "
                    "timeout/deadline in scope",)
                findings.append(Finding(
                    path=fn.path, line=node.lineno, col=node.col_offset,
                    code="DOS001",
                    message=(f"peer-driven receive loop in "
                             f"{fn.qualname}() has no timeout, deadline, "
                             "or budget; a slow peer stalls the "
                             "dispatcher indefinitely"),
                    trace=trace, law="DOS_SLOW_READ"))
    if "DOS002" in enabled:
        for key in sorted(project.event_reachable):
            fn = project.functions[key]
            if not fn.name.startswith(_HANDLER_PREFIXES):
                continue
            if _has_len_guard(fn.node) or _has_token(fn.node,
                                                     _BOUND_TOKENS):
                continue
            tainted = _tainted_names(fn.node)
            if not tainted:
                continue
            for node in project._own_nodes(fn.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("append", "appendleft")):
                    continue
                recv = _dotted_name(node.func.value)
                if not recv or not recv.startswith("self."):
                    continue
                feeds = any(isinstance(n, ast.Name) and n.id in tainted
                            for arg in node.args
                            for n in ast.walk(arg))
                if not feeds:
                    continue
                trace = tuple(project.event_reachable[key]) + (
                    f"{fn.path}:{node.lineno}: peer-derived value "
                    f"appended to {recv} with no size guard in "
                    f"{fn.qualname}()",)
                findings.append(Finding(
                    path=fn.path, line=node.lineno, col=node.col_offset,
                    code="DOS002",
                    message=(f"unbounded append to {recv} in "
                             f"event-reachable handler {fn.qualname}(); "
                             "peer input grows instance state with no "
                             "len()/limit guard"),
                    trace=trace, law="DOS_UNBOUNDED_QUEUE"))
    return findings


def check_module_all(ctx: ModuleContext, enabled: Set[str],
                     project=None) -> List[Finding]:
    """Run DET + SIM/CACHE/PROTO002/PERF over one module (PROTO001,
    RES, and DOS are project-level; see :func:`check_window_paths`,
    :func:`repro.lint.typestate.check_lifecycles`, and
    :func:`check_dos_paths`)."""
    visitor = FamilyVisitor(ctx, enabled, project=project)
    visitor.visit(ctx.tree)
    findings = visitor.findings + check_layering(ctx, enabled)
    findings.sort(key=lambda f: f.sort_key())
    return findings

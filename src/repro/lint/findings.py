"""Finding records and the lint report container.

A finding is one rule violation at one source location.  Findings are
plain data so the CLI can render them as text or JSON and tests can
assert on them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Finding:
    """One rule violation (or unused-suppression warning)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {"total": len(self.findings),
                        "by_code": self.by_code()},
        }

"""Finding records and the lint report container.

A finding is one rule violation at one source location.  Findings are
plain data so the CLI can render them as text or JSON and tests can
assert on them structurally.  Interprocedural findings additionally
carry a ``trace`` -- the call chain (file:line hops) along which the
offending value escaped -- and PROTO findings carry the ``law`` they
are the static counterpart of (see docs/INVARIANTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation (or unused-suppression warning)."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Escape path for interprocedural findings: ``file:line: note`` hops
    #: from the origin of the value/call to the flagged site.
    trace: Tuple[str, ...] = ()
    #: docs/INVARIANTS.md law this finding is the static counterpart of
    #: (PROTO/SIM families; empty for purely static contracts).
    law: str = ""
    #: Machine-applicable repair, when the rule can prove one: an
    #: ``(action, line, code)`` triple, e.g. ``("insert_before", "42",
    #: "self.probe = None")``.  Consumed by :mod:`repro.lint.autofix`.
    fix_hint: Tuple[str, ...] = ()

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path, "line": self.line, "col": self.col,
            "code": self.code, "message": self.message}
        if self.trace:
            payload["trace"] = list(self.trace)
        if self.law:
            payload["law"] = self.law
        if self.fix_hint:
            payload["fix_hint"] = list(self.fix_hint)
        return payload

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.law:
            text += f" [law: {self.law}]"
        for hop in self.trace:
            text += f"\n    via {hop}"
        return text


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    files_checked: int
    #: Findings matched (and silenced) by the committed baseline file.
    baselined: int = 0
    #: Baseline entries that no longer match anything (candidates for
    #: removal from the committed file).
    stale_baseline: int = 0
    #: The stale entries themselves: (path, code, context, count) rows
    #: naming exactly which committed suppressions are dead weight.
    stale_entries: Tuple[Tuple[str, str, str, int], ...] = ()
    #: Finding slots removed from the baseline file by --prune-baseline
    #: this run (0 when pruning was not requested).
    pruned_baseline: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {"total": len(self.findings),
                        "by_code": self.by_code(),
                        "baselined": self.baselined,
                        "stale_baseline": self.stale_baseline,
                        "stale_entries": [list(e) for e
                                          in self.stale_entries],
                        "pruned_baseline": self.pruned_baseline},
        }

"""The machine-checked layer map (docs/ARCHITECTURE.md).

Lower layers must never import higher ones.  The map below is the
single source of truth for DET004; keep it in sync with the diagram in
docs/ARCHITECTURE.md when a new sub-package is added.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Layer names, lowest first.  ``interface`` (the CLI, the package root
#: re-exports and the linter itself) sits above everything and may
#: import freely.
LAYER_ORDER = (
    "substrate",
    "transport",
    "protocols",
    "application",
    "analysis",
    "experiments",
    "interface",
)

#: Longest-prefix map from dotted module name to layer.
PACKAGE_LAYERS = (
    ("repro.simnet", "substrate"),
    ("repro.tcp", "transport"),
    ("repro.tls", "transport"),
    ("repro.http1", "protocols"),
    ("repro.http2", "protocols"),
    ("repro.quic", "protocols"),
    ("repro.browser", "application"),
    ("repro.website", "application"),
    # Attack agents are hostile *clients*: they drive the same
    # transport/protocol stacks the browser does, so they live in the
    # application layer beside it.
    ("repro.attacks", "application"),
    ("repro.core", "analysis"),
    ("repro.analysis", "analysis"),
    ("repro.defenses", "analysis"),
    ("repro.faults", "analysis"),
    ("repro.invariants", "analysis"),
    # The runner substrate (supervised worker pool + sweep ledger)
    # rides in the experiments layer with the grid runner itself; the
    # explicit entries document that they are *not* interface-layer
    # tooling even though the CLI plumbs flags straight into them.
    ("repro.experiments.workers", "experiments"),
    ("repro.experiments.ledger", "experiments"),
    ("repro.experiments", "experiments"),
    # The bench suite is measurement tooling over the whole stack --
    # its workloads drive everything from the simulator heap up to the
    # analyzer's own CFG/dataflow sweep -- so it sits with the CLI and
    # the linter at the top, not with the experiment artefacts.
    ("repro.bench", "interface"),
    # The taint engine is part of the linter; the explicit entry keeps
    # the layer map in lockstep with the module list in docs/LINTING.md
    # (and gives DET004 a longest-prefix anchor if repro.lint ever
    # splits).
    ("repro.lint.taint", "interface"),
    ("repro.lint", "interface"),
    ("repro.cli", "interface"),
    ("repro.__main__", "interface"),
    ("repro", "interface"),
)


def layer_of(module: str) -> Optional[Tuple[str, int]]:
    """Return ``(layer_name, rank)`` for a dotted module name.

    Longest matching prefix wins, so ``repro.simnet.engine`` resolves via
    ``repro.simnet`` before falling back to the ``repro`` root entry.
    Modules outside the map (tests, fixtures, third-party) return None
    and are exempt from DET004.
    """
    best = None
    for prefix, layer in PACKAGE_LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, layer)
    if best is None:
        return None
    layer = best[1]
    return layer, LAYER_ORDER.index(layer)


def resolve_relative(package: str, level: int, target: Optional[str]) -> str:
    """Resolve a ``from . import x``-style import to a dotted name.

    ``package`` is the importing module's containing package (for a
    package ``__init__`` that is the package itself); ``level`` is the
    number of leading dots; ``target`` is the module text after them
    (None for a bare ``from . import x``).
    """
    parts = package.split(".") if package else []
    # One dot means the containing package itself; each further dot
    # climbs one more level.
    drop = level - 1
    base = parts[:len(parts) - drop] if drop <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)

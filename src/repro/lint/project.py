"""Whole-program model: symbol table, call graph, and reachability.

One :class:`Project` is built per lint run from every parsed module.
It powers the interprocedural rules:

* **set-returning summaries** -- which functions return ``set`` /
  ``frozenset`` values, directly or through other helpers, so DET001
  catches a set that escapes a utility and is iterated
  order-sensitively modules away (with the full escape path);
* **event-loop reachability** -- the closure of functions the
  discrete-event loop can enter: callbacks handed to
  ``schedule``/``schedule_at`` plus functions registered on ``on_*`` /
  ``probe`` / ``frame_probe`` hooks.  PERF rules only fire inside it;
* **cell reachability** -- the closure of functions reachable from
  :class:`RunSpec` cell functions (resolved from their
  ``"module:function"`` dotted-path strings), where CACHE rules police
  the content-addressed cache contract;
* **reverse call edges** with file:line call sites, so PROTO001 can
  walk caller chains looking for a flow-control window check.

Call resolution is deliberately simple (stdlib ``ast`` only, no type
inference): plain names resolve through the module's imports and local
definitions, ``self.m()`` resolves within the enclosing class, and any
other ``x.m()`` links to every project function named ``m``
(class-hierarchy analysis by name).  That over-approximates reachability
-- acceptable for PERF/CACHE, which want recall -- while the precise
DET rules only consume the unambiguous summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: (module, qualname) uniquely names a function in the project.
FuncKey = Tuple[str, str]

#: Method names too generic to devirtualize by name: linking every
#: ``x.get()`` to every project method called ``get`` would glue
#: unrelated subsystems together.
_GENERIC_NAMES = frozenset({
    "get", "pop", "add", "append", "remove", "clear", "copy", "update",
    "items", "keys", "values", "join", "split", "sort", "close", "open",
    "read", "write", "run", "next", "send",
})


@dataclass
class FunctionInfo:
    """One function or method, with its call sites."""

    module: str
    qualname: str            # "f", "Cls.m", "f.<locals>.inner"
    name: str                # bare name
    path: str
    lineno: int
    node: ast.AST
    class_name: Optional[str] = None
    parent: Optional[FuncKey] = None      # enclosing function, if nested
    #: Call sites: (candidate callee keys, line number).
    calls: List[Tuple[Tuple[FuncKey, ...], int]] = field(default_factory=list)

    @property
    def key(self) -> FuncKey:
        return (self.module, self.qualname)

    def location(self) -> str:
        return f"{self.path}:{self.lineno}"


@dataclass
class ModuleInfo:
    """Parsed module plus its import-alias table."""

    module: str
    path: str
    tree: ast.Module
    aliases: Dict[str, str]


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """local name -> dotted origin, from every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None)
        return name in ("Set", "FrozenSet", "AbstractSet", "set",
                        "frozenset")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return (text in ("set", "frozenset")
                or text.startswith(("Set[", "FrozenSet[", "set[",
                                    "frozenset[")))
    return False


class Project:
    """Symbol table + call graph over every linted module."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        #: bare name -> every function key with that name.
        self.by_name: Dict[str, List[FuncKey]] = {}
        #: Functions whose callback the event loop may invoke (seeds of
        #: event reachability): passed to schedule/schedule_at, or
        #: registered on an ``on_*``/``probe``/``frame_probe`` hook.
        self._event_seeds: Set[FuncKey] = set()
        #: RunSpec cell functions, from "module:function" spec strings.
        self.cell_functions: Set[FuncKey] = set()

        for info in modules:
            self._index_module(info)
        self._extract_calls_and_seeds()
        self.set_returning: Dict[FuncKey, List[str]] = {}
        self._summarize_set_returns()
        self.event_reachable: Dict[FuncKey, List[str]] = {}
        self._close_reachable(self._event_seeds, self.event_reachable,
                              "event loop enters")
        self.cell_reachable: Dict[FuncKey, List[str]] = {}
        self._close_reachable(self.cell_functions, self.cell_reachable,
                              "cell function")
        # Server dispatch reachability: the closure of functions the
        # frame/packet dispatchers can enter with peer-controlled input
        # (DOS rules fire only inside it).
        dispatch_seeds = {
            key for key, fn in self.functions.items()
            if fn.name.startswith("handle_")
            or fn.name in ("dispatch", "_dispatch")}
        self.dispatch_reachable: Dict[FuncKey, List[str]] = {}
        self._close_reachable(dispatch_seeds, self.dispatch_reachable,
                              "peer-driven dispatch enters")
        self.reverse_calls: Dict[FuncKey, List[Tuple[FuncKey, int]]] = {}
        for key, info in self.functions.items():
            for candidates, lineno in info.calls:
                for callee in candidates:
                    self.reverse_calls.setdefault(callee, []).append(
                        (key, lineno))

    # -- indexing -----------------------------------------------------------

    def _index_module(self, info: ModuleInfo) -> None:
        def visit(node: ast.AST, class_name: Optional[str],
                  prefix: str, parent: Optional[FuncKey]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    qualname = prefix + child.name
                    fn = FunctionInfo(
                        module=info.module, qualname=qualname,
                        name=child.name, path=info.path,
                        lineno=child.lineno, node=child,
                        class_name=class_name, parent=parent)
                    self.functions[fn.key] = fn
                    self.by_name.setdefault(child.name, []).append(fn.key)
                    visit(child, None, qualname + ".<locals>.", fn.key)
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name, prefix + child.name + ".",
                          parent)
                else:
                    visit(child, class_name, prefix, parent)

        visit(info.tree, None, "", None)

    # -- call extraction ----------------------------------------------------

    def _resolve_callable_ref(self, node: ast.AST, info: ModuleInfo,
                              owner: FunctionInfo,
                              ) -> Tuple[FuncKey, ...]:
        """Candidate functions a Name/Attribute reference may denote."""
        if isinstance(node, ast.Name):
            local = self._lookup_local(info, owner, node.id)
            if local:
                return local
            origin = info.aliases.get(node.id)
            if origin:
                imported = self._lookup_imported(origin)
                if imported:
                    return imported
            return ()
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                return ()
            head = dotted.split(".")[0]
            if head == "self" and owner.class_name:
                prefix = owner.class_name + "."
                key = (info.module, prefix + node.attr)
                if key in self.functions:
                    return (key,)
            origin = info.aliases.get(head)
            if origin:
                imported = self._lookup_imported(
                    origin + dotted[len(head):])
                if imported:
                    return imported
            # CHA by name: x.m() may be any project method named m.
            if node.attr in _GENERIC_NAMES or node.attr.startswith("__"):
                return ()
            return tuple(self.by_name.get(node.attr, ()))
        return ()

    def _lookup_local(self, info: ModuleInfo, owner: FunctionInfo,
                      name: str) -> Tuple[FuncKey, ...]:
        """A bare name: sibling nested function, then module-level."""
        scope = owner.qualname
        while True:
            prefix = scope + ".<locals>." if scope else ""
            key = (info.module, prefix + name)
            if key in self.functions:
                return (key,)
            if "." not in scope:
                break
            scope = scope.rsplit(".<locals>.", 1)[0]
            if ".<locals>." not in scope and "." in scope:
                scope = ""  # class methods do not nest further
        for qual in (name, ):
            key = (info.module, qual)
            if key in self.functions:
                return (key,)
        return ()

    def _lookup_imported(self, dotted: str) -> Tuple[FuncKey, ...]:
        """``pkg.mod.fn`` or ``pkg.mod.Cls.m`` -> project key."""
        for split in range(len(dotted.split(".")), 0, -1):
            parts = dotted.split(".")
            module, qual = ".".join(parts[:split]), ".".join(parts[split:])
            if module in self.modules and qual:
                key = (module, qual)
                if key in self.functions:
                    return (key,)
        return ()

    def _extract_calls_and_seeds(self) -> None:
        for key, fn in self.functions.items():
            info = self.modules[fn.module]
            for node in self._own_nodes(fn.node):
                if isinstance(node, ast.Call):
                    self._record_call(node, info, fn)
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    self._record_hook_assignment(node, info, fn)
                elif isinstance(node, ast.Return) and node.value is not None:
                    # A returned closure escapes its parent (the
                    # monitors' probe-factory pattern).
                    for ref in self._resolve_callable_ref(node.value, info,
                                                          fn):
                        if self.functions[ref].parent == key:
                            self._event_seeds.add(ref)
        # Module-level cell-spec strings (CELL = "pkg.mod:fn" tables,
        # RunSpec.make calls outside any function).
        for minfo in self.modules.values():
            for node in ast.walk(minfo.tree):
                if isinstance(node, ast.Call):
                    self._record_cell_spec(node, minfo)

    @staticmethod
    def _own_nodes(func_node: ast.AST):
        """Walk a function's body without descending into nested defs."""
        stack = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _record_call(self, node: ast.Call, info: ModuleInfo,
                     fn: FunctionInfo) -> None:
        candidates = self._resolve_callable_ref(node.func, info, fn)
        if candidates:
            fn.calls.append((candidates, node.lineno))
        terminal = (node.func.attr if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name)
                    else None)
        if terminal in ("schedule", "schedule_at"):
            # schedule(delay, callback, *args) / schedule_at(when, cb, ...)
            for arg in node.args[1:2]:
                for ref in self._resolve_callable_ref(arg, info, fn):
                    self._event_seeds.add(ref)
        elif terminal == "listen":
            # Accept callbacks are registered positionally and invoked
            # by the stack on inbound connections: TcpStack.listen(port,
            # on_accept) / QuicEndpoint.listen(on_accept).  Seed every
            # resolvable argument.
            for arg in node.args:
                for ref in self._resolve_callable_ref(arg, info, fn):
                    self._event_seeds.add(ref)
        for kw in node.keywords:
            if kw.arg and (kw.arg.startswith("on_")
                           or kw.arg in ("probe", "frame_probe",
                                         "callback")):
                for ref in self._resolve_callable_ref(kw.value, info, fn):
                    self._event_seeds.add(ref)
        self._record_cell_spec(node, info)

    def _record_hook_assignment(self, node: ast.AST, info: ModuleInfo,
                                fn: FunctionInfo) -> None:
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        value = node.value
        if value is None:
            return
        hooked = any(isinstance(t, ast.Attribute)
                     and (t.attr.startswith("on_")
                          or t.attr in ("probe", "frame_probe"))
                     for t in targets)
        if hooked:
            for ref in self._resolve_callable_ref(value, info, fn):
                self._event_seeds.add(ref)

    def _record_cell_spec(self, node: ast.Call, info: ModuleInfo) -> None:
        """``RunSpec.make("mod:fn", ...)`` / ``RunSpec(fn="mod:fn")``."""
        terminal = (node.func.attr if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name)
                    else None)
        dotted = _dotted(node.func) or ""
        if not (terminal == "RunSpec"
                or (terminal == "make" and "RunSpec" in dotted)):
            return
        spec_args = list(node.args[:1]) + [kw.value for kw in node.keywords
                                           if kw.arg == "fn"]
        for arg in spec_args:
            text = self._constant_str(arg, info)
            if text and ":" in text:
                module, _, qual = text.partition(":")
                key = (module, qual)
                if key in self.functions:
                    self.cell_functions.add(key)

    def _constant_str(self, node: ast.AST,
                      info: ModuleInfo) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            for stmt in info.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) \
                                and target.id == node.id \
                                and isinstance(stmt.value, ast.Constant) \
                                and isinstance(stmt.value.value, str):
                            return stmt.value.value
        return None

    # -- summaries ----------------------------------------------------------

    def _summarize_set_returns(self) -> None:
        """Fixpoint: functions that return set/frozenset values.

        The value maps each set-returning function to its provenance
        chain -- ``file:line: note`` hops ending at the set's origin.
        """
        local_sets: Dict[FuncKey, List[str]] = {}
        call_returns: Dict[FuncKey, List[Tuple[Tuple[FuncKey, ...],
                                               int]]] = {}
        for key, fn in self.functions.items():
            info = self.modules[fn.module]
            returns = getattr(fn.node, "returns", None)
            if _is_set_annotation(returns):
                local_sets[key] = [f"{fn.location()}: {fn.qualname}() is "
                                   "annotated to return a set"]
                continue
            set_names = self._local_set_names(fn.node)
            for node in self._own_nodes(fn.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                value = node.value
                if self._is_set_literal(value, set_names):
                    local_sets.setdefault(key, [
                        f"{fn.path}:{node.lineno}: {fn.qualname}() "
                        "returns a set built here"])
                elif isinstance(value, ast.Call):
                    candidates = self._resolve_callable_ref(
                        value.func, info, fn)
                    if len(candidates) == 1:
                        call_returns.setdefault(key, []).append(
                            (candidates, node.lineno))
        self.set_returning.update(local_sets)
        changed = True
        while changed:
            changed = False
            for key, sites in call_returns.items():
                if key in self.set_returning:
                    continue
                for candidates, lineno in sites:
                    callee = candidates[0]
                    if callee in self.set_returning:
                        fn = self.functions[key]
                        chain = [f"{fn.path}:{lineno}: {fn.qualname}() "
                                 f"returns "
                                 f"{self.functions[callee].qualname}()"]
                        chain += self.set_returning[callee]
                        self.set_returning[key] = chain
                        changed = True
                        break

    @staticmethod
    def _local_set_names(func_node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in Project._own_nodes(func_node):
            if isinstance(node, ast.Assign):
                if Project._is_set_literal(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and _is_set_annotation(node.annotation):
                names.add(node.target.id)
        return names

    @staticmethod
    def _is_set_literal(node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (Project._is_set_literal(node.left, set_names)
                    or Project._is_set_literal(node.right, set_names))
        return False

    # -- reachability -------------------------------------------------------

    def _close_reachable(self, seeds: Set[FuncKey],
                         out: Dict[FuncKey, List[str]],
                         seed_label: str) -> None:
        """BFS closure over call edges, recording one witness path per
        function: ``file:line: note`` hops from a seed to it."""
        frontier: List[FuncKey] = []
        for seed in sorted(seeds):
            fn = self.functions.get(seed)
            if fn is None:
                continue
            out[seed] = [f"{fn.location()}: {seed_label} "
                         f"{fn.qualname}()"]
            frontier.append(seed)
        while frontier:
            key = frontier.pop(0)
            fn = self.functions[key]
            for candidates, lineno in fn.calls:
                for callee in candidates:
                    if callee in out:
                        continue
                    callee_fn = self.functions[callee]
                    out[callee] = out[key] + [
                        f"{fn.path}:{lineno}: {fn.qualname}() calls "
                        f"{callee_fn.qualname}()"]
                    frontier.append(callee)
            # A nested closure runs when its parent runs.
            for other_key, other in self.functions.items():
                if other.parent == key and other_key not in out:
                    out[other_key] = out[key] + [
                        f"{other.location()}: {other.qualname} is "
                        f"defined inside {fn.qualname}()"]
                    frontier.append(other_key)

    # -- lookups used by the rules ------------------------------------------

    def set_call_chain(self, node: ast.Call, module: str,
                       owner_qualname: str) -> Optional[List[str]]:
        """If ``node`` calls a set-returning function, its provenance."""
        info = self.modules.get(module)
        if info is None:
            return None
        owner = self._owner_for(module, owner_qualname)
        candidates = self._resolve_callable_ref(node.func, info, owner)
        if len(candidates) == 1 and candidates[0] in self.set_returning:
            return list(self.set_returning[candidates[0]])
        return None

    def _owner_for(self, module: str, qualname: str) -> FunctionInfo:
        key = (module, qualname)
        if key in self.functions:
            return self.functions[key]
        info = self.modules[module]
        class_name = None
        if "." in qualname:
            head = qualname.split(".")[0]
            class_name = head or None
        return FunctionInfo(module=module, qualname=qualname,
                            name=qualname.split(".")[-1], path=info.path,
                            lineno=0, node=info.tree,
                            class_name=class_name)

    def enclosing_function(self, module: str,
                           qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get((module, qualname))

"""The determinism & layering rules (DET001-DET006).

Each rule encodes one clause of the determinism contract in
docs/ARCHITECTURE.md.  The checkers work on the stdlib ``ast`` only --
no third-party dependencies -- and favour precision over recall: a rule
fires when the pattern is structurally recognizable, and every firing
is expected to be either fixed or suppressed with a justification
comment (see docs/LINTING.md).

The DET rules are intraprocedural except where the whole-program
:class:`repro.lint.project.Project` is supplied: then DET001 also
recognizes calls to set-returning helpers anywhere in the project, and
the finding carries the escape path (file:line hops) from the set's
origin to the order-sensitive consumer.  The SIM/CACHE/PROTO/PERF
families (registered here so ``--select``/``--ignore`` know them) live
in :mod:`repro.lint.families`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import layer_of, resolve_relative

#: code -> one-line description (the rule catalogue; mirrored in
#: docs/LINTING.md).
RULES = {
    "DET001": "iteration over a set/frozenset feeds an order-sensitive "
              "consumer (set order varies under hash randomization)",
    "DET002": "wall-clock read inside simulation code (simulated time "
              "must come from Simulator.now)",
    "DET003": "global random state (random.* / numpy.random.*) instead "
              "of a seeded random.Random / default_rng stream",
    "DET004": "layering violation: a lower layer imports a higher one "
              "(see the layer map in docs/ARCHITECTURE.md)",
    "DET005": "mutable class-level/module-level container (state shared "
              "across instances or runs) or mutable default argument",
    "DET006": "==/!= comparison of simulated-time floats (use ordering "
              "or an explicit tolerance)",
    "SIM001": "scheduling into the simulated past: negative delay to "
              "schedule(), or schedule_at(now - x) (the engine raises "
              "CLOCK_BACKWARD at runtime; see docs/INVARIANTS.md)",
    "SIM002": "probe/frame_probe hook invoked without the 'is not None' "
              "guard the zero-overhead contract requires",
    "CACHE001": "environment/filesystem/cwd read reachable from a "
                "RunSpec cell function: breaks the content-addressed "
                "result cache (inputs outside the spec hash)",
    "CACHE002": "mutable module-global captured or mutated in code "
                "reachable from a RunSpec cell function: state leaks "
                "across runs within a worker process",
    "PROTO001": "flow-control window consumed on a path not dominated "
                "by a can_send()/can_send_data() check (static "
                "counterpart of law H2_WINDOW_NEGATIVE)",
    "PROTO002": "DATA/HEADERS frame emission reachable after a "
                "reset/CLOSED state transition on the same stream "
                "(static counterpart of law H2_DATA_ON_RESET_STREAM)",
    "PERF001": "list.pop(0) inside an event-loop-reachable hot path "
               "(O(n) per event; use collections.deque.popleft())",
    "PERF002": "linear 'in' membership test on a list inside an "
               "event-loop-reachable hot path (use a set or dict keys)",
    "RES001": "stream handle opened but not closed/reset on some CFG "
              "path (typestate acquire->use*->release; static law "
              "H2_STREAM_LEAK)",
    "RES002": "flow-control credit consumed but not replenished on an "
              "exception path, in a function that replenishes on the "
              "normal path (static law H2_CREDIT_LEAK)",
    "RES003": "probe/frame_probe hook armed but not disarmed on every "
              "path, in a function that disarms on some path (static "
              "law PROBE_LIFECYCLE; autofix inserts the disarm)",
    "RES004": "runner resource (sweep ledger / worker handle) acquired "
              "but not closed/disposed on some CFG path (static law "
              "WORKER_LEDGER_LIFECYCLE; see docs/RUNNER.md)",
    "DOS001": "peer-driven receive loop with no timeout/deadline/budget "
              "reachable from server dispatch (slow-read DoS shape; "
              "static law DOS_SLOW_READ)",
    "DOS002": "unbounded append of peer-derived input to instance state "
              "in an event-reachable handler (no len()/limit guard; "
              "static law DOS_UNBOUNDED_QUEUE)",
    "DOS003": "deadline-timer handle armed via schedule() but not "
              "cancelled on every path that shows cancel intent "
              "(typestate law TIMER_ARMED_NOT_CANCELLED)",
    "LEAK001": "ground-truth secret (website objects/pages, server-side "
               "HTTP/2 or HPACK state, TLS plaintext) flows into "
               "adversary code other than through the sanctioned "
               "WireView/TcpWireView/RecordInfo surface (interprocedural "
               "taint; static law ADV_INFO_BOUNDARY)",
    "LEAK002": "defense module reads adversary/estimator pipeline output "
               "(no attacker-in-the-loop defenses; static law "
               "DEFENSE_NO_FEEDBACK)",
    "LEAK003": "passive tap (invariants monitor / DoS detector) mutates "
               "simulator or protocol state instead of only observing "
               "(static law TAP_PASSIVITY)",
}

#: Modules allowed to read the wall clock: runner telemetry, the worker
#: supervisor (heartbeat ages, stall deadlines and respawn backoff are
#: real-time concepts), the CLI, and the benchmark measurement harness
#: (all clock reads in the bench layer are confined to
#: repro.bench.measure by construction).
DET002_ALLOWED_MODULES = frozenset({
    "repro.experiments.runner",
    "repro.experiments.workers",
    "repro.cli",
    "repro.__main__",
    "repro.bench.measure",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed", "setstate", "binomialvariate",
})

#: numpy.random names that construct *seeded* generators (fine) rather
#: than touching the hidden global stream (flagged).
_NUMPY_SEEDED_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Builtins whose result does not depend on input order; a set flowing
#: into these is harmless.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "min", "max", "len", "any", "all", "set",
    "frozenset",
})

#: Builtins that materialize their argument's iteration order.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "reversed",
                              "iter", "next"})

#: set methods returning sets (so ``a.union(b)`` is itself set-typed).
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                            "deque", "OrderedDict", "Counter"})

_TIMELIKE_EXACT = frozenset({"now", "when", "time", "deadline"})
_TIMELIKE_SUFFIXES = ("_time", "_at", "_when", "_deadline")


@dataclass
class ModuleContext:
    """Everything the rules need to know about one module."""

    path: str
    module: str          # dotted name, e.g. "repro.simnet.engine"
    package: str         # containing package ("" outside any package)
    tree: ast.Module
    source: str


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        name = _terminal_name(node.value)
        return name in ("Set", "FrozenSet", "AbstractSet", "MutableSet",
                        "set", "frozenset")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return (text in ("set", "frozenset")
                or text.startswith(("Set[", "FrozenSet[", "set[",
                                    "frozenset[")))
    return False


def _is_list_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "list"
    if isinstance(node, ast.Subscript):
        name = _terminal_name(node.value)
        return name in ("List", "MutableSequence", "list")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text == "list" or text.startswith(("List[", "list["))
    return False


def _mutable_container(node: ast.AST):
    """(is_mutable, is_empty) for container displays/constructors."""
    if isinstance(node, ast.List):
        return True, not node.elts
    if isinstance(node, ast.Dict):
        return True, not node.keys
    if isinstance(node, ast.Set):
        return True, False
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        if name in _MUTABLE_CALLS:
            return True, not (node.args or node.keywords)
    return False, False


class _Scope:
    """One lexical scope with its inferred set- and list-typed names."""

    def __init__(self, kind: str):
        self.kind = kind                 # "module" | "function" | "class"
        self.set_names: Set[str] = set()
        self.set_self_attrs: Set[str] = set()   # class scopes only
        self.list_names: Set[str] = set()
        self.list_self_attrs: Set[str] = set()  # class scopes only
        #: name -> escape path for names bound to interprocedural sets.
        self.set_origins: Dict[str, List[str]] = {}


class DeterminismVisitor(ast.NodeVisitor):
    """Single-pass checker for DET001/002/003/005/006.

    With a whole-program ``project``, DET001 additionally treats calls
    to set-returning helpers (anywhere in the project) as set-typed and
    threads the provenance chain into the finding's ``trace``.
    """

    def __init__(self, ctx: ModuleContext, enabled: Set[str],
                 project=None):
        self.ctx = ctx
        self.enabled = enabled
        self.project = project
        self.findings: List[Finding] = []
        self.scopes: List[_Scope] = []
        self._aliases = self._collect_aliases(ctx.tree)
        self._genexp_ok: Set[int] = set()
        self._func_depth = 0
        #: qualname stack mirroring Project's naming ("Cls.m",
        #: "f.<locals>.inner"); empty string at module level.
        self._qual: List[Tuple[str, str]] = []   # (qualname, kind)
        #: id(Call node) -> provenance chain for set-returning calls.
        self._call_traces: Dict[int, List[str]] = {}

    # -- plumbing -----------------------------------------------------------

    def _emit(self, node: ast.AST, code: str, message: str,
              trace: Tuple[str, ...] = (), law: str = "") -> None:
        if code in self.enabled:
            self.findings.append(Finding(
                path=self.ctx.path, line=node.lineno,
                col=node.col_offset, code=code, message=message,
                trace=trace, law=law))

    def _current_qualname(self) -> str:
        return self._qual[-1][0] if self._qual else ""

    def _child_qualname(self, name: str, child_kind: str) -> str:
        if not self._qual:
            return name
        qual, kind = self._qual[-1]
        if kind == "class":
            return f"{qual}.{name}"
        return f"{qual}.<locals>.{name}"

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
        """local name -> dotted origin, from every import in the module."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    def _resolve(self, node: ast.AST) -> Optional[str]:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self._aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    # -- scope handling -----------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        scope = _Scope("module")
        self._infer_set_bindings(node.body, scope)
        self._infer_list_bindings(node.body, scope)
        self.scopes.append(scope)
        self._check_module_level_state(node)
        self.generic_visit(node)
        self.scopes.pop()

    def _visit_function(self, node) -> None:
        self._check_mutable_defaults(node)
        self._qual.append((self._child_qualname(node.name, "function"),
                           "function"))
        scope = _Scope("function")
        for arg in self._all_args(node.args):
            if _is_set_annotation(arg.annotation):
                scope.set_names.add(arg.arg)
            elif _is_list_annotation(arg.annotation):
                scope.list_names.add(arg.arg)
        self._infer_set_bindings(node.body, scope)
        self._infer_list_bindings(node.body, scope)
        self.scopes.append(scope)
        self._func_depth += 1
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function(node)
        self._func_depth -= 1
        self.scopes.pop()
        self._qual.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _enter_function(self, node) -> None:
        """Hook for subclasses (family rules)."""

    def _leave_function(self, node) -> None:
        """Hook for subclasses (family rules)."""

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_mutable_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_class_level_state(node)
        self._qual.append((self._child_qualname(node.name, "class"),
                           "class"))
        scope = _Scope("class")
        self._infer_self_attrs(node, scope)
        self.scopes.append(scope)
        self.generic_visit(node)
        self.scopes.pop()
        self._qual.pop()

    @staticmethod
    def _all_args(args: ast.arguments):
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        return every

    def _infer_set_bindings(self, body, scope: _Scope) -> None:
        """Names assigned set-typed values anywhere in this scope's body
        (in source order, without descending into nested scopes)."""
        for stmt in self._scope_nodes(body):
            if isinstance(stmt, ast.Assign):
                if self._is_set_expr(stmt.value, scope):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            scope.set_names.add(target.id)
                            self._record_origin(scope, target.id,
                                                stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and (
                        _is_set_annotation(stmt.annotation)
                        or (stmt.value is not None
                            and self._is_set_expr(stmt.value, scope))):
                    scope.set_names.add(stmt.target.id)
                    if stmt.value is not None:
                        self._record_origin(scope, stmt.target.id,
                                            stmt.value, stmt.lineno)

    def _record_origin(self, scope: _Scope, name: str, value: ast.AST,
                       lineno: int) -> None:
        chain = self._call_traces.get(id(value))
        if chain:
            scope.set_origins[name] = chain + [
                f"{self.ctx.path}:{lineno}: bound to '{name}'"]

    def _infer_list_bindings(self, body, scope: _Scope) -> None:
        """Names assigned list-typed values in this scope's body."""
        for stmt in self._scope_nodes(body):
            if isinstance(stmt, ast.Assign):
                if self._is_list_expr(stmt.value, scope):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            scope.list_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) and (
                        _is_list_annotation(stmt.annotation)
                        or (stmt.value is not None
                            and self._is_list_expr(stmt.value, scope))):
                scope.list_names.add(stmt.target.id)

    @classmethod
    def _scope_nodes(cls, body):
        """Yield nodes of one lexical scope in source order, stopping at
        nested function/class/lambda boundaries."""
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            for child in cls._scope_nodes(list(ast.iter_child_nodes(node))):
                yield child

    def _infer_self_attrs(self, node: ast.ClassDef, scope: _Scope) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                is_set = self._is_set_expr(child.value, None)
                is_list = self._is_list_expr(child.value, None)
                if not (is_set or is_list):
                    continue
                for target in child.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        if is_set:
                            scope.set_self_attrs.add(target.attr)
                        else:
                            scope.list_self_attrs.add(target.attr)
            elif isinstance(child, ast.AnnAssign) and child.target is not None:
                target = child.target
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    if _is_set_annotation(child.annotation):
                        scope.set_self_attrs.add(target.attr)
                    elif _is_list_annotation(child.annotation):
                        scope.list_self_attrs.add(target.attr)

    # -- set-type inference -------------------------------------------------

    def _is_set_expr(self, node: ast.AST, scope: Optional[_Scope]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and name in ("set",
                                                            "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and name in _SET_METHODS
                    and self._is_set_expr(node.func.value, scope)):
                return True
            if self.project is not None:
                chain = self.project.set_call_chain(
                    node, self.ctx.module, self._current_qualname())
                if chain:
                    self._call_traces[id(node)] = chain
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return (self._is_set_expr(node.left, scope)
                    or self._is_set_expr(node.right, scope))
        if isinstance(node, ast.Name):
            for frame in reversed(self.scopes if scope is None
                                  else self.scopes + [scope]):
                if frame.kind in ("function", "module") \
                        and node.id in frame.set_names:
                    return True
            return False
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            for frame in reversed(self.scopes):
                if frame.kind == "class":
                    return node.attr in frame.set_self_attrs
            return False
        return False

    def _is_list_expr(self, node: ast.AST, scope: Optional[_Scope]) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return isinstance(node.func, ast.Name) and name in ("list",
                                                                "sorted")
        if isinstance(node, ast.Name):
            for frame in reversed(self.scopes if scope is None
                                  else self.scopes + [scope]):
                if frame.kind in ("function", "module") \
                        and node.id in frame.list_names:
                    return True
            return False
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            for frame in reversed(self.scopes):
                if frame.kind == "class":
                    return node.attr in frame.list_self_attrs
            return False
        return False

    def _set_iter(self, node: ast.AST) -> bool:
        return self._is_set_expr(node, None)

    def _trace_for(self, node: ast.AST) -> Tuple[str, ...]:
        """Escape path for an interprocedural set, if one is known."""
        if isinstance(node, ast.Call):
            chain = self._call_traces.get(id(node))
            if chain:
                return tuple(chain)
        if isinstance(node, ast.Name):
            for frame in reversed(self.scopes):
                if node.id in frame.set_origins:
                    return tuple(frame.set_origins[node.id])
        return ()

    # -- DET001 -------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._set_iter(node.iter):
            self._emit(node.iter, "DET001",
                       "iterating a set: order varies under hash "
                       "randomization; wrap in sorted(...) or keep an "
                       "ordered container",
                       trace=self._trace_for(node.iter))
        self.generic_visit(node)

    def _visit_ordered_comp(self, node) -> None:
        if not (isinstance(node, ast.GeneratorExp)
                and id(node) in self._genexp_ok):
            for gen in node.generators:
                if self._set_iter(gen.iter):
                    self._emit(gen.iter, "DET001",
                               "comprehension iterates a set into an "
                               "ordered result; wrap in sorted(...)",
                               trace=self._trace_for(gen.iter))
        self.generic_visit(node)

    visit_ListComp = _visit_ordered_comp
    visit_DictComp = _visit_ordered_comp
    visit_GeneratorExp = _visit_ordered_comp

    # SetComp: unordered in, unordered out -- exempt by construction.

    # -- calls: DET001 consumers, DET002, DET003 ---------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func_name = _terminal_name(node.func)
        if isinstance(node.func, ast.Name) \
                and func_name in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._genexp_ok.add(id(arg))
        if isinstance(node.func, ast.Name) \
                and func_name in _ORDER_SENSITIVE and node.args:
            if self._set_iter(node.args[0]):
                self._emit(node.args[0], "DET001",
                           f"{func_name}() materializes set iteration "
                           "order; wrap in sorted(...)",
                           trace=self._trace_for(node.args[0]))
        if isinstance(node.func, ast.Attribute) and func_name == "join" \
                and node.args and self._set_iter(node.args[0]):
            self._emit(node.args[0], "DET001",
                       "str.join over a set materializes set iteration "
                       "order; wrap in sorted(...)",
                       trace=self._trace_for(node.args[0]))

        resolved = self._resolve(node.func)
        if resolved:
            self._check_wall_clock(node, resolved)
            self._check_global_random(node, resolved)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALL_CLOCK_CALLS \
                and self.ctx.module not in DET002_ALLOWED_MODULES:
            self._emit(node, "DET002",
                       f"wall-clock read {resolved}() in simulation "
                       "code; simulated time must come from "
                       "Simulator.now")

    def _check_global_random(self, node: ast.Call, resolved: str) -> None:
        head, _, tail = resolved.partition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FUNCS:
            self._emit(node, "DET003",
                       f"global random state ({resolved}); draw from a "
                       "seeded random.Random / named sim stream instead")
        if resolved.startswith("numpy.random."):
            leaf = resolved.split(".")[2]
            if leaf not in _NUMPY_SEEDED_OK:
                self._emit(node, "DET003",
                           f"global numpy random state ({resolved}); "
                           "use numpy.random.default_rng(seed)")

    # -- DET003: import forms ----------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if self._func_depth > 0:
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    self._emit(node, "DET003",
                               "function-level 'import random'; import "
                               "at module level and use a seeded "
                               "random.Random (see website/generator.py)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            bad = sorted(alias.name for alias in node.names
                         if alias.name in _GLOBAL_RANDOM_FUNCS)
            if bad:
                self._emit(node, "DET003",
                           "importing global random state ("
                           + ", ".join(bad)
                           + "); use a seeded random.Random stream")
        if node.level == 0 and node.module == "numpy.random":
            bad = sorted(alias.name for alias in node.names
                         if alias.name not in _NUMPY_SEEDED_OK)
            if bad:
                self._emit(node, "DET003",
                           "importing global numpy random state ("
                           + ", ".join(bad)
                           + "); use numpy.random.default_rng(seed)")
        self.generic_visit(node)

    # -- DET005 -------------------------------------------------------------

    def _check_module_level_state(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            mutable, empty = _mutable_container(value)
            if not mutable:
                continue
            for target in targets:
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue  # __all__ and friends are interpreter protocol
                is_const_table = target.id.isupper() and not empty
                if not is_const_table:
                    self._emit(stmt, "DET005",
                               f"module-level mutable container "
                               f"'{target.id}' is state shared across "
                               "runs; build it per-run or make it an "
                               "immutable constant")

    def _check_class_level_state(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                value, names = stmt.value, [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)]
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                value, names = stmt.value, [stmt.target.id]
            else:
                continue
            mutable, _ = _mutable_container(value)
            if mutable and names:
                self._emit(stmt, "DET005",
                           f"class-level mutable container "
                           f"'{names[0]}' is shared across every "
                           "instance; initialize it in __init__ (or use "
                           "field(default_factory=...))")

    def _check_mutable_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable, _ = _mutable_container(default)
            if mutable:
                self._emit(default, "DET005",
                           "mutable default argument is shared across "
                           "calls; default to None and build inside")

    # -- DET006 -------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if not any(isinstance(o, ast.Constant) and o.value is None
                       for o in operands):
                for operand in operands:
                    name = _terminal_name(operand)
                    if name is not None and self._timelike(name):
                        self._emit(node, "DET006",
                                   f"==/!= on simulated-time value "
                                   f"'{name}'; float clock arithmetic "
                                   "is not exact -- compare with <=/>= "
                                   "or an explicit tolerance")
                        break
        self.generic_visit(node)

    @staticmethod
    def _timelike(name: str) -> bool:
        return (name in _TIMELIKE_EXACT
                or name.endswith(_TIMELIKE_SUFFIXES))


def check_layering(ctx: ModuleContext, enabled: Set[str]) -> List[Finding]:
    """DET004: no import may reach a higher layer than its own module."""
    if "DET004" not in enabled:
        return []
    own = layer_of(ctx.module)
    if own is None:
        return []
    own_layer, own_rank = own
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                targets = [resolve_relative(ctx.package, node.level,
                                            node.module)]
            else:
                targets = [node.module] if node.module else []
        else:
            continue
        for target in targets:
            resolved = layer_of(target)
            if resolved is None:
                continue
            target_layer, target_rank = resolved
            if target_rank > own_rank:
                findings.append(Finding(
                    path=ctx.path, line=node.lineno, col=node.col_offset,
                    code="DET004",
                    message=(f"layer '{own_layer}' ({ctx.module}) must "
                             f"not import layer '{target_layer}' "
                             f"({target}); see the layer map in "
                             "docs/ARCHITECTURE.md")))
    return findings


def check_module(ctx: ModuleContext, enabled: Set[str],
                 project=None) -> List[Finding]:
    """Run every enabled DET rule over one parsed module."""
    visitor = DeterminismVisitor(ctx, enabled, project=project)
    visitor.visit(ctx.tree)
    findings = visitor.findings + check_layering(ctx, enabled)
    findings.sort(key=lambda f: f.sort_key())
    return findings

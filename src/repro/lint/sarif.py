"""SARIF 2.1.0 export (``repro lint --sarif out.sarif``).

One ``run`` per invocation: the tool driver advertises every rule in
the registry (so viewers can show descriptions for clean runs too),
and each finding becomes a ``result`` with a physical location.  The
CFG-path evidence (``trace`` hops, ``file:line: note`` strings) maps
onto a SARIF ``codeFlow`` so IDE SARIF viewers step through the branch
sequence from the acquire/origin to the flagged site.

The output targets the published 2.1.0 schema; the round-trip test
pins the fields CI consumers (GitHub code scanning) require:
``version``, ``$schema``, ``runs[].tool.driver.{name,rules}``,
``runs[].results[].{ruleId,message,locations}``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from repro.lint.findings import Finding, LintReport
from repro.lint.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: ``path:line: note`` -- the shape every trace hop is rendered in.
_HOP = re.compile(r"^(?P<path>.*):(?P<line>\d+): (?P<note>.*)$")


def _artifact_uri(path: str) -> str:
    return path.replace("\\", "/")


def _location(path: str, line: int, col: int,
              message: str = "") -> Dict[str, object]:
    physical: Dict[str, object] = {
        "artifactLocation": {"uri": _artifact_uri(path)},
        "region": {"startLine": max(line, 1),
                   "startColumn": max(col, 0) + 1},
    }
    location: Dict[str, object] = {"physicalLocation": physical}
    if message:
        location["message"] = {"text": message}
    return location


def _code_flow(finding: Finding) -> Dict[str, object]:
    locations: List[Dict[str, object]] = []
    for hop in finding.trace:
        match = _HOP.match(hop)
        if match:
            locations.append({"location": _location(
                match.group("path"), int(match.group("line")), 0,
                match.group("note"))})
        else:
            locations.append({"location": _location(
                finding.path, finding.line, finding.col, hop)})
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding) -> Dict[str, object]:
    text = finding.message
    if finding.law:
        text += f" [law: {finding.law}]"
    result: Dict[str, object] = {
        "ruleId": finding.code,
        "level": "warning" if finding.code.startswith("W") else "error",
        "message": {"text": text},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    if finding.law:
        result["properties"] = {"law": finding.law}
    return result


def _driver_rules(report: LintReport) -> List[Dict[str, object]]:
    codes = dict(RULES)
    for finding in report.findings:
        codes.setdefault(finding.code, "(engine diagnostic)")
    return [{"id": code,
             "shortDescription": {"text": codes[code].split(";")[0]},
             "fullDescription": {"text": codes[code]}}
            for code in sorted(codes)]


def to_sarif(report: LintReport) -> Dict[str, object]:
    """The full SARIF 2.1.0 document for one lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "docs/LINTING.md",
                "rules": _driver_rules(report),
            }},
            "results": [_result(f) for f in report.findings],
            "properties": {
                "filesChecked": report.files_checked,
                "baselined": report.baselined,
                "staleBaseline": report.stale_baseline,
            },
        }],
    }


def write_sarif(path: str, report: LintReport) -> None:
    """Serialize ``to_sarif(report)`` to ``path`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif", "write_sarif"]

"""Inline suppression comments.

A finding on line N is silenced by a trailing comment on that line::

    for path in residue:  # repro-lint: ignore[DET001]

Several codes may be listed (``ignore[DET001,DET005]``).  Every
suppression must pull its weight, *per code*: each listed code that
silences nothing on its line is reported individually (SUP001), so a
multi-code suppression where only one code ever fires still warns about
the others, and stale suppressions cannot accumulate as the code
evolves.  A listed code that is not a rule code at all (a typo, or a
rule that has been removed) is reported as SUP002 -- it would otherwise
stay silent forever, silencing nothing while looking load-bearing.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Code of the unused-suppression warning itself.
UNUSED_CODE = "SUP001"
#: Code of the unknown-rule-code-in-suppression warning.
UNKNOWN_CODE = "SUP002"


def parse_suppressions(source: str) -> Dict[int, List[str]]:
    """Map 1-based line number -> codes suppressed on that line.

    Tokenized rather than line-matched so the marker is only honoured
    in actual comments, never inside string literals or docstrings.
    """
    table: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):
        return table
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = [code.strip().upper() for code in match.group(1).split(",")]
        table[lineno] = [code for code in codes if code]
    return table


def apply_suppressions(findings: List[Finding], source: str, path: str,
                       enabled_codes,
                       known_codes: Optional[frozenset] = None,
                       ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) and report unused entries.

    ``enabled_codes`` is the set of rule codes this run actually checks;
    a suppression for a known-but-deselected rule is not reported as
    unused (the rule simply did not run).  ``known_codes`` is the full
    rule catalogue: a listed code outside it is a typo and reported as
    SUP002 regardless of selection.  The returned *kept* list already
    includes any SUP001/SUP002 warnings, one finding per code.
    """
    if known_codes is None:
        known_codes = frozenset(enabled_codes)
    table = parse_suppressions(source)
    used: Dict[int, set] = {lineno: set() for lineno in table}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        codes = table.get(finding.line, [])
        if finding.code in codes:
            used[finding.line].add(finding.code)
            suppressed.append(finding)
        else:
            kept.append(finding)
    for lineno in sorted(table):
        seen = set()
        for code in table[lineno]:
            if code in seen or code in used[lineno]:
                continue
            seen.add(code)
            if code not in known_codes:
                kept.append(Finding(
                    path=path, line=lineno, col=0, code=UNKNOWN_CODE,
                    message=(f"unknown rule code {code!r} in suppression "
                             "(typo or removed rule; it silences "
                             "nothing)")))
            elif code in enabled_codes:
                kept.append(Finding(
                    path=path, line=lineno, col=0, code=UNUSED_CODE,
                    message=(f"unused suppression for {code} "
                             "(nothing to silence on this line)")))
    return kept, suppressed

"""Inline suppression comments.

A finding on line N is silenced by a trailing comment on that line::

    for path in residue:  # repro-lint: ignore[DET001]

Several codes may be listed (``ignore[DET001,DET005]``).  Every
suppression must pull its weight: a listed code that silences nothing
on its line is itself reported (SUP001), so stale suppressions cannot
accumulate as the code evolves.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Code of the unused-suppression warning itself.
UNUSED_CODE = "SUP001"


def parse_suppressions(source: str) -> Dict[int, List[str]]:
    """Map 1-based line number -> codes suppressed on that line.

    Tokenized rather than line-matched so the marker is only honoured
    in actual comments, never inside string literals or docstrings.
    """
    table: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError):
        return table
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = [code.strip().upper() for code in match.group(1).split(",")]
        table[lineno] = [code for code in codes if code]
    return table


def apply_suppressions(findings: List[Finding], source: str, path: str,
                       enabled_codes) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) and report unused entries.

    ``enabled_codes`` is the set of rule codes this run actually checks;
    a suppression for a deselected rule is not reported as unused (the
    rule simply did not run).  The returned *kept* list already includes
    any SUP001 warnings.
    """
    table = parse_suppressions(source)
    used: Dict[int, set] = {lineno: set() for lineno in table}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        codes = table.get(finding.line, [])
        if finding.code in codes:
            used[finding.line].add(finding.code)
            suppressed.append(finding)
        else:
            kept.append(finding)
    for lineno in sorted(table):
        unused = [code for code in table[lineno]
                  if code not in used[lineno] and code in enabled_codes]
        if unused:
            kept.append(Finding(
                path=path, line=lineno, col=0, code=UNUSED_CODE,
                message=("unused suppression for "
                         + ", ".join(sorted(set(unused)))
                         + " (nothing to silence on this line)")))
    return kept, suppressed

"""Interprocedural taint analysis: the LEAK rule family.

Every number the paper reports is an *inference from ciphertext*: the
adversary pipeline (observe -> deinterleave -> estimate -> predict) may
consume nothing but the sanctioned cleartext surface
(:class:`repro.simnet.packet.WireView` / ``TcpWireView`` /
``RecordInfo`` and the trace records derived from them).  The LEAK
rules enforce that information boundary as a whole-program dataflow
property instead of the brittle token scans that guarded it before:

* **LEAK001** -- a ground-truth secret (website object sizes/bodies,
  page identity, server-side ``Http2Server``/HPACK state, TLS record
  plaintext) flows into adversary code in ``repro.core.*`` other than
  through a sanctioned sanitizer (wire serialization, aggregate-count
  folds).
* **LEAK002** -- a defense module (``repro.defenses.*``) reads
  adversary/estimator pipeline output.  Defenses must be oblivious:
  an attacker-in-the-loop defense invalidates the evaluation.
* **LEAK003** -- a passive tap (the ``invariants`` monitors and the
  DoS detector) mutates simulator or protocol state instead of only
  observing.  Armed and unarmed runs must stay byte-identical.

The flow engine is field-sensitive (``self.census`` and
``self.latency`` are distinct cells; a tainted dataclass taints its
field reads but a clean sibling field stays clean), tracks taint
through containers and comprehensions, and is interprocedural through
call-graph *taint summaries*: for every function reachable from a sink
module the engine records which parameters flow to the return value
and which flow into instance state, so a secret that crosses two
helper calls before being stored is still caught -- and the finding's
``trace`` stitches the caller hops, the call hop and the callee's
internal hops into one ``via`` chain, with the CFG branch decisions
between the source and the sink rendered from the function's
control-flow graph.

Sources, sinks and sanitizers are declarative (:class:`BoundarySpec`),
so the QUIC/H3 parity work can extend the boundary by adding spec rows
rather than new engine code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.cfg import build_cfg
from repro.lint.findings import Finding
from repro.lint.rules import _dotted_name, _terminal_name


@dataclass(frozen=True)
class BoundarySpec:
    """One information boundary: where taint comes from, where it must
    not go, and which folds launder it."""

    code: str
    law: str
    #: What the tainted data is called in messages and trace hops.
    source_label: str
    #: What the protected side is called in messages.
    sink_label: str
    #: Module prefixes whose functions are *sinks*: taint consumed
    #: there (stored into instance state, returned, or handed to a
    #: helper that stores it) is a finding.
    sink_modules: Tuple[str, ...]
    #: Class names whose instances are tainted at construction or when
    #: they appear as parameter annotations.
    source_types: frozenset
    #: Attribute names whose read introduces taint wherever it occurs.
    source_attrs: frozenset
    #: Module prefixes whose imported callables produce tainted values
    #: (ALL_CAPS constants imported from them stay clean).
    source_modules: Tuple[str, ...]
    #: Call names that launder taint: their result is clean no matter
    #: what flowed in (wire serialization, aggregate-count folds).
    sanitizers: frozenset
    #: Also flag the import statement itself when a sink module imports
    #: from a source module (LEAK002's no-attacker-in-the-loop stance).
    flag_imports: bool = False


#: The adversary-side modules of the attack pipeline (docs/DESIGN.md).
ADVERSARY_MODULES = (
    "repro.core.observer", "repro.core.deinterleave",
    "repro.core.estimator", "repro.core.predictor",
    "repro.core.adversary", "repro.core.controller",
    "repro.core.planner", "repro.core.wire",
)

#: Ground-truth carriers: website objects and pages, the server side of
#: the HTTP/2 stack, HPACK codec state, TLS record plaintext and raw
#: TCP payload containers.  The *sanctioned* surface (WireView,
#: TcpWireView, RecordInfo, CompletedRecord, TraceRecorder) is absent
#: from this list by construction.
GROUND_TRUTH_TYPES = frozenset({
    "WebObject", "Site", "RandomSite", "IsideWithSite", "StreamingSite",
    "GeneratedPage", "PageLoadPlan", "PlannedRequest",
    "Http2Server", "ServerConnection", "TxEntry",
    "HpackEncoder", "HpackDecoder",
    "TlsRecord", "TcpSegment", "RecordSlice",
    "Browser", "PageLoadResult",
})

#: Attribute names that only exist on ground-truth carriers: reading
#: one anywhere in adversary code is reading a secret.
GROUND_TRUTH_ATTRS = frozenset({
    "tx_log", "object_ref", "payload", "plaintext", "segment",
    "slices", "body", "objects", "page_objects", "headers",
})

#: Packages whose callables hand out ground truth.
GROUND_TRUTH_MODULES = ("repro.website", "repro.http2.server",
                        "repro.http2.hpack", "repro.browser",
                        "repro.tls.record", "repro.tcp.segment")

#: Folds that cross the boundary legitimately: wire serialization
#: produces the sanctioned cleartext view, and aggregate-count folds
#: (len/sum/count) reduce a secret collection to a size the wire
#: exposes anyway.
LEAK001_SANITIZERS = frozenset({"wire_view", "len", "sum", "count"})

#: Adversary pipeline outputs a defense must never read.
ADVERSARY_OUTPUT_TYPES = frozenset({
    "TrafficMonitor", "SizeEstimator", "ObjectEstimate",
    "ObjectPredictor", "Prediction", "SizeIdentityMap",
    "PartialMultiplexAnalyzer", "PartialMatch",
    "Http2SerializationAttack", "AttackReport", "NetworkController",
    "RequestSighting",
})

ADVERSARY_OUTPUT_ATTRS = frozenset({
    "estimates", "predictions", "census", "attack_report",
})

LEAK_SPECS: Tuple[BoundarySpec, ...] = (
    BoundarySpec(
        code="LEAK001", law="ADV_INFO_BOUNDARY",
        source_label="ground truth", sink_label="adversary state",
        sink_modules=ADVERSARY_MODULES,
        source_types=GROUND_TRUTH_TYPES,
        source_attrs=GROUND_TRUTH_ATTRS,
        source_modules=GROUND_TRUTH_MODULES,
        sanitizers=LEAK001_SANITIZERS),
    BoundarySpec(
        code="LEAK002", law="DEFENSE_NO_FEEDBACK",
        source_label="adversary output", sink_label="defense state",
        sink_modules=("repro.defenses",),
        source_types=ADVERSARY_OUTPUT_TYPES,
        source_attrs=ADVERSARY_OUTPUT_ATTRS,
        source_modules=("repro.core",),
        sanitizers=frozenset(),
        flag_imports=True),
)

#: LEAK003: the passive-tap modules and what passivity forbids.
TAP_MODULES = ("repro.invariants.monitors", "repro.invariants.dos_detector")

#: Arming/disarming a probe hook is the attach contract, not a
#: mutation of the observed system.
ARMING_ATTRS = frozenset({"probe", "frame_probe"})

#: State-changing operations on the simulator/protocol stack a tap must
#: never invoke (observation only; docs/INVARIANTS.md TAP_PASSIVITY).
TAP_MUTATOR_CALLS = frozenset({
    "schedule", "schedule_at", "cancel", "send_frame", "_send_frame",
    "send_data_frame", "consume", "replenish", "set_down", "set_up",
    "deliver", "reset_stream", "goaway", "abort", "push_promise",
    "inject", "transition",
})

#: Container methods that count as a store into the receiver.
_CONTAINER_STORES = frozenset({
    "append", "appendleft", "add", "extend", "insert", "setdefault",
    "update",
})

_MAX_SUMMARY_ROUNDS = 10


def _module_matches(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every identifier mentioned by an annotation, including inside
    ``Optional[...]`` subscripts and string annotations."""
    names: Set[str] = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        token = ""
        for char in node.value:
            if char.isalnum() or char == "_":
                token += char
            else:
                if token:
                    names.add(token)
                token = ""
        if token:
            names.add(token)
        return names
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


class _Flow:
    """Provenance of one tainted value.

    ``origin`` is ``""`` for a real source (a finding when it reaches a
    sink) or a parameter name (a summary entry instead: the caller
    decides whether that parameter was tainted).  ``hops`` are rendered
    ``file:line: note`` strings, source first; ``node`` is the AST node
    where the taint materialized in the current function (None for
    parameter seeds), used to anchor the CFG path evidence.
    """

    __slots__ = ("origin", "hops", "node")

    def __init__(self, origin: str, hops: Tuple[str, ...],
                 node: Optional[ast.AST] = None):
        self.origin = origin
        self.hops = hops
        self.node = node

    def extend(self, hop: str) -> "_Flow":
        return _Flow(self.origin, self.hops + (hop,), self.node)


class _Summary:
    """Taint behaviour of one function, as seen from a call site."""

    __slots__ = ("returns_source", "param_to_return", "param_to_state")

    def __init__(self):
        #: Calling this function yields a tainted value (it reads a
        #: source itself): the hops describing where.
        self.returns_source: Optional[Tuple[str, ...]] = None
        #: param name -> hops: the parameter flows to the return value.
        self.param_to_return: Dict[str, Tuple[str, ...]] = {}
        #: param name -> (line, col, target, hops): the parameter is
        #: stored into instance state at that site.
        self.param_to_state: Dict[str, Tuple[int, int, str,
                                             Tuple[str, ...]]] = {}

    def signature(self) -> Tuple:
        return (self.returns_source,
                tuple(sorted(self.param_to_return)),
                tuple(sorted(self.param_to_state)))


class _FunctionTaint:
    """Field-sensitive intraprocedural pass over one function.

    Two phases: a fixpoint that binds tainted names (order-insensitive,
    first-binding-wins so it terminates), then a reporting pass that
    records sinks -- source-origin flows become findings, param-origin
    flows become summary entries for callers.
    """

    def __init__(self, project, spec: BoundarySpec, fn,
                 summaries: Dict, class_names: frozenset) -> None:
        self.project = project
        self.spec = spec
        self.fn = fn
        self.info = project.modules[fn.module]
        self.summaries = summaries
        self.class_names = class_names
        self.env: Dict[str, _Flow] = {}
        self.summary = _Summary()
        #: (line, col, message, trace) sink records for source flows.
        self.sinks: List[Tuple[int, int, str, Tuple[str, ...]]] = []
        self._cfg = None
        self._stmts: Optional[Dict[int, ast.stmt]] = None
        self._seed_parameters()

    # -- seeding ------------------------------------------------------------

    def _seed_parameters(self) -> None:
        args = self.fn.node.args
        params = list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra)
        for param in params:
            if param.arg in ("self", "cls"):
                continue
            names = _annotation_names(param.annotation)
            typed = sorted(names & self.spec.source_types)
            if not typed:
                for name in sorted(names):
                    origin = self.info.aliases.get(name, "")
                    if origin and _module_matches(
                            origin.rpartition(".")[0],
                            self.spec.source_modules):
                        typed = [name]
                        break
            if typed:
                hop = (f"{self.fn.path}:{param.lineno}: parameter "
                       f"'{param.arg}' of {self.fn.qualname}() is typed "
                       f"{typed[0]} ({self.spec.source_label})")
                self.env[param.arg] = _Flow("", (hop,))
            else:
                self.env[param.arg] = _Flow(param.arg, ())

    # -- environment --------------------------------------------------------

    def _bind(self, name: str, flow: _Flow) -> bool:
        held = self.env.get(name)
        if held is None:
            self.env[name] = flow
            return True
        if held.origin and not flow.origin:
            # A real source supersedes a parameter-relative flow.
            self.env[name] = flow
            return True
        return False

    def _lookup(self, dotted: str) -> Optional[_Flow]:
        """Longest-prefix cell lookup: taint of ``a`` covers ``a.b``,
        but ``self.x`` never covers ``self.y``."""
        if dotted in self.env:
            return self.env[dotted]
        prefix = dotted
        while "." in prefix:
            prefix = prefix.rpartition(".")[0]
            if prefix == "self":
                return None
            if prefix in self.env:
                return self.env[prefix]
        return None

    # -- expression taint ---------------------------------------------------

    def _call_taint(self, node: ast.Call) -> Optional[_Flow]:
        terminal = _terminal_name(node.func)
        if terminal in self.spec.sanitizers:
            return None
        line = node.lineno
        # A method invoked on a tainted object yields tainted data
        # (ground-truth carriers do not launder themselves).
        if isinstance(node.func, ast.Attribute):
            base = self._expr_taint(node.func.value)
            if base is not None:
                return base
        candidates = self.project._resolve_callable_ref(
            node.func, self.info, self.fn)
        if len(candidates) == 1:
            summary = self.summaries.get(candidates[0])
            callee = self.project.functions[candidates[0]]
            if summary is not None:
                if summary.returns_source is not None:
                    hop = (f"{self.fn.path}:{line}: {self.fn.qualname}() "
                           f"calls {callee.qualname}() which returns "
                           f"{self.spec.source_label}")
                    return _Flow("", (hop,) + summary.returns_source, node)
                flow = self._flow_through_params(
                    node, callee, summary.param_to_return)
                if flow is not None:
                    return flow
        if terminal is not None and terminal in self.spec.source_types:
            hop = (f"{self.fn.path}:{line}: constructs {terminal} "
                   f"({self.spec.source_label})")
            return _Flow("", (hop,), node)
        if terminal is not None and terminal in self.class_names:
            # Record construction (dataclasses, wrapper types) carries
            # the taint of its field arguments.
            flow = self._first_taint(
                list(node.args) + [kw.value for kw in node.keywords])
            if flow is not None:
                hop = (f"{self.fn.path}:{line}: wraps the tainted value "
                       f"in {terminal}")
                return flow.extend(hop)
        producer = self._imported_producer(node.func)
        if producer is not None:
            name, origin = producer
            hop = (f"{self.fn.path}:{line}: calls {name}() imported "
                   f"from {origin}")
            return _Flow("", (hop,), node)
        return None

    def _flow_through_params(self, node: ast.Call, callee,
                             table: Dict[str, Tuple[str, ...]],
                             ) -> Optional[_Flow]:
        """Match tainted arguments against a callee's parameter table;
        returns the stitched flow for the first match."""
        for param, arg in self._match_args(node, callee):
            if param not in table:
                continue
            flow = self._expr_taint(arg)
            if flow is None:
                continue
            hop = (f"{self.fn.path}:{node.lineno}: {self.fn.qualname}() "
                   f"passes the tainted value into {callee.qualname}()")
            return _Flow(flow.origin, flow.hops + (hop,) + table[param],
                         flow.node if flow.node is not None else node)
        return None

    def _match_args(self, node: ast.Call, callee):
        """(param name, argument expression) pairs for a call site."""
        args = callee.node.args
        params = [a.arg for a in (list(args.posonlyargs) + list(args.args))]
        if params and params[0] in ("self", "cls") \
                and isinstance(node.func, ast.Attribute):
            params = params[1:]
        pairs = list(zip(params, node.args))
        for kw in node.keywords:
            if kw.arg is not None:
                pairs.append((kw.arg, kw.value))
        return pairs

    def _imported_producer(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """``(name, source module)`` when the callable is imported from
        a source module (ALL_CAPS constants are not producers)."""
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        origin = self.info.aliases.get(head)
        if origin is None:
            return None
        full = origin + dotted[len(head):]
        module = full.rpartition(".")[0]
        name = full.rpartition(".")[2]
        if name.isupper():
            return None
        if _module_matches(module, self.spec.source_modules) \
                or _module_matches(full, self.spec.source_modules):
            return dotted, module
        return None

    def _expr_taint(self, node: Optional[ast.AST]) -> Optional[_Flow]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in self.spec.source_attrs:
                hop = (f"{self.fn.path}:{node.lineno}: reads "
                       f"{self.spec.source_label} attribute "
                       f"'.{node.attr}'")
                return _Flow("", (hop,), node)
            dotted = _dotted_name(node)
            if dotted is not None:
                return self._lookup(dotted)
            return self._expr_taint(node.value)
        if isinstance(node, ast.Subscript):
            return self._expr_taint(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.BinOp):
            return self._expr_taint(node.left) \
                or self._expr_taint(node.right)
        if isinstance(node, ast.BoolOp):
            return self._first_taint(node.values)
        if isinstance(node, ast.Compare):
            return self._first_taint([node.left] + list(node.comparators))
        if isinstance(node, ast.UnaryOp):
            return self._expr_taint(node.operand)
        if isinstance(node, ast.IfExp):
            return self._first_taint([node.body, node.orelse])
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return self._first_taint(node.elts)
        if isinstance(node, ast.Dict):
            return self._first_taint(
                [k for k in node.keys if k is not None] + list(node.values))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._expr_taint(node.elt) or self._first_taint(
                [gen.iter for gen in node.generators])
        if isinstance(node, ast.DictComp):
            return self._first_taint(
                [node.key, node.value]
                + [gen.iter for gen in node.generators])
        if isinstance(node, ast.JoinedStr):
            return self._first_taint(node.values)
        if isinstance(node, ast.FormattedValue):
            return self._expr_taint(node.value)
        if isinstance(node, (ast.Starred, ast.Await, ast.NamedExpr)):
            return self._expr_taint(node.value)
        return None

    def _first_taint(self, nodes) -> Optional[_Flow]:
        for node in nodes:
            flow = self._expr_taint(node)
            if flow is not None:
                return flow
        return None

    # -- fixpoint over bindings ---------------------------------------------

    def _target_cells(self, target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, ast.Attribute):
            dotted = _dotted_name(target)
            return [dotted] if dotted else []
        if isinstance(target, (ast.Tuple, ast.List)):
            cells: List[str] = []
            for element in target.elts:
                cells.extend(self._target_cells(element))
            return cells
        if isinstance(target, ast.Starred):
            return self._target_cells(target.value)
        return []

    def solve(self) -> None:
        nodes = [n for n in self.project._own_nodes(self.fn.node)]
        for _ in range(_MAX_SUMMARY_ROUNDS):
            changed = False
            for node in nodes:
                changed |= self._bind_stmt(node)
            if not changed:
                return

    def _bind_stmt(self, node: ast.AST) -> bool:
        changed = False
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            flow = self._expr_taint(value)
            if flow is None:
                return False
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for cell in self._target_cells(target):
                    hop = (f"{self.fn.path}:{node.lineno}: tainted value "
                           f"flows into {cell}")
                    changed |= self._bind(cell, flow.extend(hop))
                if isinstance(target, ast.Subscript):
                    dotted = _dotted_name(target.value)
                    if dotted is not None:
                        hop = (f"{self.fn.path}:{node.lineno}: tainted "
                               f"value stored into {dotted}[...]")
                        changed |= self._bind(dotted, flow.extend(hop))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            flow = self._expr_taint(node.iter)
            if flow is None:
                return False
            for cell in self._target_cells(node.target):
                hop = (f"{self.fn.path}:{node.lineno}: iterates the "
                       f"tainted collection into {cell}")
                changed |= self._bind(cell, flow.extend(hop))
        elif isinstance(node, ast.NamedExpr):
            flow = self._expr_taint(node.value)
            if flow is not None and isinstance(node.target, ast.Name):
                changed |= self._bind(node.target.id, flow)
        return changed

    # -- reporting ----------------------------------------------------------

    def report(self) -> None:
        in_sink_module = _module_matches(self.fn.module,
                                         self.spec.sink_modules)
        for node in self.project._own_nodes(self.fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._report_store(node, in_sink_module)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._report_return(node, in_sink_module)
            elif isinstance(node, ast.Call):
                self._report_call(node, in_sink_module)

    def _state_target(self, target: ast.AST) -> Optional[str]:
        """The instance-state cell a store mutates, or None."""
        if isinstance(target, ast.Attribute):
            dotted = _dotted_name(target)
            if dotted and dotted.startswith("self."):
                return dotted
        if isinstance(target, ast.Subscript):
            dotted = _dotted_name(target.value)
            if dotted and dotted.startswith("self."):
                return f"{dotted}[...]"
        return None

    def _report_store(self, node, in_sink_module: bool) -> None:
        flow = self._expr_taint(getattr(node, "value", None))
        if flow is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            cell = self._state_target(target)
            if cell is None:
                continue
            self._record_sink(node, flow, cell, in_sink_module)

    def _report_return(self, node: ast.Return,
                       in_sink_module: bool) -> None:
        flow = self._expr_taint(node.value)
        if flow is None:
            return
        if flow.origin:
            self.summary.param_to_return.setdefault(flow.origin, flow.hops)
            return
        if not in_sink_module:
            self.summary.returns_source = self.summary.returns_source \
                or flow.hops
            return
        hop = (f"{self.fn.path}:{node.lineno}: "
               f"{self.spec.source_label} returned from "
               f"{self.fn.qualname}()")
        message = (f"{self.spec.source_label} returned from "
                   f"{self.fn.qualname}(); the sanctioned surface is "
                   "WireView/TcpWireView/RecordInfo"
                   if self.spec.code == "LEAK001" else
                   f"{self.spec.source_label} returned from "
                   f"{self.fn.qualname}(); defenses must not read the "
                   "attack pipeline")
        self.sinks.append((node.lineno, node.col_offset, message,
                           self._trace(flow, node, hop)))

    def _report_call(self, node: ast.Call, in_sink_module: bool) -> None:
        # self.<container>.append(tainted) and friends are stores.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _CONTAINER_STORES:
            receiver = _dotted_name(node.func.value)
            if receiver and receiver.startswith("self."):
                flow = self._first_taint(
                    list(node.args) + [kw.value for kw in node.keywords])
                if flow is not None:
                    self._record_sink(node, flow, receiver,
                                      in_sink_module)
                    return
        # Interprocedural: a tainted argument reaching a callee that
        # stores its parameter into instance state.
        candidates = self.project._resolve_callable_ref(
            node.func, self.info, self.fn)
        if len(candidates) != 1:
            return
        summary = self.summaries.get(candidates[0])
        if summary is None or not summary.param_to_state:
            return
        callee = self.project.functions[candidates[0]]
        for param, arg in self._match_args(node, callee):
            if param not in summary.param_to_state:
                continue
            flow = self._expr_taint(arg)
            if flow is None:
                continue
            line, col, cell, hops = summary.param_to_state[param]
            call_hop = (f"{self.fn.path}:{node.lineno}: "
                        f"{self.fn.qualname}() passes the tainted value "
                        f"into {callee.qualname}()")
            stitched = _Flow(flow.origin, flow.hops + (call_hop,) + hops,
                             flow.node if flow.node is not None else node)
            if stitched.origin:
                self.summary.param_to_state.setdefault(
                    stitched.origin,
                    (node.lineno, node.col_offset, cell, stitched.hops))
            elif in_sink_module:
                message = (f"{self.spec.source_label} flows into "
                           f"{self.sink_cell_label(cell)} via "
                           f"{callee.qualname}()")
                self.sinks.append((node.lineno, node.col_offset, message,
                                   self._trace(stitched, node, None)))

    def sink_cell_label(self, cell: str) -> str:
        return f"{cell} ({self.spec.sink_label})"

    def _record_sink(self, node, flow: _Flow, cell: str,
                     in_sink_module: bool) -> None:
        hop = (f"{self.fn.path}:{node.lineno}: "
               f"{self.spec.source_label} flows into "
               f"{self.sink_cell_label(cell)}")
        if flow.origin:
            self.summary.param_to_state.setdefault(
                flow.origin, (node.lineno, node.col_offset, cell,
                              flow.hops + (hop,)))
            return
        if not in_sink_module:
            return
        message = (f"{self.spec.source_label} flows into {cell} in "
                   f"{self.fn.qualname}(); the sanctioned surface is "
                   "WireView/TcpWireView/RecordInfo"
                   if self.spec.code == "LEAK001" else
                   f"{self.spec.source_label} flows into {cell} in "
                   f"{self.fn.qualname}(); defenses must not read the "
                   "attack pipeline")
        self.sinks.append((node.lineno, node.col_offset, message,
                           self._trace(flow, node, hop)))

    # -- CFG path evidence ---------------------------------------------------

    def _trace(self, flow: _Flow, sink_node: ast.AST,
               sink_hop: Optional[str]) -> Tuple[str, ...]:
        branch_hops = self._branch_hops(flow.node, sink_node)
        trace = flow.hops + branch_hops
        if sink_hop is not None:
            trace = trace + (sink_hop,)
        return trace

    def _block_of(self, node: ast.AST) -> Optional[int]:
        """The CFG block of the innermost statement enclosing ``node``
        (``block_of_node`` would match the whole enclosing ``if``/loop
        statement in its test block, losing the branch edges)."""
        if self._stmts is None:
            table: Dict[int, ast.stmt] = {}

            def visit(parent: ast.AST, stmt: Optional[ast.stmt]) -> None:
                for child in ast.iter_child_nodes(parent):
                    inner = child if isinstance(child, ast.stmt) else stmt
                    if inner is not None:
                        table[id(child)] = inner
                    visit(child, inner)

            visit(self.fn.node, None)
            self._stmts = table
        stmt = self._stmts.get(id(node))
        if stmt is None:
            return None
        return self._cfg.block_of_stmt(stmt)

    def _branch_hops(self, source_node: Optional[ast.AST],
                     sink_node: ast.AST) -> Tuple[str, ...]:
        if self._cfg is None:
            self._cfg = build_cfg(self.fn.node)
        cfg = self._cfg
        sink_block = self._block_of(sink_node)
        if sink_block is None:
            return ()
        sources = None
        if source_node is not None:
            source_block = self._block_of(source_node)
            if source_block is not None:
                sources = [source_block]
        edges = cfg.path_edges(sink_block, sources=sources)
        if not edges:
            return ()
        return cfg.describe_path(self.fn.path, edges)


# -- whole-program driver ----------------------------------------------------


def _project_class_names(project) -> frozenset:
    """Every class name defined anywhere in the project: constructing
    one of these with a tainted argument wraps (not launders) the
    taint."""
    names = set()
    for module in sorted(project.modules):
        for node in ast.walk(project.modules[module].tree):
            if isinstance(node, ast.ClassDef):
                names.add(node.name)
    return frozenset(names)


def _sink_functions(project, spec: BoundarySpec) -> List:
    return sorted(key for key, fn in project.functions.items()
                  if _module_matches(fn.module, spec.sink_modules))


def _relevant_functions(project, seeds: Sequence) -> List:
    """Sink functions plus everything they can (transitively) call:
    the set summaries must cover."""
    reached = set(seeds)
    frontier = list(seeds)
    while frontier:
        key = frontier.pop()
        for candidates, _ in project.functions[key].calls:
            for callee in candidates:
                if callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
    return sorted(reached)


def _run_flow_spec(project, spec: BoundarySpec) -> List[Finding]:
    findings: List[Finding] = []
    sinks = _sink_functions(project, spec)
    if not sinks:
        return findings
    if spec.flag_imports:
        findings.extend(_import_findings(project, spec))
    relevant = _relevant_functions(project, sinks)
    class_names = _project_class_names(project)
    summaries: Dict = {key: _Summary() for key in relevant}
    analyses: Dict = {}
    for _ in range(_MAX_SUMMARY_ROUNDS):
        signature = tuple(summaries[key].signature() for key in relevant)
        for key in relevant:
            analysis = _FunctionTaint(project, spec,
                                      project.functions[key], summaries,
                                      class_names)
            analysis.solve()
            analysis.report()
            summaries[key] = analysis.summary
            analyses[key] = analysis
        if tuple(summaries[key].signature() for key in relevant) \
                == signature:
            break
    seen: Set[Tuple] = set()
    for key in sinks:
        analysis = analyses[key]
        fn = project.functions[key]
        for line, col, message, trace in analysis.sinks:
            marker = (fn.path, line, col, message)
            if marker in seen:
                continue
            seen.add(marker)
            findings.append(Finding(
                path=fn.path, line=line, col=col, code=spec.code,
                message=message, trace=trace, law=spec.law))
    return findings


def _import_findings(project, spec: BoundarySpec) -> List[Finding]:
    """Sink modules must not even import from source modules."""
    findings: List[Finding] = []
    for module in sorted(project.modules):
        if not _module_matches(module, spec.sink_modules):
            continue
        info = project.modules[module]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0 \
                    and _module_matches(node.module, spec.source_modules):
                names = ", ".join(alias.name for alias in node.names)
                findings.append(Finding(
                    path=info.path, line=node.lineno,
                    col=node.col_offset, code=spec.code,
                    message=(f"defense module imports {names} from "
                             f"{node.module}; defenses must not read "
                             "the attack pipeline"),
                    law=spec.law))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if _module_matches(alias.name, spec.source_modules):
                        findings.append(Finding(
                            path=info.path, line=node.lineno,
                            col=node.col_offset, code=spec.code,
                            message=(f"defense module imports "
                                     f"{alias.name}; defenses must not "
                                     "read the attack pipeline"),
                            law=spec.law))
    return findings


# -- LEAK003: passive taps must not mutate ----------------------------------


def _owned_locals(project, fn, own_types: Set[str]) -> Set[str]:
    """Names bound to objects the tap itself owns: values it created
    (constructor calls, fresh literals) and parameters annotated with a
    record type the tap module defines (its own bookkeeping, e.g. the
    DoS detector's ``_ConnTrack``).  Mutating those is bookkeeping, not
    a mutation of the observed system."""
    owned: Set[str] = set()
    for node in project._own_nodes(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        if isinstance(node.value, (ast.Call, ast.List, ast.Dict, ast.Set,
                                   ast.Tuple, ast.ListComp, ast.DictComp,
                                   ast.SetComp)):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    owned.add(target.id)
    args = fn.node.args
    for param in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
        if _annotation_names(param.annotation) & own_types:
            owned.add(param.arg)
    return owned


def _foreign_root(dotted: Optional[str], owned: Set[str]) -> bool:
    if dotted is None:
        return True
    root = dotted.split(".")[0]
    return root != "self" and root not in owned


def _check_tap_passivity(project) -> List[Finding]:
    findings: List[Finding] = []
    keys = sorted(key for key, fn in project.functions.items()
                  if _module_matches(fn.module, TAP_MODULES))
    own_types: Dict[str, Set[str]] = {}
    for key in keys:
        fn = project.functions[key]
        if fn.module not in own_types:
            tree = project.modules[fn.module].tree
            own_types[fn.module] = {
                node.name for node in ast.walk(tree)
                if isinstance(node, ast.ClassDef)}
        owned = _owned_locals(project, fn, own_types[fn.module])
        trace = tuple(project.event_reachable.get(key, ()))
        for node in project._own_nodes(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    finding = _tap_store_finding(fn, node, target, owned,
                                                 trace)
                    if finding is not None:
                        findings.append(finding)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    finding = _tap_store_finding(fn, node, target, owned,
                                                 trace, deleting=True)
                    if finding is not None:
                        findings.append(finding)
            elif isinstance(node, ast.Call):
                terminal = _terminal_name(node.func)
                if terminal in TAP_MUTATOR_CALLS:
                    findings.append(Finding(
                        path=fn.path, line=node.lineno,
                        col=node.col_offset, code="LEAK003",
                        message=(f"passive tap {fn.qualname}() invokes "
                                 f"state-changing {terminal}(); monitors "
                                 "and detectors must only observe"),
                        trace=trace, law="TAP_PASSIVITY"))
    return findings


def _tap_store_finding(fn, node, target: ast.AST, owned: Set[str],
                       trace: Tuple[str, ...],
                       deleting: bool = False) -> Optional[Finding]:
    if isinstance(target, ast.Attribute):
        if target.attr in ARMING_ATTRS or target.attr.startswith("on_"):
            return None  # arming/disarming a hook is the attach contract
        if isinstance(target.value, ast.Name) \
                and (target.value.id == "self"
                     or target.value.id in owned):
            return None
        dotted = _dotted_name(target) or f"<expr>.{target.attr}"
        verb = "deletes" if deleting else "assigns"
        return Finding(
            path=fn.path, line=node.lineno, col=node.col_offset,
            code="LEAK003",
            message=(f"passive tap {fn.qualname}() {verb} foreign "
                     f"state {dotted}; monitors and detectors must "
                     "only observe"),
            trace=trace, law="TAP_PASSIVITY")
    if isinstance(target, ast.Subscript):
        dotted = _dotted_name(target.value)
        if not _foreign_root(dotted, owned):
            return None
        if dotted is None:
            return None
        verb = "deletes from" if deleting else "stores into"
        return Finding(
            path=fn.path, line=node.lineno, col=node.col_offset,
            code="LEAK003",
            message=(f"passive tap {fn.qualname}() {verb} foreign "
                     f"container {dotted}[...]; monitors and detectors "
                     "must only observe"),
            trace=trace, law="TAP_PASSIVITY")
    return None


def check_taint(project, enabled: Set[str]) -> List[Finding]:
    """The LEAK family: interprocedural information-boundary taint
    pass (LEAK001/LEAK002) plus the tap-passivity effect check
    (LEAK003).  See docs/LINTING.md for the source/sink/sanitizer
    tables."""
    findings: List[Finding] = []
    if project is None:
        return findings
    for spec in LEAK_SPECS:
        if spec.code in enabled:
            findings.extend(_run_flow_spec(project, spec))
    if "LEAK003" in enabled:
        findings.extend(_check_tap_passivity(project))
    return findings


__all__ = ["ADVERSARY_MODULES", "BoundarySpec", "GROUND_TRUTH_ATTRS",
           "GROUND_TRUTH_TYPES", "LEAK_SPECS", "TAP_MODULES",
           "check_taint"]

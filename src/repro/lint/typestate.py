"""Typestate: declarative resource lifecycles checked over CFG paths.

A lifecycle is ``acquire -> use* -> release`` with explicit error-path
edges: the rule proves that once a resource is acquired, **every** CFG
path to a function exit passes a release site.  Three lifecycles ship:

* **RES001** (``H2_STREAM_LEAK``): an HTTP/2-style stream handle bound
  by an ``open_stream()``/``accept_stream()`` call must be closed or
  reset on all paths.  A leaked stream counts against
  ``max_concurrent_streams`` forever -- exactly the slot-exhaustion
  shape slow-DoS attacks park on.
* **RES002** (``H2_CREDIT_LEAK``): flow-control credit taken with
  ``window.consume()`` must be replenished on *exception* paths when
  the function replenishes on the normal path (``error_paths_only``:
  permanent consumes, where credit legally returns via the peer's
  WINDOW_UPDATE, never show a replenish and are not flagged).
* **RES003** (``PROBE_LIFECYCLE``): a ``probe``/``frame_probe`` hook
  armed by a function that also disarms (assigns ``None``) must disarm
  on every path; the autofix inserts the missing disarm before the
  leaking ``return``.
* **RES004** (``WORKER_LEDGER_LIFECYCLE``): a runner-substrate handle
  bound by ``SweepLedger(...)``/``open_ledger(...)`` (or a worker
  spawned with ``spawn_worker(...)``) must be closed / disposed on all
  paths -- an unclosed ledger can lose the final fsync'd entries a
  resume depends on, and an undisposed worker is an orphan process.
* **DOS003** (``TIMER_ARMED_NOT_CANCELLED``): a deadline-timer handle
  bound by a ``schedule()``/``schedule_at()`` call (a target whose
  name mentions ``timer`` or ``deadline``) must be cancelled --
  ``handle.cancel()`` or ``handle = None`` -- on every path that shows
  cancel intent.  Release sites *before* the arm do not count
  (``release_after_acquire``): the cancel-then-rearm idiom cancels the
  previous handle, so a function that only ever re-arms is an
  arm-forever design, not a leak.

Gating -- the analysis only fires when the function *shows release
intent* (contains at least one release site for the same resource).
Arm-forever and consume-forever designs (MonitorSuite.attach,
send_data_frame) are legitimate ownership transfers, not leaks.  A
resource that escapes the function (returned, stored on an object,
passed to an unknown callee) is treated as transferred and skipped.

Interprocedural release: a helper that releases one of its parameters
(directly or by forwarding to another releasing helper -- a fixpoint
over the project call graph, same shape as the set-returning summary)
counts as a release site at its call sites, so ``self._teardown(s)``
on one branch does not silence a leak on the other.

Evidence: each finding's trace is the concrete branch sequence from
the acquire to the leaking exit (``via file:line: branch ... is taken``
hops), rendered from the CFG edge path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.cfg import (CFG, Edge, build_cfg, header_nodes,
                            header_walk, may_raise)
from repro.lint.findings import Finding
from repro.lint.rules import _dotted_name

#: Terminal call names that bind a fresh stream-like resource.
_STREAM_OPEN_NAMES = frozenset({
    "open_stream", "open_push_stream", "accept_stream", "create_stream",
    "open_bidi_stream", "open_uni_stream",
})

#: Method names that retire a stream-like resource.
_STREAM_RELEASE_NAMES = frozenset({
    "close", "reset", "abort", "rst", "release", "finish",
    "on_send_rst", "on_recv_rst",
})

#: Window-credit release method names (RES002).
_CREDIT_RELEASE_NAMES = frozenset({"replenish", "release", "refund"})

#: Constructor/factory names that bind a runner-substrate handle
#: (RES004): the sweep ledger and supervised worker handles.
_RUNNER_OPEN_NAMES = frozenset({
    "SweepLedger", "open_ledger", "spawn_worker",
})

#: Method names that retire a runner-substrate handle.
_RUNNER_RELEASE_NAMES = frozenset({
    "close", "shutdown", "stop", "dispose", "terminate",
})

#: Call names that arm a simulator timer (DOS003); the binding target
#: must look like a timer handle (see ``_TIMER_TARGET_WORDS``).
_TIMER_ARM_NAMES = frozenset({"schedule", "schedule_at"})

#: Substrings that mark an assignment target as a timer handle.
_TIMER_TARGET_WORDS = ("timer", "deadline")

#: Edge kinds that represent exceptional control transfer.
_EXCEPTIONAL_KINDS = frozenset({"except", "raise"})


@dataclass(frozen=True)
class Lifecycle:
    """One declarative acquire/release state machine."""

    code: str
    law: str
    noun: str
    error_paths_only: bool = False
    fixable: bool = False
    #: Only release sites *after* the acquire show release intent
    #: (cancel-then-rearm idioms cancel the *previous* handle, not
    #: this one).
    release_after_acquire: bool = False


LIFECYCLES: Tuple[Lifecycle, ...] = (
    Lifecycle(code="RES001", law="H2_STREAM_LEAK",
              noun="stream handle"),
    Lifecycle(code="RES002", law="H2_CREDIT_LEAK",
              noun="flow-control credit", error_paths_only=True),
    Lifecycle(code="RES003", law="PROBE_LIFECYCLE",
              noun="probe hook", fixable=True),
    Lifecycle(code="RES004", law="WORKER_LEDGER_LIFECYCLE",
              noun="runner handle"),
    Lifecycle(code="DOS003", law="TIMER_ARMED_NOT_CANCELLED",
              noun="deadline timer", release_after_acquire=True),
)


@dataclass(frozen=True)
class _Acquire:
    """One acquire site inside a function."""

    lifecycle: Lifecycle
    resource: str            # name ("stream") or dotted ("self.sim.probe")
    stmt: ast.stmt
    lineno: int
    col: int


def _terminal(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# Canonical header helpers live next to the CFG builder.
_header_nodes = header_nodes
_header_walk = header_walk


def _mentions_name(stmt: ast.stmt, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in _header_walk(stmt))


# -- interprocedural release summary ----------------------------------------

def releasing_params(project) -> Dict[Tuple[str, str], Set[int]]:
    """FuncKey -> parameter indices the function releases, directly or
    by forwarding to another releasing helper (fixpoint)."""
    if project is None:
        return {}
    releasing: Dict[Tuple[str, str], Set[int]] = {}
    forwards: Dict[Tuple[str, str],
                   List[Tuple[int, Tuple[str, str], int]]] = {}
    params_of: Dict[Tuple[str, str], List[str]] = {}
    for key, fn in project.functions.items():
        args = fn.node.args
        names = [a.arg for a in (args.posonlyargs + args.args)]
        params_of[key] = names
        info = project.modules[fn.module]
        for node in project._own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _STREAM_RELEASE_NAMES \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in names:
                releasing.setdefault(key, set()).add(
                    names.index(node.func.value.id))
                continue
            candidates = project._resolve_callable_ref(node.func, info, fn)
            if len(candidates) != 1:
                continue
            callee = candidates[0]
            offset = _self_offset(project, callee, node)
            for pos, arg in enumerate(node.args):
                if isinstance(arg, ast.Name) and arg.id in names:
                    forwards.setdefault(key, []).append(
                        (names.index(arg.id), callee, pos + offset))
    changed = True
    while changed:
        changed = False
        for key, hops in forwards.items():
            for my_index, callee, callee_index in hops:
                if callee_index in releasing.get(callee, set()) \
                        and my_index not in releasing.get(key, set()):
                    releasing.setdefault(key, set()).add(my_index)
                    changed = True
    return releasing


def _self_offset(project, callee, call: ast.Call) -> int:
    """1 when the callee's first parameter is a bound ``self``."""
    fn = project.functions.get(callee)
    if fn is None or not isinstance(call.func, ast.Attribute):
        return 0
    args = fn.node.args
    names = [a.arg for a in (args.posonlyargs + args.args)]
    return 1 if names[:1] == ["self"] else 0


# -- per-function site collection -------------------------------------------

def _collect_acquires(fn_node) -> List[_Acquire]:
    """Acquire sites for every lifecycle, scanning block headers only
    (nested defs are opaque)."""
    acquires: List[_Acquire] = []
    for stmt in _own_statements(fn_node):
        for node in _header_walk(stmt):
            if isinstance(node, ast.Call):
                name = _terminal(node.func)
                if name in _STREAM_OPEN_NAMES and isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            acquires.append(_Acquire(
                                LIFECYCLES[0], target.id, stmt,
                                stmt.lineno, stmt.col_offset))
                elif name in _RUNNER_OPEN_NAMES \
                        and isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            acquires.append(_Acquire(
                                LIFECYCLES[3], target.id, stmt,
                                stmt.lineno, stmt.col_offset))
                elif name in _TIMER_ARM_NAMES \
                        and isinstance(stmt, ast.Assign) \
                        and node is stmt.value:
                    for target in stmt.targets:
                        dotted = (_dotted_name(target)
                                  if isinstance(target, ast.Attribute)
                                  else target.id
                                  if isinstance(target, ast.Name) else None)
                        if dotted is None:
                            continue
                        last = dotted.rsplit(".", 1)[-1].lower()
                        if any(word in last
                               for word in _TIMER_TARGET_WORDS):
                            acquires.append(_Acquire(
                                LIFECYCLES[4], dotted, stmt,
                                stmt.lineno, stmt.col_offset))
                elif name == "consume" \
                        and isinstance(node.func, ast.Attribute):
                    recv = _dotted_name(node.func.value)
                    if recv and "window" in recv.lower():
                        acquires.append(_Acquire(
                            LIFECYCLES[1], recv, stmt,
                            node.lineno, node.col_offset))
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Attribute) \
                    and target.attr in ("probe", "frame_probe") \
                    and not (isinstance(stmt.value, ast.Constant)
                             and stmt.value.value is None):
                dotted = _dotted_name(target)
                if dotted:
                    acquires.append(_Acquire(
                        LIFECYCLES[2], dotted, stmt,
                        stmt.lineno, stmt.col_offset))
    return acquires


def _own_statements(fn_node) -> Iterable[ast.stmt]:
    stack: List[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.stmt):
            yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt) or not isinstance(child,
                                                             ast.expr):
                stack.append(child)


class _ResourceModel:
    """Classifies statements as release / escape for one acquire."""

    def __init__(self, acquire: _Acquire, project, fn, releasing):
        self.acquire = acquire
        self.project = project
        self.fn = fn
        self.releasing = releasing

    def releases(self, stmt: ast.stmt) -> bool:
        acq = self.acquire
        for node in _header_walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if acq.lifecycle.code == "RES001":
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _STREAM_RELEASE_NAMES \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == acq.resource:
                    return True
                if self._releasing_call(node):
                    return True
            elif acq.lifecycle.code == "RES004":
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _RUNNER_RELEASE_NAMES \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == acq.resource:
                    return True
                if self._releasing_call(node):
                    return True
            elif acq.lifecycle.code == "RES002":
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _CREDIT_RELEASE_NAMES:
                    recv = _dotted_name(node.func.value)
                    if recv and (recv == acq.resource
                                 or "window" in recv.lower()):
                        return True
            elif acq.lifecycle.code == "DOS003":
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "cancel" \
                        and _dotted_name(node.func.value) == acq.resource:
                    return True
        if self.acquire.lifecycle.code in ("RES003", "DOS003") \
                and isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Name)) \
                        and _dotted_name(target) == acq.resource \
                        and isinstance(stmt.value, ast.Constant) \
                        and stmt.value.value is None:
                    return True
        return False

    def _releasing_call(self, node: ast.Call) -> bool:
        """``self._teardown(stream)`` where the helper releases that
        parameter (interprocedural summary)."""
        if self.project is None or self.fn is None:
            return False
        info = self.project.modules.get(self.fn.module)
        if info is None:
            return False
        candidates = self.project._resolve_callable_ref(
            node.func, info, self.fn)
        if len(candidates) != 1:
            return False
        callee = candidates[0]
        released = self.releasing.get(callee, set())
        if not released:
            return False
        offset = _self_offset(self.project, callee, node)
        for pos, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) \
                    and arg.id == self.acquire.resource \
                    and pos + offset in released:
                return True
        return False

    def escapes(self, stmt: ast.stmt) -> bool:
        """Ownership leaves the function: returned, stored, aliased, or
        passed to a callee not known to release it."""
        acq = self.acquire
        if acq.lifecycle.code not in ("RES001", "RES004"):
            return False
        name = acq.resource
        if isinstance(stmt, ast.Return):
            return stmt.value is not None and _mentions_name(stmt, name)
        if isinstance(stmt, ast.Assign) and stmt.value is not None \
                and any(isinstance(n, ast.Name) and n.id == name
                        and isinstance(n.ctx, ast.Load)
                        for n in ast.walk(stmt.value)):
            if stmt is not acq.stmt:
                return True
        for node in _header_walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)) \
                    and node.value is not None \
                    and any(isinstance(n, ast.Name) and n.id == name
                            for n in ast.walk(node)):
                return True
            if isinstance(node, ast.Call) and not self._releasing_call(node):
                in_args = any(
                    isinstance(n, ast.Name) and n.id == name
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                    for n in ast.walk(arg))
                receiver_release = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name)
                if in_args and not receiver_release:
                    return True
        return False


# -- the path search --------------------------------------------------------

def _stmt_index(block_stmts: List[ast.stmt], stmt: ast.stmt) -> int:
    for index, candidate in enumerate(block_stmts):
        if candidate is stmt:
            return index
        for node in ast.walk(candidate):
            if node is stmt:
                return index
    return 0


def _block_effects(model: _ResourceModel, stmts: List[ast.stmt],
                   start: int) -> Tuple[bool, bool]:
    """(held at normal exit, may raise while held) for a block entered
    holding the resource, starting at statement index ``start``."""
    held = True
    raised_held = False
    for stmt in stmts[start:]:
        if model.releases(stmt):
            held = False
        elif held and may_raise(stmt):
            raised_held = True
    return held, raised_held


def _find_leak(cfg: CFG, model: _ResourceModel,
               acquire: _Acquire) -> Optional[Tuple[List[Edge], bool]]:
    """A path from the acquire to an exit holding the resource, or
    None.  Returns (edge path, took_exceptional_edge)."""
    start_bid = cfg.block_of_stmt(acquire.stmt)
    if start_bid is None:
        return None
    start_block = cfg.blocks[start_bid]
    acquire_idx = _stmt_index(start_block.statements, acquire.stmt)

    # States: (block, exceptional-edge-taken); parents for evidence.
    parents: Dict[Tuple[int, bool],
                  Tuple[Optional[Tuple[int, bool]], Optional[Edge]]] = {}
    frontier: List[Tuple[int, bool]] = []
    leaks: List[Tuple[Tuple[int, bool], Edge]] = []

    def expand(state: Tuple[int, bool], entry_idx: int) -> None:
        bid, exc = state
        block = cfg.blocks.get(bid)
        stmts = block.statements if block is not None else []
        held_out, raised_held = _block_effects(model, stmts, entry_idx)
        for edge in cfg.successors(bid):
            exceptional = edge.kind in _EXCEPTIONAL_KINDS
            if exceptional and not raised_held:
                continue
            if not exceptional and not held_out:
                continue
            nxt = (edge.target, exc or exceptional)
            if edge.target in (cfg.exit, cfg.error):
                leaks.append((nxt, edge))
                parents.setdefault(nxt, (state, edge))
                continue
            if nxt in parents:
                continue
            parents[nxt] = (state, edge)
            frontier.append(nxt)

    # The acquire block: start past the acquire statement (the acquire
    # call's own raise means nothing was acquired).
    origin = (start_bid, False)
    parents[origin] = (None, None)
    expand(origin, acquire_idx + 1)
    while frontier:
        state = frontier.pop(0)
        expand(state, 0)
        for candidate, edge in leaks:
            exc = candidate[1] or edge.target == cfg.error
            if not model.acquire.lifecycle.error_paths_only or exc:
                hops: List[Edge] = []
                cursor: Tuple[int, bool] = candidate
                while parents[cursor][1] is not None:
                    prev, hop = parents[cursor]
                    hops.append(hop)
                    cursor = prev
                hops.reverse()
                return hops, exc
        leaks.clear()
    for candidate, edge in leaks:
        exc = candidate[1] or edge.target == cfg.error
        if not model.acquire.lifecycle.error_paths_only or exc:
            hops = []
            cursor = candidate
            while parents[cursor][1] is not None:
                prev, hop = parents[cursor]
                hops.append(hop)
                cursor = prev
            hops.reverse()
            return hops, exc
    return None


# -- entry point ------------------------------------------------------------

def check_lifecycles(project, enabled: Set[str]) -> List[Finding]:
    """Run every enabled lifecycle rule over every project function."""
    if project is None:
        return []
    wanted = [lc for lc in LIFECYCLES if lc.code in enabled]
    if not wanted:
        return []
    wanted_codes = {lc.code for lc in wanted}
    releasing = releasing_params(project)
    findings: List[Finding] = []
    for key in sorted(project.functions):
        fn = project.functions[key]
        acquires = [a for a in _collect_acquires(fn.node)
                    if a.lifecycle.code in wanted_codes]
        if not acquires:
            continue
        cfg = build_cfg(fn.node)
        for acquire in acquires:
            model = _ResourceModel(acquire, project, fn, releasing)
            stmts = list(_own_statements(fn.node))
            release_sites = [s for s in stmts if model.releases(s)]
            if acquire.lifecycle.release_after_acquire:
                release_sites = [s for s in release_sites
                                 if s.lineno > acquire.lineno]
            if not release_sites:
                # No release intent: ownership transfer by design.
                continue
            if any(model.escapes(s) for s in stmts):
                continue
            leak = _find_leak(cfg, model, acquire)
            if leak is None:
                continue
            hops, _exc = leak
            trace = [f"{fn.path}:{acquire.lineno}: {acquire.lifecycle.noun}"
                     f" '{acquire.resource}' acquired in {fn.qualname}()"]
            trace.extend(cfg.describe_path(fn.path, hops))
            exit_edge = hops[-1] if hops else None
            if exit_edge is not None:
                where = ("the exception escapes"
                         if exit_edge.target == cfg.error
                         else "the function returns")
                trace.append(f"{fn.path}:{exit_edge.lineno}: {where} with "
                             f"'{acquire.resource}' still held")
            fix_hint: Tuple[str, ...] = ()
            if acquire.lifecycle.fixable and exit_edge is not None \
                    and exit_edge.note == "returns here":
                fix_hint = ("insert_before", str(exit_edge.lineno),
                            f"{acquire.resource} = None")
            release_word = {"RES001": "closed or reset",
                            "RES002": "replenished",
                            "RES003": "disarmed",
                            "RES004": "closed/disposed",
                            "DOS003": "cancelled"}[
                                acquire.lifecycle.code]
            path_kind = ("an exception path" if acquire.lifecycle.
                         error_paths_only else "some path")
            findings.append(Finding(
                path=fn.path, line=acquire.lineno, col=acquire.col,
                code=acquire.lifecycle.code,
                message=(f"{acquire.lifecycle.noun} '{acquire.resource}' "
                         f"acquired in {fn.qualname}() is not "
                         f"{release_word} on {path_kind} (the function "
                         f"releases on others)"),
                trace=tuple(trace), law=acquire.lifecycle.law,
                fix_hint=fix_hint))
    return findings


__all__ = ["LIFECYCLES", "Lifecycle", "check_lifecycles",
           "releasing_params"]

"""QUIC-lite substrate (extension; paper Section VII, reference [27]).

The paper closes by pointing at HTTP/2-over-QUIC streaming attacks as
the next frontier.  This subpackage implements enough of QUIC to ask
whether the serialization attack transfers to HTTP/3:

* datagram transport (no TCP): every packet carries QUIC frames,
* independent streams with per-stream reassembly -- no cross-stream
  head-of-line blocking,
* packet-number-based ACKs, RACK-style loss detection, Reno congestion
  control (shared with :mod:`repro.tcp`),
* full encryption: unlike TLS-over-TCP, *nothing* but packet sizes and
  timing is visible on the wire (QUIC encrypts even packet numbers), so
  the adversary loses the ``content_type == 23`` filter and must work
  from sizes alone.

The headline (see :mod:`repro.experiments.quic_transfer`): the attack
still works -- request datagrams are individually spaceable by size, and
object boundaries fall out of sub-MTU packets plus time gaps -- but the
observable is noisier and identification degrades accordingly.
"""

from repro.quic.connection import QuicConfig, QuicConnection, QuicEndpoint
from repro.quic.frames import AckFrame, QuicPacket, StreamFrame
from repro.quic.h3 import H3Client, H3Server, H3ServerConfig

__all__ = [
    "AckFrame",
    "H3Client",
    "H3Server",
    "H3ServerConfig",
    "QuicConfig",
    "QuicConnection",
    "QuicEndpoint",
    "QuicPacket",
    "StreamFrame",
]

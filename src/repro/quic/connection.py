"""QUIC-lite connection: datagrams, streams, ACKs, loss recovery.

Faithful to the properties that matter for the attack-transfer
question:

* every packet is an independent datagram -- loss of one never blocks
  other streams' delivery (no transport head-of-line blocking),
* packet numbers are never reused; retransmission resends *frames* in
  fresh packets,
* loss detection is packet-threshold (3 newer packets acked) plus a
  probe timeout, both RACK-era behaviours,
* congestion control reuses :class:`repro.tcp.congestion.RenoCongestionControl`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.quic.frames import AckFrame, QuicPacket, StreamFrame
from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, Packet
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.rto import RtoEstimator


@dataclass(frozen=True)
class _HandshakeFrame:
    """Opaque handshake bytes (Initial/Handshake flights)."""

    length: int
    step: str  # "client-initial" | "server-flight" | "client-done"

    @property
    def wire_size(self) -> int:
        return self.length


@dataclass(frozen=True)
class ResetStreamFrame:
    """RESET_STREAM (the H3 analogue of the paper's RST_STREAM)."""

    stream_id: int

    @property
    def wire_size(self) -> int:
        return 6


@dataclass
class QuicConfig:
    """Connection tunables."""

    max_payload: int = 1200
    init_cwnd_segments: int = 10
    cwnd_cap_bytes: int = 1 << 20
    initial_ssthresh_bytes: int = 0
    min_pto_s: float = 0.2
    pto_backoff_cap: int = 2
    #: Packet-threshold loss detection (RFC 9002's kPacketThreshold).
    packet_threshold: int = 3


class QuicConnection:
    """One endpoint of a QUIC connection."""

    def __init__(self, endpoint: "QuicEndpoint", remote_addr: str, role: str):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.host = endpoint.host
        self.remote_addr = remote_addr
        self.role = role
        self.config = endpoint.config
        self.established = False

        config = self.config
        self.cc = RenoCongestionControl(
            config.max_payload, config.init_cwnd_segments,
            config.cwnd_cap_bytes, config.initial_ssthresh_bytes)
        self.rtt = RtoEstimator(min_rto=config.min_pto_s,
                                backoff_cap=config.pto_backoff_cap)

        # Send side.
        self._frame_queue: Deque = deque()
        self._unacked: Dict[int, Tuple[float, QuicPacket]] = {}
        self._bytes_in_flight = 0
        self._largest_acked = 0
        self._pto_timer: Optional[EventHandle] = None
        self._send_offsets: Dict[int, int] = {}
        self._reset_streams: set = set()

        # Receive side: per-stream reassembly.
        self._recv_next: Dict[int, int] = {}
        self._recv_pending: Dict[int, Dict[int, StreamFrame]] = {}

        # App hooks.
        self.on_established: Optional[Callable[["QuicConnection"], None]] = None
        self.on_stream_frame: Optional[Callable[[StreamFrame], None]] = None
        self.on_reset_stream: Optional[Callable[[int], None]] = None
        self.on_send_space: Optional[Callable[[], None]] = None

        self.stats_packets_sent = 0
        self.stats_retransmissions = 0
        self._handshake_seen = 0

    # -- handshake -----------------------------------------------------------

    def start_handshake(self) -> None:
        """Client: send the (padded) Initial."""
        if self.role != "client":
            raise RuntimeError("only the client starts the handshake")
        self._emit(QuicPacket(frames=(
            _HandshakeFrame(length=1172, step="client-initial"),)))

    def _on_handshake(self, frame: _HandshakeFrame) -> None:
        self._handshake_seen += 1
        if self.role == "server" and frame.step == "client-initial":
            self._emit(QuicPacket(frames=(
                _HandshakeFrame(length=1172, step="server-flight"),)))
            self._emit(QuicPacket(frames=(
                _HandshakeFrame(length=900, step="server-flight"),)))
        elif self.role == "client" and frame.step == "server-flight":
            if self._handshake_seen == 2:
                self._emit(QuicPacket(frames=(
                    _HandshakeFrame(length=72, step="client-done"),)))
                self._establish()
        elif self.role == "server" and frame.step == "client-done":
            self._establish()

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        if self.on_established is not None:
            self.on_established(self)

    # -- stream egress ------------------------------------------------------------

    def send_stream_frame(self, stream_id: int, length: int, fin: bool,
                          payload: object) -> None:
        """Queue stream bytes; offsets are tracked per stream."""
        offset = self._send_offsets.get(stream_id, 0)
        self._send_offsets[stream_id] = offset + length
        self._frame_queue.append(StreamFrame(
            stream_id=stream_id, offset=offset, length=length, fin=fin,
            payload=payload))
        self._pump()

    def reset_stream(self, stream_id: int) -> None:
        """Abort a stream: drop queued frames, notify the peer."""
        self._reset_streams.add(stream_id)
        self._frame_queue = deque(
            f for f in self._frame_queue
            if not (isinstance(f, StreamFrame) and f.stream_id == stream_id))
        self._frame_queue.append(ResetStreamFrame(stream_id=stream_id))
        self._pump()

    @property
    def queued_bytes(self) -> int:
        return sum(f.wire_size for f in self._frame_queue)

    def _pump(self) -> None:
        """Packetize queued frames up to the congestion window."""
        while self._frame_queue:
            if self._bytes_in_flight >= self.cc.cwnd:
                return
            frames: List = []
            payload = 0
            while (self._frame_queue
                   and payload + self._frame_queue[0].wire_size
                   <= self.config.max_payload):
                frame = self._frame_queue.popleft()
                frames.append(frame)
                payload += frame.wire_size
            if not frames:
                # Oversized single frame: send it alone (sim tolerance).
                frames.append(self._frame_queue.popleft())
            self._emit(QuicPacket(frames=tuple(frames)))
        if (self.on_send_space is not None
                and self.queued_bytes < 4 * self.config.max_payload):
            self.on_send_space()

    def _emit(self, packet: QuicPacket) -> None:
        self.stats_packets_sent += 1
        if packet.is_retransmission:
            self.stats_retransmissions += 1
        self._unacked[packet.packet_number] = (self.sim.now, packet)
        self._bytes_in_flight += packet.wire_size
        self.host.send_packet(Packet(src=self.host.address,
                                     dst=self.remote_addr,
                                     size=HEADER_OVERHEAD + packet.wire_size,
                                     segment=packet))
        self._arm_pto()

    # -- ingress ----------------------------------------------------------------------

    def handle_packet(self, packet: QuicPacket) -> None:
        ack_eliciting = False
        for frame in packet.frames:
            if isinstance(frame, _HandshakeFrame):
                ack_eliciting = True
                self._on_handshake(frame)
            elif isinstance(frame, StreamFrame):
                ack_eliciting = True
                self._on_stream_frame(frame)
            elif isinstance(frame, ResetStreamFrame):
                ack_eliciting = True
                if self.on_reset_stream is not None:
                    self.on_reset_stream(frame.stream_id)
            elif isinstance(frame, AckFrame):
                self._on_ack(frame)
        if ack_eliciting:
            self._send_ack(packet.packet_number)

    def _send_ack(self, packet_number: int) -> None:
        ack = QuicPacket(frames=(AckFrame(largest_acked=packet_number,
                                          acked=(packet_number,)),))
        # Pure ACKs are not congestion-controlled or tracked.
        self.host.send_packet(Packet(src=self.host.address,
                                     dst=self.remote_addr,
                                     size=HEADER_OVERHEAD + ack.wire_size,
                                     segment=ack))

    def _on_stream_frame(self, frame: StreamFrame) -> None:
        """Per-stream in-order delivery; no cross-stream blocking."""
        stream_id = frame.stream_id
        expected = self._recv_next.get(stream_id, 0)
        if frame.end_offset <= expected:
            return  # duplicate
        pending = self._recv_pending.setdefault(stream_id, {})
        pending[frame.offset] = frame
        while expected in pending:
            ready = pending.pop(expected)
            expected = ready.end_offset
            self._recv_next[stream_id] = expected
            if self.on_stream_frame is not None:
                self.on_stream_frame(ready)

    # -- acknowledgements and loss ---------------------------------------------------

    def _on_ack(self, ack: AckFrame) -> None:
        newly_acked = 0
        for number in ack.acked:
            entry = self._unacked.pop(number, None)
            if entry is None:
                continue
            sent_at, packet = entry
            newly_acked += packet.wire_size
            self._bytes_in_flight -= packet.wire_size
            self.rtt.on_rtt_sample(self.sim.now - sent_at)
            self.rtt.on_new_ack()
        if ack.largest_acked > self._largest_acked:
            self._largest_acked = ack.largest_acked
        if newly_acked:
            self.cc.on_ack(newly_acked)
            self._detect_losses()
            self._arm_pto()
            self._pump()

    def _detect_losses(self) -> None:
        """Packet-threshold loss detection (RFC 9002)."""
        threshold = self.config.packet_threshold
        lost = [number for number in self._unacked
                if number + threshold <= self._largest_acked]
        if not lost:
            return
        self.cc.on_fast_retransmit(self._bytes_in_flight)
        self.cc.on_recovery_exit()
        for number in sorted(lost):
            self._retransmit(number)

    def _retransmit(self, number: int) -> None:
        sent_at, packet = self._unacked.pop(number)
        self._bytes_in_flight -= packet.wire_size
        frames = tuple(f for f in packet.frames
                       if not isinstance(f, AckFrame)
                       and not (isinstance(f, StreamFrame)
                                and f.stream_id in self._reset_streams))
        if not frames:
            return
        replacement = QuicPacket(frames=frames, is_retransmission=True)
        self._emit(replacement)

    def _arm_pto(self) -> None:
        if self._pto_timer is not None:
            self._pto_timer.cancel()
            self._pto_timer = None
        if not self._unacked:
            return
        self._pto_timer = self.sim.schedule(self.rtt.rto, self._on_pto)

    def _on_pto(self) -> None:
        self._pto_timer = None
        if not self._unacked:
            return
        self.rtt.on_timeout()
        self.cc.on_timeout(self._bytes_in_flight)
        oldest = min(self._unacked)
        self._retransmit(oldest)
        self._arm_pto()


class QuicEndpoint:
    """Per-host QUIC: connection table and handshake dispatch."""

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[QuicConfig] = None):
        self.sim = sim
        self.host = host
        self.config = config or QuicConfig()
        self._connections: Dict[str, QuicConnection] = {}
        self._on_accept: Optional[Callable[[QuicConnection], None]] = None
        host.register_transport(self)

    def listen(self, on_accept: Callable[[QuicConnection], None]) -> None:
        self._on_accept = on_accept

    def connect(self, remote_addr: str,
                on_established: Callable[[QuicConnection], None],
                ) -> QuicConnection:
        conn = QuicConnection(self, remote_addr, role="client")
        conn.on_established = on_established
        self._connections[remote_addr] = conn
        conn.start_handshake()
        return conn

    def handle_packet(self, packet: Packet) -> None:
        quic_packet = packet.segment
        if not isinstance(quic_packet, QuicPacket):
            return
        conn = self._connections.get(packet.src)
        if conn is None:
            if self._on_accept is None:
                return
            conn = QuicConnection(self, packet.src, role="server")
            conn.on_established = self._on_accept
            self._connections[packet.src] = conn
        conn.handle_packet(quic_packet)

"""QUIC packets and frames (RFC 9000 subset, size-faithful).

A :class:`QuicPacket` is the datagram payload; unlike TCP segments its
wire view exposes *nothing* but the total size -- QUIC encrypts frame
headers, stream ids and even packet numbers, so the adversary's
``WireView`` carries no TCP header and no record slices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Short-header overhead: flags + dest CID (8) + packet number (enc).
PACKET_HEADER_LEN = 12
#: AEAD tag per packet.
PACKET_AEAD_OVERHEAD = 16
#: STREAM frame header: type + stream id + offset + length (varints).
STREAM_FRAME_HEADER = 8
#: ACK frame wire size (type + largest + delay + 1 range).
ACK_FRAME_LEN = 12

_packet_numbers = itertools.count(1)


@dataclass(frozen=True)
class StreamFrame:
    """A span of one stream's bytes.

    ``payload`` carries simulated plaintext (HTTP/3-lite messages) for
    endpoint delivery; the adversary never sees it.
    """

    stream_id: int
    offset: int
    length: int
    fin: bool = False
    payload: object = None

    @property
    def wire_size(self) -> int:
        return STREAM_FRAME_HEADER + self.length

    @property
    def end_offset(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class AckFrame:
    """Cumulative+range acknowledgement (collapsed to largest-acked)."""

    largest_acked: int
    #: Explicitly acknowledged packet numbers (sim convenience; real
    #: QUIC encodes ranges -- the wire size constant accounts for one).
    acked: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return ACK_FRAME_LEN


@dataclass
class QuicPacket:
    """One short-header QUIC packet."""

    frames: Tuple = ()
    packet_number: int = field(default_factory=lambda: next(_packet_numbers))
    is_retransmission: bool = False

    @property
    def wire_size(self) -> int:
        return (PACKET_HEADER_LEN + PACKET_AEAD_OVERHEAD
                + sum(f.wire_size for f in self.frames))

    def wire_view(self):
        """QUIC encrypts everything: no TCP view, no record info.

        Retransmission status is NOT observable on a QUIC wire (packet
        numbers are encrypted and never reused); it is exposed to
        metrics code only via the packet object, not the wire view.
        """
        return None, (), False

    def stream_frames(self) -> List[StreamFrame]:
        return [f for f in self.frames if isinstance(f, StreamFrame)]

    def ack_frames(self) -> List[AckFrame]:
        return [f for f in self.frames if isinstance(f, AckFrame)]

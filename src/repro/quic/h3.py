"""HTTP/3-lite over the QUIC substrate.

Just enough of HTTP/3 to re-ask the paper's question on a QUIC wire:
request streams, a multi-worker server with round-robin DATA
scheduling (the multiplexing behaviour under test), and a client that
can reset streams.  Ground truth uses the same
:class:`repro.http2.server.TxEntry` records as the HTTP/2 server, with
a connection-level byte counter standing in for TCP stream offsets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.http2.server import TxEntry
from repro.quic.connection import QuicConfig, QuicConnection, QuicEndpoint
from repro.quic.frames import StreamFrame


@dataclass(frozen=True)
class H3Request:
    """A QPACK-encoded GET (size-faithful marker)."""

    path: str


@dataclass(frozen=True)
class H3Headers:
    """Response headers marker."""

    path: str


@dataclass(frozen=True)
class H3Data:
    """Response body chunk marker."""

    path: str
    offset: int


@dataclass
class H3ServerConfig:
    """Server tunables (mirrors the HTTP/2 server's)."""

    max_frame_payload: int = 1150
    processing_delay_mean_s: float = 0.0008
    request_header_bytes: int = 64
    response_header_bytes: int = 56
    #: Accepted-connection cap: further accepts are refused (slow-DoS
    #: guard; generous enough that legitimate workloads never hit it).
    max_connections: int = 256


class H3Server:
    """Accepts QUIC connections and serves a site, round-robin."""

    def __init__(self, sim, host, site, config: Optional[H3ServerConfig] = None,
                 quic_config: Optional[QuicConfig] = None):
        self.sim = sim
        self.host = host
        self.site = site
        self.config = config or H3ServerConfig()
        self.endpoint = QuicEndpoint(sim, host, quic_config or QuicConfig(
            initial_ssthresh_bytes=48_000))
        self.endpoint.listen(self._on_accept)
        self.connections: List[QuicConnection] = []
        self.tx_log: List[TxEntry] = []
        self._wire_offset = 0
        self._queues: Dict[int, Deque] = {}
        self._rng = sim.rng("h3-server")

    def _on_accept(self, conn: QuicConnection) -> None:
        if len(self.connections) >= self.config.max_connections:
            return  # connection flood: refuse service, keep the rest alive
        self.connections.append(conn)
        conn.on_stream_frame = lambda frame, c=conn: self._on_frame(c, frame)
        conn.on_reset_stream = lambda sid: self._on_reset(sid)
        conn.on_send_space = lambda c=conn: self._pump(c)

    def _on_frame(self, conn: QuicConnection, frame: StreamFrame) -> None:
        if isinstance(frame.payload, H3Request):
            delay = self._rng.expovariate(
                1.0 / self.config.processing_delay_mean_s)
            self.sim.schedule(delay, self._serve, conn, frame.stream_id,
                              frame.payload.path)

    def _on_reset(self, stream_id: int) -> None:
        self._queues.pop(stream_id, None)

    def _serve(self, conn: QuicConnection, stream_id: int, path: str) -> None:
        obj = self.site.lookup(path)
        queue: Deque = deque()
        queue.append(("headers", self.config.response_header_bytes, False,
                      H3Headers(path=path)))
        if obj is not None:
            remaining = obj.size
            offset = 0
            while remaining > 0:
                length = min(self.config.max_frame_payload, remaining)
                remaining -= length
                queue.append(("data", length, remaining == 0,
                              H3Data(path=path, offset=offset)))
                offset += length
        else:
            queue[0] = ("headers", self.config.response_header_bytes, True,
                        H3Headers(path=path))
        self._queues[stream_id] = queue
        self._pump(conn)

    def _pump(self, conn: QuicConnection) -> None:
        """Round-robin one frame per active stream into the transport."""
        budget = 6 * conn.config.max_payload
        while (self._queues
               and conn.queued_bytes < budget):
            progressed = False
            for stream_id in sorted(self._queues):
                queue = self._queues.get(stream_id)
                if not queue:
                    self._queues.pop(stream_id, None)
                    continue
                kind, length, fin, payload = queue.popleft()
                if not queue:
                    self._queues.pop(stream_id, None)
                conn.send_stream_frame(stream_id, length, fin, payload)
                path = payload.path
                self.tx_log.append(TxEntry(
                    time=self.sim.now, stream_id=stream_id,
                    object_path=path if kind == "data" else "",
                    serve_id=stream_id,
                    tcp_offset=self._wire_offset, length=length
                    if kind == "data" else 0,
                    is_data=kind == "data", end_stream=fin, duplicate=False))
                self._wire_offset += length
                progressed = True
                if conn.queued_bytes >= budget:
                    break
            if not progressed:
                break


class H3Client:
    """Request streams over one QUIC connection."""

    def __init__(self, sim, host, server_addr: str,
                 quic_config: Optional[QuicConfig] = None):
        self.sim = sim
        self.endpoint = QuicEndpoint(sim, host, quic_config or QuicConfig())
        self.server_addr = server_addr
        self.conn: Optional[QuicConnection] = None
        self.streams: Dict[int, dict] = {}
        self._next_stream_id = 0
        self._on_ready: Optional[Callable[[], None]] = None
        self.request_header_bytes = 64

    def connect(self, on_ready: Callable[[], None]) -> None:
        self._on_ready = on_ready
        self.conn = self.endpoint.connect(self.server_addr, self._ready)

    def _ready(self, conn: QuicConnection) -> None:
        conn.on_stream_frame = self._on_frame
        if self._on_ready is not None:
            callback, self._on_ready = self._on_ready, None
            callback()

    def request(self, path: str,
                on_complete: Optional[Callable[[dict], None]] = None) -> dict:
        stream_id = self._next_stream_id
        self._next_stream_id += 4
        state = {"stream_id": stream_id, "path": path, "bytes": 0,
                 "complete": False, "reset": False,
                 "requested_at": self.sim.now, "on_complete": on_complete}
        self.streams[stream_id] = state
        self.conn.send_stream_frame(
            stream_id, self.request_header_bytes + len(path), True,
            H3Request(path=path))
        return state

    def reset_stream(self, state: dict) -> None:
        state["reset"] = True
        self.conn.reset_stream(state["stream_id"])

    def _on_frame(self, frame: StreamFrame) -> None:
        state = self.streams.get(frame.stream_id)
        if state is None or state["reset"] or state["complete"]:
            return
        if isinstance(frame.payload, H3Data):
            state["bytes"] += frame.length
        if frame.fin:
            state["complete"] = True
            if state["on_complete"] is not None:
                state["on_complete"](state)

    def pending(self) -> List[dict]:
        return [s for s in self.streams.values()
                if not s["complete"] and not s["reset"]]

"""Discrete-event network simulation substrate.

This subpackage provides the network layer on which every other component
of the reproduction runs:

* :mod:`repro.simnet.engine` -- the event loop and simulated clock.
* :mod:`repro.simnet.randomness` -- named, seeded random streams.
* :mod:`repro.simnet.packet` -- packets and the adversary-visible wire view.
* :mod:`repro.simnet.link` -- links with bandwidth, delay, jitter and loss.
* :mod:`repro.simnet.host` -- endpoints that own protocol stacks.
* :mod:`repro.simnet.middlebox` -- the programmable on-path device the
  adversary controls, with its policy chain.
* :mod:`repro.simnet.trace` -- pcap-like capture of wire views.
* :mod:`repro.simnet.topology` -- the standard client--middlebox--server
  topology used throughout the paper.
"""

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link, LinkConfig
from repro.simnet.middlebox import (
    Middlebox,
    NetemJitterPolicy,
    Policy,
    SpacingPolicy,
    TokenBucketPolicy,
    UniformDelayPolicy,
    WindowedDropPolicy,
)
from repro.simnet.packet import Packet, RecordInfo, WireView
from repro.simnet.randomness import RandomStreams
from repro.simnet.topology import StandardTopology, TopologyConfig
from repro.simnet.trace import CapturedPacket, TraceRecorder

__all__ = [
    "CapturedPacket",
    "EventHandle",
    "Host",
    "Link",
    "LinkConfig",
    "Middlebox",
    "NetemJitterPolicy",
    "Packet",
    "Policy",
    "RandomStreams",
    "RecordInfo",
    "Simulator",
    "SpacingPolicy",
    "StandardTopology",
    "TokenBucketPolicy",
    "TopologyConfig",
    "TraceRecorder",
    "UniformDelayPolicy",
    "WindowedDropPolicy",
    "WireView",
]

"""Event loop and simulated clock.

The simulator is a classic binary-heap discrete-event scheduler.  All time
values are floats in *seconds*.  Components never sleep or poll; they
schedule callbacks.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotone sequence number breaks ties), and all randomness is
drawn from named streams owned by the simulator (see
:mod:`repro.simnet.randomness`), so a run is a pure function of its seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simnet.randomness import RandomStreams


class EventHandle:
    """Cancellable handle for a scheduled event.

    Handles never enter the heap themselves: the queue holds
    ``(when, seq, handle)`` tuples so heap sift comparisons run as
    C-level tuple comparisons instead of a Python ``__lt__`` call per
    step (measured ~2.1x on the ``event_heap`` bench topic; see
    docs/BENCHMARKS.md).  ``seq`` is unique, so the handle is never
    compared.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, when: float, seq: int, callback: Callable[..., Any], args: tuple,
                 sim: "Optional[Simulator]" = None):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = _noop
        self.args = ()
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.6f}, seq={self.seq}, {state})"


def _noop() -> None:
    return None


class Simulator:
    """Discrete-event simulator with a seeded random-stream registry.

    Parameters
    ----------
    seed:
        Master seed.  Every named random stream derives from it, so two
        simulators built with the same seed produce identical runs.
    """

    def __init__(self, seed: int = 0):
        #: Heap of ``(when, seq, EventHandle)`` tuples (see EventHandle).
        self._queue: list = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._live = 0
        self.streams = RandomStreams(seed)
        #: Observation hook: ``probe(when, callback)`` fires before each
        #: executed event.  None (the default) costs one ``is not None``
        #: test per event; monitors must only observe, never schedule.
        self.probe: Optional[Callable[[float, Callable[..., Any]], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def rng(self, name: str):
        """Return the named :class:`random.Random` stream."""
        return self.streams.get(name)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now ({self._now})")
        seq = self._seq
        handle = EventHandle(when, seq, callback, args, sim=self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (when, seq, handle))
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue empties, ``until`` passes, or
        ``max_events`` have executed.

        Returns the simulated time when the run stopped.  When ``until``
        is given the clock is advanced to it even if the queue drained
        earlier, so repeated ``run(until=...)`` calls behave like a
        monotone clock.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        # The dispatch loop is the hottest code in the repository; local
        # bindings avoid repeated attribute lookups per event.
        queue = self._queue
        heappop = heapq.heappop
        try:
            executed = 0
            while queue:
                when, _seq, head = queue[0]
                if head.cancelled:
                    heappop(queue)
                    continue
                if until is not None and when > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(queue)
                self._live -= 1
                self._now = when
                callback, args = head.callback, head.args
                if self.probe is not None:
                    self.probe(when, callback)
                callback(*args)
                self._processed += 1
                executed += 1
            # Advance the idle clock to ``until`` only when no pending
            # event precedes it: a ``max_events`` break can leave earlier
            # events queued, and jumping past them would run them with a
            # backwards-moving clock on the next call.
            if until is not None and self._now < until:
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                if not queue or queue[0][0] >= until:
                    self._now = until
            return self._now
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(1): a live-event counter is maintained on schedule, cancel and
        pop rather than scanning the heap (which still physically holds
        cancelled entries until they surface).
        """
        return self._live

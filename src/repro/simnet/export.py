"""Capture export/import.

Dumps a :class:`~repro.simnet.trace.TraceRecorder` to JSON-lines (one
packet per line, wire-view fields only -- the same information a pcap
of the encrypted traffic carries) and loads it back for offline
analysis.  Every analysis component in :mod:`repro.core` and
:mod:`repro.analysis` works on re-loaded captures, so experiments can be
captured once and analysed many times.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.simnet.packet import RecordInfo, TcpWireView, WireView
from repro.simnet.trace import CapturedPacket, TraceRecorder


def packet_to_dict(captured: CapturedPacket) -> dict:
    """Serializable form of one captured packet."""
    view = captured.view
    out = {
        "time": captured.time,
        "direction": captured.direction,
        "dropped": captured.dropped,
        "pid": view.pid,
        "src": view.src,
        "dst": view.dst,
        "size": view.size,
        "retx": view.is_retransmit,
        "records": [
            [r.record_id, r.content_type, r.record_wire_len,
             r.bytes_in_packet, r.is_start, r.is_end]
            for r in view.records
        ],
    }
    if view.tcp is not None:
        tcp = view.tcp
        out["tcp"] = [tcp.src_port, tcp.dst_port, tcp.seq, tcp.ack,
                      tcp.payload_len, tcp.syn, tcp.fin, tcp.rst, tcp.is_ack]
    return out


def packet_from_dict(data: dict) -> CapturedPacket:
    """Inverse of :func:`packet_to_dict`."""
    tcp = None
    if "tcp" in data:
        (src_port, dst_port, seq, ack, payload_len,
         syn, fin, rst, is_ack) = data["tcp"]
        tcp = TcpWireView(src_port=src_port, dst_port=dst_port, seq=seq,
                          ack=ack, payload_len=payload_len, syn=syn,
                          fin=fin, rst=rst, is_ack=is_ack)
    records = tuple(
        RecordInfo(record_id=rid, content_type=ct, record_wire_len=wl,
                   bytes_in_packet=bp, is_start=start, is_end=end)
        for rid, ct, wl, bp, start, end in data["records"]
    )
    view = WireView(pid=data["pid"], src=data["src"], dst=data["dst"],
                    size=data["size"], tcp=tcp, records=records,
                    is_retransmit=data["retx"])
    return CapturedPacket(time=data["time"], direction=data["direction"],
                          view=view, dropped=data["dropped"])


def save_trace(trace: TraceRecorder, path: Union[str, Path]) -> int:
    """Write the capture as JSON lines; returns the packet count."""
    path = Path(path)
    packets = trace.packets(include_dropped=True)
    with path.open("w") as handle:
        for captured in packets:
            handle.write(json.dumps(packet_to_dict(captured)) + "\n")
    return len(packets)


def load_trace(path: Union[str, Path]) -> TraceRecorder:
    """Read a JSON-lines capture back into a recorder."""
    recorder = TraceRecorder()
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            captured = packet_from_dict(json.loads(line))
            recorder(captured.time, captured.direction, captured.view,
                     captured.dropped)
    return recorder

"""Network endpoints.

A :class:`Host` owns one duplex attachment to the network (endpoint hosts
in this reproduction always hang off the middlebox, as in the paper's
client -- lab gateway -- server path) and dispatches received packets to
a registered transport stack.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Packet


class Host:
    """An endpoint with an address and a transport stack."""

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self._out_link: Optional[Link] = None
        self._transport = None

    def attach_links(self, out_link: Link, in_link: Link) -> None:
        """Wire this host's egress link and subscribe to its ingress link."""
        self._out_link = out_link
        in_link.attach(self.receive_packet)

    def register_transport(self, transport) -> None:
        """Register the object whose ``handle_packet(pkt)`` receives traffic."""
        self._transport = transport

    def send_packet(self, packet: Packet) -> bool:
        """Transmit a packet on the egress link."""
        if self._out_link is None:
            raise RuntimeError(f"host {self.address} has no egress link")
        packet.created_at = self.sim.now
        return self._out_link.send(packet)

    def receive_packet(self, packet: Packet) -> None:
        """Deliver an arriving packet to the transport stack."""
        if self._transport is not None:
            self._transport.handle_packet(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.address})"

"""Point-to-point links with bandwidth, delay, jitter, loss and queues.

A :class:`Link` is unidirectional; :func:`duplex` builds the usual pair.
The model is the standard store-and-forward one:

* serialization -- a packet occupies the transmitter for
  ``size * 8 / bandwidth`` seconds; packets queue FIFO behind it,
* a finite buffer -- packets arriving to a full queue are tail-dropped,
* propagation -- constant one-way delay,
* jitter -- an extra per-packet random delay (netem-style; large draws
  can reorder packets, exactly the behaviour the paper exploits),
* random loss -- i.i.d. per-packet drop probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simnet.engine import Simulator
from repro.simnet.packet import Packet


@dataclass
class LinkConfig:
    """Static parameters of one link direction."""

    bandwidth_bps: float = 1_000_000_000.0
    propagation_s: float = 0.005
    loss_rate: float = 0.0
    buffer_bytes: int = 256_000
    #: Optional per-packet jitter sampler (seconds); receives the link's
    #: random stream.  ``None`` means no jitter.
    jitter: Optional[Callable] = None
    #: Real links deliver FIFO even under jitter (queueing delays are
    #: correlated); leave ``False`` unless modelling a reordering path.
    allow_reorder: bool = False

    def serialization_s(self, size: int) -> float:
        """Time to clock ``size`` bytes onto the wire."""
        return size * 8.0 / self.bandwidth_bps


@dataclass
class LinkStats:
    """Counters updated as the link operates."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    dropped_down: int = 0
    bytes_delivered: int = 0


class Link:
    """One direction of a point-to-point link."""

    def __init__(self, sim: Simulator, name: str, config: LinkConfig):
        self.sim = sim
        self.name = name
        self.config = config
        self.stats = LinkStats()
        self._receiver: Optional[Callable[[Packet], None]] = None
        self._busy_until = 0.0
        self._queued_bytes = 0
        self._last_arrival = 0.0
        self._up = True
        self._down_count = 0
        self._rng = sim.rng(f"link:{name}")
        #: Packets accepted but not yet serialized: id(packet) -> the
        #: (packet, depart_handle, arrive_handle) triple, so ``set_down``
        #: can drop them (their bits never reached the wire).
        self._queued: dict = {}
        #: Observation hook: ``probe(event, packet)`` with event one of
        #: accept/depart/arrive/drop_loss/drop_queue/drop_down/down/up.
        #: None (the default) costs one ``is not None`` test per packet
        #: event; monitors must only observe.
        self.probe: Optional[Callable[[str, Optional[Packet]], None]] = None

    def attach(self, receiver: Callable[[Packet], None]) -> None:
        """Set the callable invoked with each delivered packet."""
        self._receiver = receiver

    # -- administrative state (fault injection: flaps, blackholes) --------

    @property
    def up(self) -> bool:
        """Administrative state; a down link blackholes new packets."""
        return self._up

    @property
    def flaps(self) -> int:
        """Number of up -> down transitions so far."""
        return self._down_count

    def set_down(self) -> None:
        """Take the link down.  Packets already serialized or in flight
        still arrive (the bits are on the wire); packets still queued
        behind the transmitter are dropped with them -- their bits never
        reached the wire -- and packets offered while down are dropped.
        Idempotent."""
        if not self._up:
            return
        self._up = False
        self._down_count += 1
        queued, self._queued = self._queued, {}
        for packet, depart_handle, arrive_handle in queued.values():
            depart_handle.cancel()
            arrive_handle.cancel()
            self._queued_bytes -= packet.size
            self.stats.dropped_down += 1
            if self.probe is not None:
                self.probe("drop_down", packet)
        # The transmitter stops mid-queue; nothing occupies it any more.
        self._busy_until = self.sim.now
        if self.probe is not None:
            self.probe("down", None)

    def set_up(self) -> None:
        """Bring the link back up.  Idempotent."""
        if not self._up and self.probe is not None:
            self.probe("up", None)
        self._up = True

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``False`` when the packet was dropped (down link, loss
        or full queue), ``True`` when it was accepted.
        """
        if self._receiver is None:
            raise RuntimeError(f"link {self.name} has no receiver attached")
        self.stats.sent += 1
        if not self._up:
            self.stats.dropped_down += 1
            if self.probe is not None:
                self.probe("drop_down", packet)
            return False
        if self.config.loss_rate > 0 and self._rng.random() < self.config.loss_rate:
            self.stats.dropped_loss += 1
            if self.probe is not None:
                self.probe("drop_loss", packet)
            return False
        if self._queued_bytes + packet.size > self.config.buffer_bytes:
            self.stats.dropped_queue += 1
            if self.probe is not None:
                self.probe("drop_queue", packet)
            return False

        now = self.sim.now
        depart = max(now, self._busy_until) + self.config.serialization_s(packet.size)
        self._busy_until = depart
        self._queued_bytes += packet.size

        jitter = 0.0
        if self.config.jitter is not None:
            jitter = max(0.0, self.config.jitter(self._rng))
        arrival = depart + self.config.propagation_s + jitter
        if not self.config.allow_reorder:
            arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        depart_handle = self.sim.schedule_at(depart, self._on_depart, packet)
        arrive_handle = self.sim.schedule_at(arrival, self._on_arrive, packet)
        self._queued[id(packet)] = (packet, depart_handle, arrive_handle)
        if self.probe is not None:
            self.probe("accept", packet)
        return True

    def queue_depth_bytes(self) -> int:
        """Bytes currently queued or being serialized."""
        return self._queued_bytes

    def _on_depart(self, packet: Packet) -> None:
        self._queued.pop(id(packet), None)
        self._queued_bytes -= packet.size
        if self.probe is not None:
            self.probe("depart", packet)

    def _on_arrive(self, packet: Packet) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size
        if self.probe is not None:
            self.probe("arrive", packet)
        self._receiver(packet)


def duplex(sim: Simulator, name: str, config: LinkConfig) -> tuple:
    """Create a ``(forward, reverse)`` pair of identically configured links."""
    forward = Link(sim, f"{name}:fwd", config)
    reverse = Link(sim, f"{name}:rev", config)
    return forward, reverse


def uniform_jitter(low: float, high: float) -> Callable:
    """Jitter sampler drawing uniformly from ``[low, high]`` seconds."""

    def sample(rng) -> float:
        return rng.uniform(low, high)

    return sample


def exponential_jitter(mean: float) -> Callable:
    """Jitter sampler with exponential (heavy-ish tail) distribution."""

    def sample(rng) -> float:
        return rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    return sample

"""The programmable on-path device the adversary controls.

The paper's adversary is a compromised gateway that can (1) read
cleartext headers, (2) observe encrypted packet sizes, (3) delay
packets, (4) throttle the link, and (5) drop packets.  The
:class:`Middlebox` implements exactly those capabilities as an ordered
chain of :class:`Policy` objects applied per direction, plus *taps*
through which observers (the adversary's traffic monitor, trace
recorders) see every transiting packet's :class:`~repro.simnet.packet.WireView`.

Policies operate on wire views only -- the same information boundary a
real gateway has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Packet, WireView

#: Direction constants.
CLIENT_TO_SERVER = "c2s"
SERVER_TO_CLIENT = "s2c"
DIRECTIONS = (CLIENT_TO_SERVER, SERVER_TO_CLIENT)


@dataclass
class PolicyAction:
    """Verdict of one policy on one packet."""

    drop: bool = False
    release_at: Optional[float] = None


class Policy:
    """Base class: pass everything through unchanged."""

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        """Return the policy's verdict.

        ``proposed_release`` is the forward time accumulated by earlier
        policies in the chain; implementations wishing to delay further
        return a later ``release_at``.
        """
        return PolicyAction()


class UniformDelayPolicy(Policy):
    """Add a constant delay to every matched packet (Section IV-A).

    The paper notes a uniform delay cannot change inter-arrival times,
    which the jitter experiments confirm against this baseline.
    """

    def __init__(self, delay_s: float, direction: Optional[str] = None,
                 match: Optional[Callable[[WireView], bool]] = None):
        self.delay_s = delay_s
        self.direction = direction
        self.match = match

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        if self.direction is not None and direction != self.direction:
            return PolicyAction()
        if self.match is not None and not self.match(view):
            return PolicyAction()
        return PolicyAction(release_at=proposed_release + self.delay_s)


class SpacingPolicy(Policy):
    """Enforce a minimum gap between matched packets (Section IV-B).

    This is the paper's jitter injector: hold each GET-carrying packet
    back until at least ``min_gap_s`` after the previous one was
    forwarded ("the first request can be delayed by 0 ms, second by d ms,
    the third by 2d ms, and so on").  Unmatched packets (e.g. pure ACKs)
    pass untouched, which is what lets TCP-level reordering -- and the
    fast-retransmit storm of Fig. 4 -- happen.

    The delay ramp is rebuilt per request *burst*: after
    ``reset_idle_s`` without a matched arrival the accumulated ramp is
    discarded, as a netem-style controller retunes between bursts.  A
    consequence the paper observed (Fig. 4) is faithfully reproduced:
    packets of a new burst can overtake stragglers still held from the
    previous ramp, and the resulting reordering grows with the gap
    ``d`` -- producing the duplicate-ACK -> fast-retransmit ->
    duplicate-serve cascade that intensifies multiplexing at high
    jitter (Table I).
    """

    def __init__(self, min_gap_s: float, direction: str,
                 match: Optional[Callable[[WireView], bool]] = None,
                 reset_idle_s: float = 0.25,
                 initial_gap_s: Optional[float] = None,
                 initial_count: int = 0):
        self.min_gap_s = min_gap_s
        self.direction = direction
        self.match = match if match is not None else _matches_application_data
        self.reset_idle_s = reset_idle_s
        #: Larger gap applied to the first ``initial_count`` gaps of
        #: each epoch -- the attack planner's allowance for a server
        #: whose congestion window is still recovering (the re-served
        #: HTML right after the reset needs more than the steady-state
        #: spacing).
        self.initial_gap_s = initial_gap_s
        self.initial_count = initial_count
        self._epoch_gaps = 0
        self._last_release: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self.held_packets = 0
        self.epochs = 0

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        if direction != self.direction or not self.match(view):
            return PolicyAction()
        now = proposed_release
        # A new epoch starts only when the hold queue has fully drained
        # AND the burst went quiet -- a shaper cannot "reset" while
        # packets are still queued inside it.
        if (self._last_arrival is None
                or (now - self._last_arrival > self.reset_idle_s
                    and (self._last_release is None or now >= self._last_release))):
            self._last_release = None
            self._epoch_gaps = 0
            self.epochs += 1
        self._last_arrival = now
        release = proposed_release
        if self._last_release is not None:
            gap = self.min_gap_s
            if (self.initial_gap_s is not None
                    and self._epoch_gaps < self.initial_count):
                gap = max(gap, self.initial_gap_s)
            self._epoch_gaps += 1
            spaced = self._last_release + gap
            if spaced > release:
                release = spaced
                self.held_packets += 1
        self._last_release = release
        return PolicyAction(release_at=release)


class NetemJitterPolicy(Policy):
    """Independent per-packet random delay on matched packets.

    This is ``tc netem delay <d>`` with variation, the tool the paper's
    network controller drives: each matched packet is delayed by an
    independent draw from ``U(d*(1-frac), d*(1+frac))``.  Because draws
    are independent, packets sent close together reorder freely, and
    the reorder *depth* grows with ``d`` -- the mechanism behind the
    paper's rising retransmission counts (Table I): deep holes at the
    receiver produce duplicate-ACK runs, fast retransmits of GETs, and
    the duplicate object serves of Fig. 4.
    """

    def __init__(self, sim: Simulator, mean_delay_s: float, direction: str,
                 frac: float = 0.5,
                 match: Optional[Callable[[WireView], bool]] = None,
                 stream_name: str = "policy:netem-jitter"):
        if not 0.0 <= frac <= 1.0:
            raise ValueError("frac must be in [0, 1]")
        self.mean_delay_s = mean_delay_s
        self.direction = direction
        self.frac = frac
        self.match = match if match is not None else _matches_application_data
        self._rng = sim.rng(stream_name)
        self.delayed_packets = 0

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        if direction != self.direction or not self.match(view):
            return PolicyAction()
        low = self.mean_delay_s * (1.0 - self.frac)
        high = self.mean_delay_s * (1.0 + self.frac)
        self.delayed_packets += 1
        return PolicyAction(release_at=proposed_release
                            + self._rng.uniform(low, high))


class TokenBucketPolicy(Policy):
    """Rate-limit matched traffic to ``rate_bps`` (Section IV-C).

    Implemented as a virtual queue: each packet's release time is pushed
    behind the previous one by its serialization time at the throttled
    rate.  Packets whose queueing delay would exceed ``max_backlog_s``
    are dropped, mimicking a shaper's finite buffer.  The paper applies
    the limit to both directions; pass ``direction=None`` for that.
    """

    def __init__(self, rate_bps: float, direction: Optional[str] = None,
                 max_backlog_s: float = 0.5):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps
        self.direction = direction
        self.max_backlog_s = max_backlog_s
        self._virtual_queue = {d: 0.0 for d in DIRECTIONS}
        self.dropped = 0

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        if self.direction is not None and direction != self.direction:
            return PolicyAction()
        vq = max(proposed_release, self._virtual_queue[direction])
        release = vq + view.size * 8.0 / self.rate_bps
        if release - proposed_release > self.max_backlog_s:
            self.dropped += 1
            return PolicyAction(drop=True)
        self._virtual_queue[direction] = release
        return PolicyAction(release_at=release)


class WindowedDropPolicy(Policy):
    """Drop matched packets with probability ``rate`` inside a time window
    (Section IV-D's targeted packet drops).

    The adversary uses this on the server-to-client path, matching TLS
    application-data packets, to mimic a lossy network until the client
    sends ``RST_STREAM``.
    """

    def __init__(self, sim: Simulator, rate: float, direction: str,
                 start_at: float, end_at: float,
                 match: Optional[Callable[[WireView], bool]] = None,
                 stream_name: str = "policy:windowed-drop"):
        self.rate = rate
        self.direction = direction
        self.start_at = start_at
        self.end_at = end_at
        self.match = match if match is not None else _matches_application_data
        self._rng = sim.rng(stream_name)
        self.dropped = 0

    def active(self, now: float) -> bool:
        """True when the drop window covers ``now``."""
        return self.start_at <= now < self.end_at

    def process(self, view: WireView, direction: str, proposed_release: float) -> PolicyAction:
        if direction != self.direction or not self.active(proposed_release):
            return PolicyAction()
        if not self.match(view):
            return PolicyAction()
        if self._rng.random() < self.rate:
            self.dropped += 1
            return PolicyAction(drop=True)
        return PolicyAction()


def _matches_application_data(view: WireView) -> bool:
    return view.has_application_data


@dataclass
class MiddleboxStats:
    """Per-direction forwarding counters."""

    forwarded: int = 0
    dropped: int = 0
    dropped_failed: int = 0


class Middlebox:
    """A two-port forwarding device with a policy chain and taps."""

    def __init__(self, sim: Simulator, name: str = "middlebox"):
        self.sim = sim
        self.name = name
        self._policies: List[Policy] = []
        self._taps: List[Callable] = []
        self._out = {}  # direction -> Link
        self._failed = False
        self._saved_policies: List[Policy] = []
        self.crashes = 0
        self.stats = {d: MiddleboxStats() for d in DIRECTIONS}

    # -- wiring ---------------------------------------------------------

    def attach(self, direction: str, in_link: Link, out_link: Link) -> None:
        """Wire one direction: packets from ``in_link`` forward on ``out_link``."""
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        self._out[direction] = out_link
        in_link.attach(lambda pkt, d=direction: self._on_packet(pkt, d))

    def add_tap(self, tap: Callable) -> None:
        """Register ``tap(now, direction, view, dropped)`` for every packet."""
        self._taps.append(tap)

    # -- policy management (the adversary's control surface) -------------

    def add_policy(self, policy: Policy) -> Policy:
        """Append a policy to the chain and return it."""
        self._policies.append(policy)
        return policy

    def remove_policy(self, policy: Policy) -> None:
        """Remove a policy; missing policies are ignored."""
        try:
            self._policies.remove(policy)
        except ValueError:
            pass

    def clear_policies(self) -> None:
        """Drop the whole chain (restore neutral forwarding)."""
        self._policies.clear()

    @property
    def policies(self) -> tuple:
        return tuple(self._policies)

    # -- crash / restart (fault injection) --------------------------------

    @property
    def failed(self) -> bool:
        """True while the device is down (crashed, not yet restarted)."""
        return self._failed

    def fail(self) -> None:
        """Crash the device: the policy chain drops out and every packet
        offered while down is lost (the gateway *is* the path).
        Idempotent."""
        if self._failed:
            return
        self._failed = True
        self.crashes += 1
        self._saved_policies = list(self._policies)
        self._policies.clear()

    def recover(self) -> None:
        """Restart the device: forwarding resumes and the policy chain
        saved at crash time re-attaches (with its pre-crash internal
        state -- the adversary's controller re-installs from its own
        copy, it does not rebuild the policies).  Idempotent."""
        if not self._failed:
            return
        self._failed = False
        self._policies.extend(self._saved_policies)
        self._saved_policies = []

    # -- forwarding -------------------------------------------------------

    def _on_packet(self, packet: Packet, direction: str) -> None:
        now = self.sim.now
        view = packet.wire_view()
        if self._failed:
            # A dead device neither forwards nor observes: taps (the
            # adversary's monitor, the trace recorder) run *on* the
            # middlebox and therefore see nothing while it is down.
            self.stats[direction].dropped += 1
            self.stats[direction].dropped_failed += 1
            return
        release = now
        dropped = False
        for policy in self._policies:
            action = policy.process(view, direction, release)
            if action.drop:
                dropped = True
                break
            if action.release_at is not None and action.release_at > release:
                release = action.release_at

        for tap in self._taps:
            tap(now, direction, view, dropped)

        if dropped:
            self.stats[direction].dropped += 1
            return
        self.stats[direction].forwarded += 1
        out_link = self._out.get(direction)
        if out_link is None:
            raise RuntimeError(f"middlebox {self.name}: no egress for {direction}")
        if release <= now:
            out_link.send(packet)
        else:
            self.sim.schedule_at(release, out_link.send, packet)

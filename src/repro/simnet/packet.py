"""Packets and the adversary-visible *wire view*.

A :class:`Packet` is the unit handled by links and middleboxes.  Its
``segment`` attribute carries the transport payload (a
:class:`repro.tcp.segment.TcpSegment`), which in turn carries TLS record
slices and, inside those, HTTP/2 frames.

The adversary in the paper is non-intrusive: it reads packet sizes,
cleartext TCP/IP headers and cleartext TLS *record headers* (content type
and length -- the paper's ``ssl.record.content_type == 23`` filter), but
never plaintext.  :class:`WireView` is the codified version of that
boundary: every field on it is derivable from cleartext bytes on a real
wire.  Adversary code (``repro.core``) only ever consumes wire views;
ground truth (which web object a record belongs to) stays on the
underlying objects and is used exclusively by metrics and tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

_packet_ids = itertools.count(1)

#: Overhead bytes added to the transport payload for Ethernet + IP + TCP
#: headers when computing on-wire packet size.
HEADER_OVERHEAD = 54

#: Conventional MTU used for delimiter detection (Fig. 1 of the paper):
#: a packet strictly smaller than a full-sized one marks an object tail.
MTU = 1500


@dataclass(frozen=True, slots=True)
class RecordInfo:
    """Cleartext-visible information about (a slice of) a TLS record.

    TLS record headers are not encrypted, so an on-path device that
    reassembles the TCP byte positions can recover, for every record:
    its content type, its total wire length, and where it starts and
    ends.  One ``RecordInfo`` describes the part of one record carried
    by one packet.
    """

    record_id: int
    content_type: int
    record_wire_len: int
    bytes_in_packet: int
    is_start: bool
    is_end: bool

    @property
    def is_application_data(self) -> bool:
        """True for content type 23 (TLS application data)."""
        return self.content_type == 23


@dataclass(frozen=True, slots=True)
class TcpWireView:
    """Cleartext TCP header fields."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    payload_len: int
    syn: bool = False
    fin: bool = False
    rst: bool = False
    is_ack: bool = True

    @property
    def is_pure_ack(self) -> bool:
        """True when the segment carries no payload and no SYN/FIN/RST."""
        return self.payload_len == 0 and not (self.syn or self.fin or self.rst)


@dataclass(frozen=True, slots=True)
class WireView:
    """Everything an on-path, non-decrypting observer may read."""

    pid: int
    src: str
    dst: str
    size: int
    tcp: Optional[TcpWireView]
    records: Tuple[RecordInfo, ...] = ()
    is_retransmit: bool = False

    @property
    def has_application_data(self) -> bool:
        """True when the packet carries any TLS application-data bytes."""
        return any(r.is_application_data for r in self.records)

    @property
    def application_bytes(self) -> int:
        """Total TLS application-data bytes (header+ciphertext) carried."""
        return sum(r.bytes_in_packet for r in self.records if r.is_application_data)


@dataclass(slots=True)
class Packet:
    """A network packet in flight.

    ``size`` is the full on-wire size (payload plus
    :data:`HEADER_OVERHEAD`).  ``segment`` is the transport payload; it
    must provide ``wire_view()`` returning ``(TcpWireView,
    tuple[RecordInfo, ...], is_retransmit)`` when present.
    """

    src: str
    dst: str
    size: int
    segment: Any = None
    created_at: float = 0.0
    pid: int = field(default_factory=lambda: next(_packet_ids))

    def wire_view(self) -> WireView:
        """Build the adversary-visible view of this packet."""
        tcp_view: Optional[TcpWireView] = None
        records: Tuple[RecordInfo, ...] = ()
        is_retransmit = False
        if self.segment is not None:
            tcp_view, records, is_retransmit = self.segment.wire_view()
        return WireView(
            pid=self.pid,
            src=self.src,
            dst=self.dst,
            size=self.size,
            tcp=tcp_view,
            records=records,
            is_retransmit=is_retransmit,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet(pid={self.pid}, {self.src}->{self.dst}, size={self.size})"

"""Named, seeded random streams.

Every source of randomness in the simulation (link jitter, server
processing delays, client think times, volunteer survey answers, ...)
draws from its own named stream.  Adding a new consumer therefore never
perturbs the draws seen by existing consumers, which keeps calibrated
experiments stable as the codebase grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Registry of :class:`random.Random` instances keyed by name.

    Each stream is seeded with ``SHA-256(master_seed || name)`` so streams
    are mutually independent and reproducible.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent registry (e.g. one per repetition)."""
        digest = hashlib.sha256(f"{self.master_seed}:fork:{salt}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

"""Named one-shot deadline timers on the simulator clock.

A :class:`TimerWheel` gives resource-hardening code (connection and
stream deadlines in :mod:`repro.http2.server`) a tiny, leak-proof timer
vocabulary: ``arm(name, ...)`` replaces any previous timer of the same
name, ``cancel(name)`` is idempotent, and a wheel with nothing armed
schedules **zero** simulator events -- so code that merely *owns* a
wheel stays byte-identical to code without one.

Handles live in a dict keyed by name; the fire path removes the entry
before invoking the callback, so ``armed()`` is always truthful and a
callback re-arming its own name works naturally.
"""

from __future__ import annotations

from typing import Callable, Dict


class TimerWheel:
    """A set of named one-shot timers over ``sim.schedule``."""

    def __init__(self, sim):
        self.sim = sim
        self._armed: Dict[str, object] = {}
        #: Timers that reached their deadline and ran their callback.
        self.fired = 0
        #: Timers cancelled before firing.
        self.cancelled = 0

    def arm(self, name: str, delay_s: float, callback: Callable,
            *args) -> None:
        """Arm ``name`` to fire in ``delay_s``; re-arming replaces the
        previous deadline (cancel-then-arm)."""
        if delay_s < 0:
            raise ValueError(f"timer {name!r}: delay_s must be >= 0, "
                             f"got {delay_s}")
        self.cancel(name)
        self._armed[name] = self.sim.schedule(delay_s, self._fire,
                                              name, callback, args)

    def _fire(self, name: str, callback: Callable, args) -> None:
        self._armed.pop(name, None)
        self.fired += 1
        callback(*args)

    def cancel(self, name: str) -> None:
        """Disarm ``name`` if armed; a no-op otherwise."""
        handle = self._armed.pop(name, None)
        if handle is not None:
            handle.cancel()
            self.cancelled += 1

    def cancel_all(self) -> None:
        """Disarm everything (connection teardown)."""
        for name in list(self._armed):
            self.cancel(name)

    def armed(self, name: str) -> bool:
        return name in self._armed

    @property
    def armed_count(self) -> int:
        return len(self._armed)


__all__ = ["TimerWheel"]

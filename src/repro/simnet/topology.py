"""The standard client -- middlebox -- server topology.

Mirrors the paper's setup: clients inside a lab, a 1 Gbps gateway the
adversary controls, and the target server across the Internet.  The
client-side hop is short (LAN); the server-side hop carries the WAN
propagation delay and a little natural jitter and loss, which give the
baseline (no-adversary) runs their realistic variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link, LinkConfig, exponential_jitter
from repro.simnet.middlebox import CLIENT_TO_SERVER, SERVER_TO_CLIENT, Middlebox
from repro.simnet.trace import TraceRecorder


@dataclass
class TopologyConfig:
    """Knobs for the standard topology.

    Defaults give a ~30 ms RTT path with a 1 Gbps gateway, matching the
    paper's testbed scale.
    """

    client_bandwidth_bps: float = 1_000_000_000.0
    client_propagation_s: float = 0.005
    server_bandwidth_bps: float = 1_000_000_000.0
    server_propagation_s: float = 0.010
    #: Mean of the exponential natural jitter on the WAN hop (seconds).
    natural_jitter_mean_s: float = 0.0004
    #: Natural random loss on the WAN hop.
    natural_loss_rate: float = 0.0002
    buffer_bytes: int = 512_000


class StandardTopology:
    """client <-> middlebox <-> server, with a trace recorder tapped in."""

    def __init__(self, sim: Simulator, config: Optional[TopologyConfig] = None):
        self.sim = sim
        self.config = config or TopologyConfig()
        cfg = self.config

        self.client = Host(sim, "client")
        self.server = Host(sim, "server")
        self.middlebox = Middlebox(sim, "gateway")

        lan = LinkConfig(
            bandwidth_bps=cfg.client_bandwidth_bps,
            propagation_s=cfg.client_propagation_s,
            buffer_bytes=cfg.buffer_bytes,
        )
        wan = LinkConfig(
            bandwidth_bps=cfg.server_bandwidth_bps,
            propagation_s=cfg.server_propagation_s,
            buffer_bytes=cfg.buffer_bytes,
            loss_rate=cfg.natural_loss_rate,
            jitter=(exponential_jitter(cfg.natural_jitter_mean_s)
                    if cfg.natural_jitter_mean_s > 0 else None),
        )

        # client -> middlebox -> server
        self._c2m = Link(sim, "client->mbox", lan)
        self._m2s = Link(sim, "mbox->server", wan)
        # server -> middlebox -> client
        self._s2m = Link(sim, "server->mbox", wan)
        self._m2c = Link(sim, "mbox->client", lan)

        self.client.attach_links(self._c2m, self._m2c)
        self.server.attach_links(self._s2m, self._m2s)
        self.middlebox.attach(CLIENT_TO_SERVER, self._c2m, self._m2s)
        self.middlebox.attach(SERVER_TO_CLIENT, self._s2m, self._m2c)

        #: Name -> link registry; the fault injector addresses link
        #: flap / blackhole targets through these stable names.
        self.links = {
            "client->mbox": self._c2m,
            "mbox->server": self._m2s,
            "server->mbox": self._s2m,
            "mbox->client": self._m2c,
        }

        self.trace = TraceRecorder()
        self.middlebox.add_tap(self.trace)

    def base_rtt_s(self) -> float:
        """Propagation-only round-trip time of the path."""
        cfg = self.config
        return 2.0 * (cfg.client_propagation_s + cfg.server_propagation_s)

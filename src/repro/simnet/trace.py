"""Pcap-like capture of wire views at the middlebox.

The adversary's traffic monitor (``tshark`` in the paper) and the
offline analysis both consume these captures.  Only
:class:`~repro.simnet.packet.WireView` data is stored -- the capture is
exactly what a real on-path sniffer would have.

Storage is columnar and append-only: the per-packet tap appends one
scalar to each of four parallel arrays instead of allocating a
``CapturedPacket`` object per packet, and running counters (packets per
direction, retransmissions) are maintained at append time so the
telemetry the session runner reads after every run is O(1) instead of a
full-trace scan.  ``CapturedPacket`` remains the *view* type: accessor
methods materialize it lazily for analysis code, which runs once per
session rather than once per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.simnet.packet import WireView


@dataclass(frozen=True, slots=True)
class CapturedPacket:
    """One packet as seen transiting the middlebox."""

    time: float
    direction: str
    view: WireView
    dropped: bool


@dataclass(frozen=True, slots=True)
class CompletedRecord:
    """A TLS record whose last byte has been observed.

    ``start_time``/``end_time`` bracket the packets that carried it;
    ``wire_len`` includes the 5-byte record header and AEAD overhead,
    both visible on the wire.
    """

    record_id: int
    content_type: int
    wire_len: int
    start_time: float
    end_time: float
    direction: str
    #: Size of the packet that carried the record's final byte.  Sub-MTU
    #: final packets are the delimiters of Fig. 1.
    final_packet_size: int


class TraceRecorder:
    """Accumulates captured packets and derives record-level views."""

    __slots__ = ("include_dropped", "_times", "_directions", "_views",
                 "_dropped", "_retransmits")

    def __init__(self, include_dropped: bool = True):
        self.include_dropped = include_dropped
        self._times: List[float] = []
        self._directions: List[str] = []
        self._views: List[WireView] = []
        self._dropped: List[bool] = []
        #: direction -> retransmitted-packet count (dropped included),
        #: maintained at append time for O(1) session telemetry.
        self._retransmits: dict = {}

    # The middlebox tap signature.
    def __call__(self, now: float, direction: str, view: WireView, dropped: bool) -> None:
        if dropped and not self.include_dropped:
            return
        self._times.append(now)
        self._directions.append(direction)
        self._views.append(view)
        self._dropped.append(dropped)
        if view.is_retransmit:
            self._retransmits[direction] = \
                self._retransmits.get(direction, 0) + 1

    def __len__(self) -> int:
        return len(self._times)

    def clear(self) -> None:
        """Forget everything captured so far."""
        self._times.clear()
        self._directions.clear()
        self._views.clear()
        self._dropped.clear()
        self._retransmits.clear()

    def packets(self, direction: Optional[str] = None,
                include_dropped: bool = False) -> List[CapturedPacket]:
        """Captured packets, optionally filtered by direction."""
        return [
            CapturedPacket(t, d, v, x)
            for t, d, v, x in zip(self._times, self._directions,
                                  self._views, self._dropped)
            if (direction is None or d == direction)
            and (include_dropped or not x)
        ]

    def application_packets(self, direction: str) -> List[CapturedPacket]:
        """Forwarded packets carrying TLS application data (type 23)."""
        return [
            p for p in self.packets(direction)
            if p.view.has_application_data
        ]

    def completed_records(self, direction: str,
                          content_type: Optional[int] = 23) -> List[CompletedRecord]:
        """Reassemble record-level sizes from the packet slices.

        Follows delivered (non-dropped) packets only, since only those
        reach the far endpoint.  Records are emitted in order of their
        final slice.  Retransmitted duplicate slices of an already
        completed record start a fresh logical record, mirroring what a
        sniffer tracking the byte stream sees as duplicated spans.
        """
        open_records: dict = {}
        completed: List[CompletedRecord] = []
        for time, d, view, dropped in zip(self._times, self._directions,
                                          self._views, self._dropped):
            if d != direction or dropped:
                continue
            for info in view.records:
                if content_type is not None and info.content_type != content_type:
                    continue
                key = info.record_id
                if info.is_start or key not in open_records:
                    open_records[key] = time
                if info.is_end:
                    start_time = open_records.pop(key, time)
                    completed.append(CompletedRecord(
                        record_id=info.record_id,
                        content_type=info.content_type,
                        wire_len=info.record_wire_len,
                        start_time=start_time,
                        end_time=time,
                        direction=d,
                        final_packet_size=view.size,
                    ))
        return completed

    def count(self, predicate: Callable[[CapturedPacket], bool]) -> int:
        """Number of captured packets satisfying ``predicate``."""
        return sum(1 for p in self.packets(include_dropped=True)
                   if predicate(p))

    def retransmit_count(self, direction: Optional[str] = None) -> int:
        """O(1) count of packets flagged as TCP retransmissions
        (dropped packets included, matching a seq-tracking sniffer)."""
        if direction is not None:
            return self._retransmits.get(direction, 0)
        return sum(self._retransmits.values())

    def retransmitted_packets(self, direction: Optional[str] = None) -> List[CapturedPacket]:
        """Packets flagged as TCP retransmissions (inferable from seq reuse)."""
        return [p for p in self.packets(direction, include_dropped=True)
                if p.view.is_retransmit]

    def time_span(self) -> Tuple[float, float]:
        """(first, last) capture timestamps; (0, 0) when empty."""
        if not self._times:
            return (0.0, 0.0)
        return (self._times[0], self._times[-1])

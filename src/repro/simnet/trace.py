"""Pcap-like capture of wire views at the middlebox.

The adversary's traffic monitor (``tshark`` in the paper) and the
offline analysis both consume these captures.  Only
:class:`~repro.simnet.packet.WireView` data is stored -- the capture is
exactly what a real on-path sniffer would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.simnet.packet import RecordInfo, WireView


@dataclass(frozen=True)
class CapturedPacket:
    """One packet as seen transiting the middlebox."""

    time: float
    direction: str
    view: WireView
    dropped: bool


@dataclass(frozen=True)
class CompletedRecord:
    """A TLS record whose last byte has been observed.

    ``start_time``/``end_time`` bracket the packets that carried it;
    ``wire_len`` includes the 5-byte record header and AEAD overhead,
    both visible on the wire.
    """

    record_id: int
    content_type: int
    wire_len: int
    start_time: float
    end_time: float
    direction: str
    #: Size of the packet that carried the record's final byte.  Sub-MTU
    #: final packets are the delimiters of Fig. 1.
    final_packet_size: int


class TraceRecorder:
    """Accumulates captured packets and derives record-level views."""

    def __init__(self, include_dropped: bool = True):
        self.include_dropped = include_dropped
        self._packets: List[CapturedPacket] = []

    # The middlebox tap signature.
    def __call__(self, now: float, direction: str, view: WireView, dropped: bool) -> None:
        if dropped and not self.include_dropped:
            return
        self._packets.append(CapturedPacket(now, direction, view, dropped))

    def __len__(self) -> int:
        return len(self._packets)

    def clear(self) -> None:
        """Forget everything captured so far."""
        self._packets.clear()

    def packets(self, direction: Optional[str] = None,
                include_dropped: bool = False) -> List[CapturedPacket]:
        """Captured packets, optionally filtered by direction."""
        return [
            p for p in self._packets
            if (direction is None or p.direction == direction)
            and (include_dropped or not p.dropped)
        ]

    def application_packets(self, direction: str) -> List[CapturedPacket]:
        """Forwarded packets carrying TLS application data (type 23)."""
        return [
            p for p in self.packets(direction)
            if p.view.has_application_data
        ]

    def completed_records(self, direction: str,
                          content_type: Optional[int] = 23) -> List[CompletedRecord]:
        """Reassemble record-level sizes from the packet slices.

        Follows delivered (non-dropped) packets only, since only those
        reach the far endpoint.  Records are emitted in order of their
        final slice.  Retransmitted duplicate slices of an already
        completed record start a fresh logical record, mirroring what a
        sniffer tracking the byte stream sees as duplicated spans.
        """
        open_records: dict = {}
        completed: List[CompletedRecord] = []
        for captured in self.packets(direction):
            for info in captured.view.records:
                if content_type is not None and info.content_type != content_type:
                    continue
                key = info.record_id
                if info.is_start or key not in open_records:
                    open_records[key] = captured.time
                if info.is_end:
                    start_time = open_records.pop(key, captured.time)
                    completed.append(CompletedRecord(
                        record_id=info.record_id,
                        content_type=info.content_type,
                        wire_len=info.record_wire_len,
                        start_time=start_time,
                        end_time=captured.time,
                        direction=captured.direction,
                        final_packet_size=captured.view.size,
                    ))
        return completed

    def count(self, predicate: Callable[[CapturedPacket], bool]) -> int:
        """Number of captured packets satisfying ``predicate``."""
        return sum(1 for p in self._packets if predicate(p))

    def retransmitted_packets(self, direction: Optional[str] = None) -> List[CapturedPacket]:
        """Packets flagged as TCP retransmissions (inferable from seq reuse)."""
        return [p for p in self.packets(direction, include_dropped=True)
                if p.view.is_retransmit]

    def time_span(self) -> Tuple[float, float]:
        """(first, last) capture timestamps; (0, 0) when empty."""
        if not self._packets:
            return (0.0, 0.0)
        return (self._packets[0].time, self._packets[-1].time)

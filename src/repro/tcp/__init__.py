"""Simplified TCP (Reno) substrate.

Implements the TCP mechanisms the paper's attack manipulates:

* byte-stream transmission with MSS-sized segments,
* cumulative ACKs, duplicate-ACK counting and fast retransmit,
* RTO estimation (Jacobson/Karn) with exponential backoff,
* Reno slow start / congestion avoidance / fast recovery,
* in-order reassembly, with an optional *duplicate delivery* mode that
  reproduces the paper's observation that retransmitted GET copies cause
  the HTTP/2 server to re-serve objects (Fig. 4).
"""

from repro.tcp.buffer import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.connection import TcpConfig, TcpConnection, TcpStack
from repro.tcp.rto import RtoEstimator
from repro.tcp.segment import RecordSlice, TcpSegment

__all__ = [
    "ReceiveBuffer",
    "RecordSlice",
    "RenoCongestionControl",
    "RtoEstimator",
    "SendBuffer",
    "TcpConfig",
    "TcpConnection",
    "TcpSegment",
    "TcpStack",
]

"""Send-side stream buffering and receive-side reassembly."""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Tuple

from repro.tcp.segment import RecordSlice


class SendBuffer:
    """The outgoing byte stream, annotated with TLS record positions.

    Applications (the TLS session) append whole records; the connection
    cuts MSS-sized spans out of the stream with :meth:`slice_stream`.
    Records below the cumulative-ACK point are pruned so memory stays
    proportional to the in-flight window.
    """

    def __init__(self):
        self._records: List[object] = []
        self._starts: List[int] = []
        self._base_index = 0
        self.total_written = 0

    def write(self, record) -> int:
        """Append ``record`` (with ``wire_len``) and return its stream offset."""
        offset = self.total_written
        self._records.append(record)
        self._starts.append(offset)
        self.total_written += record.wire_len
        return offset

    def slice_stream(self, seq: int, length: int) -> Tuple[RecordSlice, ...]:
        """Record slices overlapping stream span ``[seq, seq + length)``."""
        if length <= 0:
            return ()
        if seq + length > self.total_written:
            raise ValueError("slice beyond written stream")
        idx = bisect_right(self._starts, seq) - 1
        if idx < 0:
            raise ValueError("slice below retained stream window")
        slices: List[RecordSlice] = []
        end = seq + length
        while idx < len(self._records):
            start = self._starts[idx]
            record = self._records[idx]
            if start >= end:
                break
            rec_end = start + record.wire_len
            lo = max(seq, start)
            hi = min(end, rec_end)
            if hi > lo:
                slices.append(RecordSlice(record=record, offset=lo - start,
                                          length=hi - lo))
            idx += 1
        return tuple(slices)

    def release(self, upto_seq: int) -> None:
        """Drop records wholly below ``upto_seq`` (they are ACKed)."""
        keep = 0
        while (keep < len(self._records)
               and self._starts[keep] + self._records[keep].wire_len <= upto_seq):
            keep += 1
        if keep:
            del self._records[:keep]
            del self._starts[:keep]
            self._base_index += keep

    def retained_records(self) -> int:
        """Number of records currently held (for tests and memory checks)."""
        return len(self._records)


class ReceiveBuffer:
    """In-order reassembly with optional duplicate re-delivery.

    Retransmitted segments always reuse the boundaries of their first
    transmission, so reassembly works on whole segments.  When
    ``deliver_duplicates`` is on, copies of already-delivered spans are
    handed to the application flagged ``dup=True`` -- the mode that
    reproduces the paper's observed re-serving of objects whose GET was
    retransmitted (Fig. 4).
    """

    def __init__(self, deliver: Callable[[Tuple[RecordSlice, ...], bool], None],
                 deliver_duplicates: bool = False):
        self._deliver = deliver
        self.deliver_duplicates = deliver_duplicates
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, Tuple[int, Tuple[RecordSlice, ...]]] = {}
        self.duplicate_segments = 0
        self.out_of_order_segments = 0

    def on_segment(self, seq: int, length: int,
                   slices: Tuple[RecordSlice, ...]) -> bool:
        """Process one data segment.

        Returns ``True`` when the segment advanced ``rcv_nxt`` (in-order
        data), ``False`` for duplicates and out-of-order arrivals (the
        caller acks either way; repeated acks at the same ``rcv_nxt``
        are the dup-ACKs the sender counts).
        """
        if length <= 0:
            return False
        if seq + length <= self.rcv_nxt:
            self.duplicate_segments += 1
            if self.deliver_duplicates and slices:
                self._deliver(slices, True)
            return False
        if seq > self.rcv_nxt:
            self.out_of_order_segments += 1
            self._out_of_order.setdefault(seq, (length, slices))
            return False

        # In-order (seq == rcv_nxt; partial overlaps cannot occur because
        # retransmissions preserve segment boundaries).
        self.rcv_nxt = seq + length
        self._deliver(slices, False)
        self._drain()
        return True

    def _drain(self) -> None:
        while self.rcv_nxt in self._out_of_order:
            length, slices = self._out_of_order.pop(self.rcv_nxt)
            self.rcv_nxt += length
            self._deliver(slices, False)
        # Drop any buffered segments the cumulative point ran past.
        stale = [s for s in self._out_of_order
                 if s + self._out_of_order[s][0] <= self.rcv_nxt]
        for s in stale:
            del self._out_of_order[s]

    def buffered_segments(self) -> int:
        """Out-of-order segments currently parked."""
        return len(self._out_of_order)

"""Reno congestion control.

Implements the three mechanisms whose interaction the paper leans on:

* **slow start / congestion avoidance** -- determines object drain time,
  and therefore whether a spaced-out GET arrives after the previous
  object finished;
* **fast retransmit / fast recovery** -- triggered by the reordering the
  adversary's jitter creates, producing the retransmission storm of
  Table I;
* **timeout response** -- cwnd collapse plus RTO backoff, which after the
  adversary's drop burst gives the server a quiet window to serve the
  re-requested object alone (Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CongestionStats:
    """Counters for congestion-control events."""

    fast_retransmits: int = 0
    timeouts: int = 0
    recoveries_completed: int = 0
    spurious_undos: int = 0


class RenoCongestionControl:
    """Byte-counted TCP Reno."""

    def __init__(self, mss: int, init_cwnd_segments: int = 10,
                 cwnd_cap_bytes: int = 1 << 20,
                 initial_ssthresh: int = 0):
        self.mss = mss
        self.initial_cwnd = mss * init_cwnd_segments
        self.cwnd = self.initial_cwnd
        # Real stacks seed ssthresh from cached path metrics
        # (tcp_metrics); 0 means "no history" (slow start to the cap).
        self.ssthresh = initial_ssthresh if initial_ssthresh > 0 else cwnd_cap_bytes
        self.cwnd_cap = cwnd_cap_bytes
        self.in_recovery = False
        self.stats = CongestionStats()

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh and not self.in_recovery

    def on_ack(self, newly_acked: int) -> None:
        """New cumulative data acknowledged outside recovery."""
        if newly_acked <= 0:
            return
        if self.in_slow_start:
            self.cwnd += min(newly_acked, self.mss)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)
        self.cwnd = min(self.cwnd, self.cwnd_cap)

    def on_fast_retransmit(self, flight_size: int) -> None:
        """Third duplicate ACK: halve and enter fast recovery."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self.stats.fast_retransmits += 1

    def on_dup_ack_in_recovery(self) -> None:
        """Window inflation for each further duplicate ACK."""
        if self.in_recovery:
            self.cwnd = min(self.cwnd + self.mss, self.cwnd_cap)

    def on_recovery_exit(self) -> None:
        """ACK covering the recovery point: deflate to ssthresh."""
        if self.in_recovery:
            self.in_recovery = False
            self.cwnd = self.ssthresh
            self.stats.recoveries_completed += 1

    def on_idle_restart(self) -> None:
        """Congestion window validation (RFC 2861, simplified).

        After an idle period the ACK clock is gone, so the sender may
        not blast a stale, large window; it restarts from the initial
        window.  This collapse is what keeps post-idle page bursts
        (the aux objects after the 500 ms think time, the emblem images
        after JS execution) window-limited -- the regime in which
        HTTP/2 round-robin scheduling visibly interleaves objects.
        """
        self.cwnd = min(self.cwnd, self.initial_cwnd)
        self.in_recovery = False

    def on_timeout(self, flight_size: int) -> None:
        """RTO fired: collapse to one segment, re-enter slow start."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.stats.timeouts += 1

    def undo(self, cwnd: int, ssthresh: int) -> None:
        """Eifel/F-RTO undo: the timeout was spurious (the original
        segment arrived, merely delayed); restore the saved state."""
        self.cwnd = min(cwnd, self.cwnd_cap)
        self.ssthresh = ssthresh
        self.stats.spurious_undos += 1

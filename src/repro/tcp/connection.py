"""TCP connection state machine and per-host stack.

The model keeps the mechanisms the attack depends on at full fidelity
(ACK clocking, duplicate ACKs, fast retransmit, RTO with backoff, Reno
windows, reassembly) and simplifies what the attack never touches
(checksums, urgent data, window scaling negotiation, time-wait).

Connection teardown is a single FIN exchange: ``close()`` flushes
nothing and simply signals the peer, since page-load experiments abandon
connections rather than closing them gracefully.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.simnet.engine import EventHandle, Simulator
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, Packet
from repro.tcp.buffer import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.rto import RtoEstimator
from repro.tcp.segment import RecordSlice, TcpSegment

# Connection states (simplified).
CLOSED = "closed"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"


@dataclass
class TcpConfig:
    """Tunables for one connection (both ends should agree on MSS)."""

    mss: int = 1400
    init_cwnd_segments: int = 10
    cwnd_cap_bytes: int = 1 << 20
    #: Slow-start threshold seeded from cached path metrics (0 = none).
    initial_ssthresh_bytes: int = 0
    rwnd_bytes: int = 1 << 20
    min_rto_s: float = 0.2
    max_rto_s: float = 60.0
    initial_rto_s: float = 1.0
    #: Max exponential-backoff multiplier.  Keeping this low models the
    #: persistent sub-second probing (TLP re-arming, RACK) of modern
    #: stacks under a bursty-loss path; textbook doubling to minutes
    #: would leave the connection dead long after the adversary's drop
    #: burst ends, which real stacks do not do.
    rto_backoff_cap: int = 2
    syn_rto_s: float = 1.0
    #: Re-deliver retransmitted spans to the application flagged as
    #: duplicates.  On the *server*, this reproduces the paper's observed
    #: re-serving of objects whose GET was retransmitted (Fig. 4).
    deliver_duplicates: bool = False
    #: Unsent-backlog threshold below which ``on_send_space`` fires.
    send_space_watermark_bytes: int = 4 * 1400
    #: Tail-loss probe (RFC 8985 flavour): retransmit the newest unacked
    #: segment after ~2 SRTT of silence instead of waiting a full RTO.
    #: Without it, a single dropped burst tail stalls the connection for
    #: hundreds of milliseconds and unrelated responses convoy up behind
    #: it.
    enable_tlp: bool = True
    #: RACK-lite: when a new cumulative ACK arrives and the segment now
    #: at the front of the window was last sent more than ~SRTT ago, it
    #: is presumed lost and retransmitted immediately (one per ACK).
    #: This is the SACK/RACK recovery pipeline of modern stacks -- holes
    #: clear at one per RTT instead of one per RTO, which is what lets a
    #: connection shrug off the adversary's drop burst in about a second.
    enable_rack: bool = True


@dataclass
class TcpConnStats:
    """Per-connection counters used by the experiments."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0
    retransmits_fast: int = 0
    retransmits_timeout: int = 0
    spurious_retransmits_detected: int = 0
    dup_acks_received: int = 0
    dup_acks_sent: int = 0

    @property
    def retransmits(self) -> int:
        return self.retransmits_fast + self.retransmits_timeout


@dataclass
class _SegmentMeta:
    length: int
    slices: tuple
    first_sent: float
    last_sent: float = 0.0
    retx_count: int = 0


class TcpConnection:
    """One full-duplex connection endpoint."""

    def __init__(self, stack: "TcpStack", remote_addr: str, local_port: int,
                 remote_port: int, config: TcpConfig, role: str):
        self.stack = stack
        self.sim = stack.sim
        self.host = stack.host
        self.remote_addr = remote_addr
        self.local_port = local_port
        self.remote_port = remote_port
        self.config = config
        self.role = role
        self.state = CLOSED
        self.stats = TcpConnStats()

        # Sender side.
        self.send_buffer = SendBuffer()
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_rwnd = config.rwnd_bytes
        self.cc = RenoCongestionControl(config.mss, config.init_cwnd_segments,
                                        config.cwnd_cap_bytes,
                                        config.initial_ssthresh_bytes)
        self.rto = RtoEstimator(config.min_rto_s, config.max_rto_s,
                                config.initial_rto_s,
                                backoff_cap=config.rto_backoff_cap)
        self._sent: Dict[int, _SegmentMeta] = {}
        self._dup_acks = 0
        self._recover_point = 0
        self._rto_timer: Optional[EventHandle] = None
        self._syn_timer: Optional[EventHandle] = None
        self._syn_attempts = 0

        # Receiver side.
        self.receive_buffer = ReceiveBuffer(
            self._deliver_to_app, deliver_duplicates=config.deliver_duplicates)

        # Application hooks.
        self.on_established: Optional[Callable[["TcpConnection"], None]] = None
        self.on_deliver: Optional[Callable[[tuple, bool], None]] = None
        self.on_send_space: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[["TcpConnection"], None]] = None
        self._send_space_pending = False
        self._closed_signalled = False
        self._last_ack_sent = -1
        self._last_transmit_at = 0.0
        self._tlp_armed_probe = False
        self._pending_collapse = None

    # -- public application interface ------------------------------------

    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    @property
    def flight_size(self) -> int:
        """Unacknowledged bytes in flight."""
        return self.snd_nxt - self.snd_una

    @property
    def unsent_backlog(self) -> int:
        """Bytes written by the application but not yet transmitted."""
        return self.send_buffer.total_written - self.snd_nxt

    def send_record(self, record) -> None:
        """Append one TLS record to the outgoing stream and push data."""
        if self.state == CLOSED:
            raise RuntimeError("send on closed connection")
        self.send_buffer.write(record)
        self._try_send()

    def close(self) -> None:
        """Signal the peer and tear the connection down immediately."""
        if self.state == CLOSED:
            return
        self._emit(self._make_segment(fin=True))
        self._teardown()

    def abort(self) -> None:
        """Tear down locally without notifying the peer."""
        self._teardown()

    # -- connection establishment ----------------------------------------

    def _start_connect(self) -> None:
        self.state = SYN_SENT
        self._send_syn()

    def _send_syn(self) -> None:
        self._syn_attempts += 1
        seg = self._make_segment(syn=True, is_ack=False)
        seg.retx_count = self._syn_attempts - 1
        self._emit(seg)
        timeout = self.config.syn_rto_s * (2 ** (self._syn_attempts - 1))
        self._syn_timer = self.sim.schedule(timeout, self._on_syn_timeout)

    def _on_syn_timeout(self) -> None:
        if self.state in (SYN_SENT, SYN_RCVD):
            if self._syn_attempts >= 6:
                self._teardown()
                return
            if self.state == SYN_SENT:
                self._send_syn()
            else:
                self._send_syn_ack()

    def _send_syn_ack(self) -> None:
        self._syn_attempts += 1
        seg = self._make_segment(syn=True)
        seg.retx_count = max(0, self._syn_attempts - 1)
        self._emit(seg)
        timeout = self.config.syn_rto_s * (2 ** (self._syn_attempts - 1))
        self._syn_timer = self.sim.schedule(timeout, self._on_syn_timeout)

    def _become_established(self) -> None:
        if self._syn_timer is not None:
            self._syn_timer.cancel()
            self._syn_timer = None
        self.state = ESTABLISHED
        if self.on_established is not None:
            callback, self.on_established = self.on_established, None
            callback(self)

    # -- segment ingress ---------------------------------------------------

    def handle_segment(self, segment: TcpSegment) -> None:
        """Entry point for every segment demuxed to this connection."""
        self.stats.segments_received += 1
        if self.stack.probe is not None:
            self.stack.probe(self, "recv", segment)

        if segment.rst or segment.fin:
            self._teardown()
            return

        if segment.syn:
            self._handle_syn(segment)
            return

        if self.state == SYN_SENT:
            # Data/ACK before handshake completes: ignore.
            return
        if self.state == SYN_RCVD and segment.is_ack:
            self._become_established()
        if self.state != ESTABLISHED:
            return

        self._process_ack(segment)
        if segment.payload_len > 0:
            self.receive_buffer.on_segment(segment.seq, segment.payload_len,
                                           segment.slices)
            self._send_pure_ack(echo_retx=segment.retx_count)
        self._try_send()
        self._maybe_signal_send_space()

    def _handle_syn(self, segment: TcpSegment) -> None:
        if self.role == "server":
            # Fresh or retransmitted SYN: (re)send SYN-ACK.
            if self.state == CLOSED:
                self.state = SYN_RCVD
            if self.state == SYN_RCVD:
                self._send_syn_ack()
        else:
            # SYN-ACK from the server.
            if self.state == SYN_SENT and segment.is_ack:
                self._become_established()
                self._send_pure_ack()
                self._try_send()

    # -- ACK processing -----------------------------------------------------

    def _process_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack_no
        if ack > self.snd_nxt:
            return  # Acks data we never sent; ignore.
        if ack > self.snd_una:
            self._on_new_ack(ack, echo_retx=segment.ts_echo_retx)
        elif (ack == self.snd_una and segment.payload_len == 0
              and self.flight_size > 0 and not segment.syn):
            self._on_dup_ack()

    def _on_new_ack(self, ack: int, echo_retx: int = 0) -> None:
        newly_acked = ack - self.snd_una

        # F-RTO (RFC 5682 flavour): the window collapse for a timeout is
        # deferred until the first ACK past the retransmitted segment
        # shows what really happened.  An echo of the *original*
        # transmission (echo_retx == 0) means the path was delaying, not
        # dropping: keep the window (and per Eifel response, back the
        # RTO off so we stop retransmitting into the delay).  An echo of
        # the retransmission means genuine loss: apply the collapse now.
        # Without this, a client whose GETs sit in the adversary's
        # spacing queue strangles its own window and starts coalescing
        # requests into shared segments.
        if self._pending_collapse is not None and ack > self._pending_collapse[0]:
            _, flight = self._pending_collapse
            self._pending_collapse = None
            if echo_retx == 0:
                self.rto.on_spurious_timeout()
                self.stats.spurious_retransmits_detected += 1
            else:
                self.cc.on_timeout(flight)

        # RTT sampling emulates TCP timestamps: the echo comes from the
        # transmission that *triggered* this ack, i.e. the most recently
        # sent segment the cumulative point covers.  (Classic Karn-only
        # sampling poisons SRTT after loss recovery: a cumulative jump
        # over out-of-order-buffered segments would sample the whole
        # outage as one giant RTT.)
        latest_sent = None
        seq = self.snd_una
        while seq < ack:
            meta = self._sent.get(seq)
            if meta is None:
                break
            end = seq + meta.length
            if end <= ack:
                if latest_sent is None or meta.last_sent > latest_sent:
                    latest_sent = meta.last_sent
                del self._sent[seq]
            seq = end
        if latest_sent is not None:
            self.rto.on_rtt_sample(max(0.0, self.sim.now - latest_sent))

        self.snd_una = ack
        self.send_buffer.release(ack)
        self.rto.on_new_ack()
        self._dup_acks = 0
        self._tlp_armed_probe = False

        if self.cc.in_recovery:
            if ack >= self._recover_point:
                self.cc.on_recovery_exit()
            else:
                # NewReno partial ack: retransmit the next hole.
                self._retransmit(self.snd_una, reason="fast")
        else:
            self.cc.on_ack(newly_acked)
            if self.config.enable_rack and self.flight_size > 0:
                # Under normal ACK clocking the new head was sent ~1 RTT
                # ago; only holes left over from an outage are much
                # staler than that.  Retransmit a burst of stale
                # segments per ACK (SACK-style recovery pipelines many
                # holes per RTT instead of one per RTO).
                stale_after = max(0.25, 2.5 * self.rto.srtt)
                seq = self.snd_una
                burst = 0
                while burst < 10:
                    meta = self._sent.get(seq)
                    if meta is None:
                        break
                    if self.sim.now - meta.last_sent <= stale_after:
                        break
                    self._retransmit(seq, reason="fast")
                    seq += meta.length
                    burst += 1

        self._restart_rto_timer()
        self._try_send()
        self._maybe_signal_send_space()

    def _on_dup_ack(self) -> None:
        self.stats.dup_acks_received += 1
        self._dup_acks += 1
        if self.cc.in_recovery:
            self.cc.on_dup_ack_in_recovery()
            self._try_send()
        elif self._dup_acks == 3:
            self.cc.on_fast_retransmit(self.flight_size)
            self._recover_point = self.snd_nxt
            self._retransmit(self.snd_una, reason="fast")

    # -- transmission --------------------------------------------------------

    def _try_send(self) -> None:
        if self.state != ESTABLISHED:
            return
        if (self.flight_size == 0 and self.unsent_backlog > 0
                and self.sim.now - self._last_transmit_at > self.rto.rto):
            self.cc.on_idle_restart()
        window = min(self.cc.cwnd, self.peer_rwnd)
        while self.unsent_backlog > 0 and self.flight_size < window:
            length = min(self.config.mss, self.unsent_backlog,
                         window - self.flight_size)
            if length <= 0:
                break
            seq = self.snd_nxt
            slices = self.send_buffer.slice_stream(seq, length)
            self._sent[seq] = _SegmentMeta(length=length, slices=slices,
                                           first_sent=self.sim.now,
                                           last_sent=self.sim.now)
            self.snd_nxt += length
            self._last_transmit_at = self.sim.now
            seg = self._make_segment(seq=seq, payload_len=length, slices=slices)
            self._emit(seg)
            self.stats.bytes_sent += length
        # Arm (do not restart) the timer: the RTO clocks the *oldest*
        # outstanding segment, so ongoing sends must not push it out.
        if self._rto_timer is None and self.flight_size > 0:
            self._restart_rto_timer()

    def _retransmit(self, seq: int, reason: str) -> None:
        meta = self._sent.get(seq)
        if meta is None:
            return
        meta.retx_count += 1
        meta.last_sent = self.sim.now
        if reason == "fast":
            self.stats.retransmits_fast += 1
        else:
            self.stats.retransmits_timeout += 1
        seg = self._make_segment(seq=seq, payload_len=meta.length,
                                 slices=meta.slices)
        seg.retx_count = meta.retx_count
        self._emit(seg)

    def _send_pure_ack(self, echo_retx: int = 0) -> None:
        ack_value = self.receive_buffer.rcv_nxt
        if ack_value == self._last_ack_sent:
            self.stats.dup_acks_sent += 1
        self._last_ack_sent = ack_value
        ack = self._make_segment()
        ack.ts_echo_retx = echo_retx
        self._emit(ack)

    def _make_segment(self, seq: int = 0, payload_len: int = 0,
                      slices: tuple = (), syn: bool = False, fin: bool = False,
                      rst: bool = False, is_ack: bool = True) -> TcpSegment:
        return TcpSegment(
            src=self.host.address, dst=self.remote_addr,
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq, ack_no=self.receive_buffer.rcv_nxt,
            payload_len=payload_len, slices=slices,
            syn=syn, fin=fin, rst=rst, is_ack=is_ack,
        )

    def _emit(self, segment: TcpSegment) -> None:
        self.stats.segments_sent += 1
        if self.stack.probe is not None:
            self.stack.probe(self, "send", segment)
        packet = Packet(src=self.host.address, dst=self.remote_addr,
                        size=HEADER_OVERHEAD + segment.payload_len,
                        segment=segment)
        self.host.send_packet(packet)

    # -- RTO / TLP timer ----------------------------------------------------

    def _restart_rto_timer(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.flight_size <= 0 or self.state != ESTABLISHED:
            return
        if (self.config.enable_tlp and not self._tlp_armed_probe
                and not self.cc.in_recovery and self.rto.srtt > 0):
            pto = min(max(2.0 * self.rto.srtt, 0.01), self.rto.rto)
            self._rto_timer = self.sim.schedule(pto, self._on_tlp)
        else:
            self._rto_timer = self.sim.schedule(self.rto.rto, self._on_rto)

    def _on_tlp(self) -> None:
        """Probe timeout: retransmit the newest unacked segment."""
        self._rto_timer = None
        if self.flight_size <= 0 or self.state != ESTABLISHED:
            return
        newest = max(self._sent) if self._sent else None
        if newest is not None:
            self._retransmit(newest, reason="timeout")
        self._tlp_armed_probe = True
        self._restart_rto_timer()

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.flight_size <= 0 or self.state != ESTABLISHED:
            return
        if self._pending_collapse is None:
            self._pending_collapse = (self.snd_una, self.flight_size)
        self.rto.on_timeout()
        self._dup_acks = 0
        self._retransmit(self.snd_una, reason="timeout")
        self._restart_rto_timer()

    # -- delivery and teardown ----------------------------------------------

    def _deliver_to_app(self, slices: tuple, dup: bool) -> None:
        if self.on_deliver is not None:
            self.on_deliver(slices, dup)

    def _maybe_signal_send_space(self) -> None:
        if (self.on_send_space is None or self._send_space_pending
                or self.unsent_backlog >= self.config.send_space_watermark_bytes):
            return
        self._send_space_pending = True
        self.sim.schedule(0.0, self._fire_send_space)

    def _fire_send_space(self) -> None:
        self._send_space_pending = False
        if (self.on_send_space is not None and self.state == ESTABLISHED
                and self.unsent_backlog < self.config.send_space_watermark_bytes):
            self.on_send_space()

    def _teardown(self) -> None:
        if self.state == CLOSED and self._closed_signalled:
            return
        self.state = CLOSED
        for timer in (self._rto_timer, self._syn_timer):
            if timer is not None:
                timer.cancel()
        self._rto_timer = None
        self._syn_timer = None
        self.stack._forget(self)
        if not self._closed_signalled:
            self._closed_signalled = True
            if self.on_closed is not None:
                self.on_closed(self)


class TcpStack:
    """Per-host TCP: demux, listeners, and connection creation."""

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[TcpConfig] = None):
        self.sim = sim
        self.host = host
        self.config = config or TcpConfig()
        self._connections: Dict[Tuple[int, str, int], TcpConnection] = {}
        self._listeners: Dict[int, Callable[[TcpConnection], None]] = {}
        self._ephemeral = itertools.count(40000)
        #: Observation hook: ``probe(conn, direction, segment)`` fires on
        #: every segment this stack's connections emit ("send") or accept
        #: ("recv").  None (the default) costs one test per segment.
        self.probe: Optional[Callable[[TcpConnection, str, TcpSegment], None]] = None
        host.register_transport(self)

    def listen(self, port: int, on_accept: Callable[[TcpConnection], None]) -> None:
        """Accept connections on ``port``; ``on_accept(conn)`` fires once
        the handshake completes."""
        self._listeners[port] = on_accept

    def connect(self, remote_addr: str, remote_port: int,
                on_established: Callable[[TcpConnection], None],
                config: Optional[TcpConfig] = None) -> TcpConnection:
        """Open a connection; returns the (not yet established) endpoint."""
        local_port = next(self._ephemeral)
        conn = TcpConnection(self, remote_addr, local_port, remote_port,
                             config or self.config, role="client")
        conn.on_established = on_established
        self._connections[(local_port, remote_addr, remote_port)] = conn
        conn._start_connect()
        return conn

    def handle_packet(self, packet: Packet) -> None:
        """Host ingress: demux the TCP segment to its connection."""
        segment = packet.segment
        if not isinstance(segment, TcpSegment):
            return
        key = (segment.dst_port, segment.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is None:
            if segment.syn and segment.dst_port in self._listeners:
                conn = self._accept(segment)
            else:
                return
        conn.handle_segment(segment)

    def _accept(self, syn_segment: TcpSegment) -> TcpConnection:
        conn = TcpConnection(self, syn_segment.src, syn_segment.dst_port,
                             syn_segment.src_port, self.config, role="server")
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        self._connections[key] = conn
        on_accept = self._listeners[syn_segment.dst_port]
        conn.on_established = on_accept
        return conn

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        self._connections.pop(key, None)

    def active_connections(self) -> int:
        """Number of live connections in the demux table."""
        return len(self._connections)

"""Retransmission-timeout estimation (Jacobson/Karn, RFC 6298 shape).

The RTO is central to two of the paper's observations: the adversary's
spacing queue holds GET requests past the client's RTO, producing
spurious retransmissions (Table I), and bandwidth throttling inflates
measured RTTs, raising the RTO and damping those retransmissions
(Fig. 5).  After loss-triggered timeouts the exponential backoff is what
gives the server a quiet, serialized window post-reset (Section IV-D).
"""

from __future__ import annotations


class RtoEstimator:
    """SRTT/RTTVAR tracker with exponential backoff."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 1.0, backoff_cap: int = 16):
        self.min_rto = min_rto
        self.max_rto = max_rto
        #: Cap on the exponential backoff multiplier.  Modern stacks
        #: (tail-loss probes, RACK) keep probing a dead-looking path far
        #: more aggressively than textbook exponential backoff; without a
        #: cap, a 6-second 80% drop burst leaves the next retransmission
        #: ~14 s out and nothing ever recovers.
        self.backoff_cap = backoff_cap
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._have_sample = False
        self._base_rto = initial_rto
        self._backoff = 1

    def on_rtt_sample(self, rtt: float) -> None:
        """Fold in an RTT sample from a never-retransmitted segment (Karn)."""
        if rtt < 0:
            raise ValueError("negative RTT sample")
        if not self._have_sample:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            self._have_sample = True
        else:
            err = abs(self.srtt - rtt)
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * err
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._base_rto = self._clamp(self.srtt + max(4 * self.rttvar, 0.001))

    def on_timeout(self) -> None:
        """Exponential backoff after an expiry."""
        self._backoff = min(self._backoff * 2, self.backoff_cap)

    def on_spurious_timeout(self) -> None:
        """Eifel response (RFC 4015): the path is delaying, not losing --
        grow the base RTO so we stop retransmitting into the delay.
        This is the paper's observation that after the reset "the
        client's TCP also increases the timeout"."""
        self._base_rto = self._clamp(self._base_rto * 2.0)

    def on_new_ack(self) -> None:
        """Progress resets the backoff multiplier."""
        self._backoff = 1

    @property
    def rto(self) -> float:
        """Current timeout value in seconds."""
        return self._clamp(self._base_rto * self._backoff)

    def _clamp(self, value: float) -> float:
        return max(self.min_rto, min(self.max_rto, value))

"""TCP segments and the record slices they carry.

Instead of shuttling literal bytes, the simulation moves *annotated byte
counts*: a segment knows which spans of which TLS records it carries.
That is enough to (a) reconstruct exactly what a wire sniffer sees
(record headers are cleartext) and (b) let the receiving TLS session
reassemble records for the application, without serializing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.simnet.packet import RecordInfo, TcpWireView


@dataclass(frozen=True, slots=True)
class RecordSlice:
    """A contiguous span of one TLS record carried by one segment.

    ``record`` must expose ``record_id``, ``content_type`` and
    ``wire_len``; see :class:`repro.tls.record.TlsRecord`.
    """

    record: object
    offset: int
    length: int

    @property
    def is_start(self) -> bool:
        return self.offset == 0

    @property
    def is_end(self) -> bool:
        return self.offset + self.length == self.record.wire_len

    def info(self) -> RecordInfo:
        """The cleartext-visible description of this slice."""
        return RecordInfo(
            record_id=self.record.record_id,
            content_type=self.record.content_type,
            record_wire_len=self.record.wire_len,
            bytes_in_packet=self.length,
            is_start=self.is_start,
            is_end=self.is_end,
        )


@dataclass(slots=True)
class TcpSegment:
    """One TCP segment (the payload of one simulated packet)."""

    src: str
    dst: str
    src_port: int
    dst_port: int
    seq: int = 0
    ack_no: int = 0
    payload_len: int = 0
    slices: Tuple[RecordSlice, ...] = ()
    syn: bool = False
    fin: bool = False
    rst: bool = False
    is_ack: bool = True
    retx_count: int = 0
    #: For pure ACKs: the ``retx_count`` of the data segment whose
    #: arrival triggered this ACK -- the moral equivalent of the TCP
    #: timestamp echo, letting the sender recognise a *spurious*
    #: retransmission (the original arrived after all; Eifel/F-RTO).
    ts_echo_retx: int = 0

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_len

    @property
    def is_retransmit(self) -> bool:
        return self.retx_count > 0

    def wire_view(self):
        """Return ``(TcpWireView, tuple[RecordInfo], is_retransmit)``."""
        tcp_view = TcpWireView(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.seq,
            ack=self.ack_no,
            payload_len=self.payload_len,
            syn=self.syn,
            fin=self.fin,
            rst=self.rst,
            is_ack=self.is_ack,
        )
        infos = tuple(s.info() for s in self.slices)
        return tcp_view, infos, self.is_retransmit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(f for f, on in
                        (("S", self.syn), ("F", self.fin), ("R", self.rst)) if on)
        return (f"TcpSegment({self.src}:{self.src_port}->{self.dst}:{self.dst_port}"
                f" seq={self.seq} len={self.payload_len} ack={self.ack_no}"
                f" flags={flags or '-'} retx={self.retx_count})")

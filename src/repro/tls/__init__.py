"""Simulated TLS record layer.

Size-preserving model of TLS over TCP: records have cleartext headers
(content type + length) and opaque bodies.  The adversary's only uses of
TLS are the ``content_type == 23`` filter and record sizes, both of
which this model reproduces exactly; no actual cryptography is needed
or implemented.
"""

from repro.tls.record import (
    AEAD_OVERHEAD,
    APPLICATION_DATA,
    HANDSHAKE,
    RECORD_HEADER_LEN,
    TlsRecord,
)
from repro.tls.session import HandshakeProfile, TlsSession

__all__ = [
    "AEAD_OVERHEAD",
    "APPLICATION_DATA",
    "HANDSHAKE",
    "HandshakeProfile",
    "RECORD_HEADER_LEN",
    "TlsRecord",
    "TlsSession",
]

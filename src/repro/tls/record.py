"""TLS records."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Tuple

#: TLS record header (cleartext): content type, version, length.
RECORD_HEADER_LEN = 5
#: AEAD authentication tag added to every encrypted record body.
AEAD_OVERHEAD = 16

#: Content types (the wire values, visible to any on-path observer).
CHANGE_CIPHER_SPEC = 20
ALERT = 21
HANDSHAKE = 22
APPLICATION_DATA = 23

_record_ids = itertools.count(1)


@dataclass(slots=True)
class TlsRecord:
    """One TLS record riding the TCP byte stream.

    ``payload_len`` is the plaintext length; ``wire_len`` adds the
    cleartext header and the AEAD tag, and is the size an observer can
    read off the record header.  ``payload`` carries the simulated
    plaintext (HTTP/2 frames for application data) -- endpoints may read
    it, the adversary may not.
    """

    content_type: int
    payload_len: int
    payload: Any = None
    record_id: int = field(default_factory=lambda: next(_record_ids))

    def __post_init__(self) -> None:
        if self.payload_len < 0:
            raise ValueError("negative record payload length")

    @property
    def wire_len(self) -> int:
        return RECORD_HEADER_LEN + self.payload_len + AEAD_OVERHEAD

    @property
    def is_application_data(self) -> bool:
        return self.content_type == APPLICATION_DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TlsRecord(id={self.record_id}, type={self.content_type},"
                f" wire_len={self.wire_len})")

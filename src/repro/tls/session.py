"""TLS session: handshake byte exchange and record (re)assembly.

The handshake is modelled as the usual three flights with realistic
sizes, so that GET counting by the adversary starts from the same
record-index offsets a real capture would show.  Application records are
reassembled from the TCP slice deliveries; duplicate deliveries (from
retransmitted segments, when the connection runs in duplicate-delivery
mode) surface to the application flagged ``dup=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.tcp.connection import TcpConnection
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, TlsRecord


@dataclass
class HandshakeProfile:
    """Record payload sizes for each handshake flight (bytes)."""

    client_hello: int = 482
    server_flight: Tuple[int, ...] = (1388, 1388, 1021)
    client_finished: int = 58


class TlsSession:
    """One endpoint of a TLS connection over a :class:`TcpConnection`."""

    def __init__(self, conn: TcpConnection, role: str,
                 profile: Optional[HandshakeProfile] = None):
        if role not in ("client", "server"):
            raise ValueError(f"bad role {role!r}")
        self.conn = conn
        self.role = role
        self.profile = profile or HandshakeProfile()
        self.established = False

        #: Called once the handshake completes.
        self.on_established: Optional[Callable[["TlsSession"], None]] = None
        #: Called for every complete application record:
        #: ``on_application_record(record, dup)``.
        self.on_application_record: Optional[Callable[[TlsRecord, bool], None]] = None

        self._pending_bytes: Dict[int, int] = {}
        self._pending_record: Dict[int, TlsRecord] = {}
        self._dup_bytes: Dict[int, int] = {}
        self._handshake_records_seen = 0
        self._handshake_started = False
        conn.on_deliver = self._on_deliver

        if role == "client" and conn.established:
            self.start_handshake()

    # -- handshake ---------------------------------------------------------

    def start_handshake(self) -> None:
        """Client: send the ClientHello.  (Server waits.)  Idempotent:
        the constructor auto-starts on an established connection and
        callers may also invoke this explicitly."""
        if self.role != "client":
            raise RuntimeError("only the client initiates the handshake")
        if self._handshake_started:
            return
        self._handshake_started = True
        self._send_handshake_record(self.profile.client_hello)

    def _send_handshake_record(self, payload_len: int) -> None:
        record = TlsRecord(content_type=HANDSHAKE, payload_len=payload_len,
                           payload="handshake")
        self.conn.send_record(record)

    def _on_handshake_record(self) -> None:
        self._handshake_records_seen += 1
        if self.role == "server":
            if self._handshake_records_seen == 1:
                # Got ClientHello: send the ServerHello..Finished flight.
                for size in self.profile.server_flight:
                    self._send_handshake_record(size)
            elif self._handshake_records_seen == 2:
                # Got client Finished.
                self._establish()
        else:
            if self._handshake_records_seen == len(self.profile.server_flight):
                # Full server flight received: send Finished, go live.
                self._send_handshake_record(self.profile.client_finished)
                self._establish()

    def _establish(self) -> None:
        self.established = True
        if self.on_established is not None:
            self.on_established(self)

    # -- application data -----------------------------------------------------

    def send_application(self, payload, payload_len: int) -> TlsRecord:
        """Encrypt-and-send one application record; returns the record."""
        if not self.established:
            raise RuntimeError("TLS session not established")
        record = TlsRecord(content_type=APPLICATION_DATA,
                           payload_len=payload_len, payload=payload)
        self.conn.send_record(record)
        return record

    # -- reassembly --------------------------------------------------------------

    def _on_deliver(self, slices: tuple, dup: bool) -> None:
        for record_slice in slices:
            record = record_slice.record
            rid = record.record_id
            if dup:
                got = self._dup_bytes.get(rid, 0) + record_slice.length
                if got >= record.wire_len:
                    self._dup_bytes.pop(rid, None)
                    self._dispatch(record, dup=True)
                else:
                    self._dup_bytes[rid] = got
            else:
                got = self._pending_bytes.get(rid, 0) + record_slice.length
                if got >= record.wire_len:
                    self._pending_bytes.pop(rid, None)
                    self._dispatch(record, dup=False)
                else:
                    self._pending_bytes[rid] = got

    def _dispatch(self, record: TlsRecord, dup: bool) -> None:
        if record.content_type == HANDSHAKE:
            if not dup:
                self._on_handshake_record()
            return
        if record.content_type == APPLICATION_DATA:
            if self.on_application_record is not None:
                self.on_application_record(record, dup)

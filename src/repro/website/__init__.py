"""Website models.

* :mod:`repro.website.objects` -- web objects and dynamic generation.
* :mod:`repro.website.sitemap` -- a site (path -> object) plus page-load
  structure (which objects a page pulls in, and when).
* :mod:`repro.website.isidewith` -- the synthetic reconstruction of the
  paper's target, the isidewith.com 2020 Presidential Quiz result page.
* :mod:`repro.website.generator` -- random site generation for
  fingerprinting datasets.
"""

from repro.website.generator import RandomSiteBuilder
from repro.website.isidewith import (
    PARTIES,
    IsideWithSite,
    build_isidewith_site,
)
from repro.website.objects import GenerationProfile, SurveyResultGeneration, WebObject
from repro.website.streaming import StreamingSite, Viewer
from repro.website.sitemap import Site

__all__ = [
    "GenerationProfile",
    "IsideWithSite",
    "PARTIES",
    "RandomSiteBuilder",
    "Site",
    "StreamingSite",
    "Viewer",
    "SurveyResultGeneration",
    "WebObject",
    "build_isidewith_site",
]

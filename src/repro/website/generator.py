"""Random website generation for fingerprinting datasets.

Builds a site with ``n_pages`` pages, each with its own HTML document
and a sampled set of embedded objects.  Object sizes are drawn so that
most pages contain at least one uniquely sized object -- the property
(Section II of the paper) that makes the size side-channel decisive.
Used by the :mod:`repro.analysis` fingerprinting experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.website.objects import WebObject
from repro.website.sitemap import PageLoadPlan, PlannedRequest, Site


@dataclass
class GeneratedPage:
    """One generated page: its HTML path and embedded object paths."""

    page_id: int
    html_path: str
    embedded: List[str]


class RandomSiteBuilder:
    """Deterministic random site construction."""

    def __init__(self, n_pages: int = 12, objects_per_page: int = 8,
                 shared_objects: int = 6, seed: int = 7,
                 min_object_size: int = 2_000, max_object_size: int = 60_000):
        self.n_pages = n_pages
        self.objects_per_page = objects_per_page
        self.shared_objects = shared_objects
        self.seed = seed
        self.min_object_size = min_object_size
        self.max_object_size = max_object_size

    def build(self) -> "RandomSite":
        rng = random.Random(self.seed)
        site = RandomSite(name="random-site", authority="random.example")
        used_sizes = set()

        def fresh_size() -> int:
            while True:
                size = rng.randrange(self.min_object_size, self.max_object_size)
                if size not in used_sizes:
                    used_sizes.add(size)
                    return size

        shared_paths = []
        for i in range(self.shared_objects):
            path = f"/shared/common-{i}.js"
            site.add(WebObject(path=path, size=fresh_size(),
                               content_type="application/javascript"))
            shared_paths.append(path)

        for page_id in range(self.n_pages):
            html_path = f"/page/{page_id}"
            site.add(WebObject(path=html_path, size=fresh_size(),
                               content_type="text/html", cacheable=False))
            embedded = list(shared_paths[:rng.randrange(
                0, self.shared_objects + 1)])
            for j in range(self.objects_per_page):
                path = f"/page/{page_id}/asset-{j}.png"
                site.add(WebObject(path=path, size=fresh_size(),
                                   content_type="image/png"))
                embedded.append(path)
            site.pages.append(GeneratedPage(page_id=page_id,
                                            html_path=html_path,
                                            embedded=embedded))
        return site


class RandomSite(Site):
    """A generated site with per-page load planning."""

    def __init__(self, name: str, authority: str):
        super().__init__(name, authority)
        self.pages: List[GeneratedPage] = []

    def plan_load(self, rng, page_id: int) -> PageLoadPlan:
        """Plan a load of the given page (cold cache)."""
        page = self.pages[page_id]
        html = PlannedRequest(path=page.html_path, gap_s=0.0, weight=32)
        embedded = [
            PlannedRequest(path=path, gap_s=rng.uniform(0.0002, 0.004),
                           weight=16)
            for path in page.embedded
        ]
        return PageLoadPlan(
            initial=[],
            html=html,
            head_resources=embedded,
            exec_delay_s=rng.uniform(0.02, 0.08),
            meta={"page_id": page_id},
        )

"""Synthetic reconstruction of the paper's target website.

The real target is the isidewith.com "2020 Presidential Quiz" result
page.  From Section V of the paper:

* the result page HTML is ~9500 bytes and is the **6th object** the
  client downloads (five app-shell/API requests precede it),
* the HTML embeds **47 objects** (JS, CSS, images); one JS, on
  execution, requests **8 party-emblem images** of 5-16 KB in the
  user's preference order, with the tiny inter-request gaps of
  Table II,
* emblem image sizes uniquely identify the parties (the adversary has a
  pre-compiled size -> party map).

This module rebuilds that census: 5 uncacheable pre-HTML objects, the
dynamic HTML, 39 cacheable auxiliary embedded objects, and the 8
cache-busted emblem images, plus a per-load planner that samples warm
vs. cold caches and the user's party permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.website.objects import SurveyResultGeneration, WebObject
from repro.website.sitemap import PageLoadPlan, PlannedRequest, Site

#: The 8 parties of the survey, in canonical (not display) order.
PARTIES = (
    "democratic",
    "republican",
    "libertarian",
    "green",
    "constitution",
    "socialist",
    "reform",
    "transhumanist",
)

#: Emblem image sizes (bytes): 5-16 KB, unique, well separated so the
#: size side-channel is clean -- as on the real site.
PARTY_IMAGE_SIZES: Dict[str, int] = {
    "democratic": 15_632,
    "republican": 14_218,
    "libertarian": 12_805,
    "green": 11_390,
    "constitution": 10_420,
    "socialist": 8_571,
    "reform": 7_158,
    "transhumanist": 5_742,
}

#: The paper's result HTML size.
HTML_SIZE = 9_500
HTML_PATH = "/polls/results"

#: Inter-request gaps between consecutive emblem-image GETs (seconds),
#: Table II row 1 for I2..I8.
IMAGE_GAPS_S = (0.0004, 0.002, 0.0003, 0.0001, 0.0003, 0.002, 0.0005)

#: The five uncacheable pre-HTML requests (gap before each, path, bytes).
_INITIAL_OBJECTS = (
    (0.000, "/api/session", 2_833),
    (0.002, "/js/app.bundle.js", 86_207),
    (0.001, "/css/main.css", 48_442),
    (0.004, "/js/vendor.bundle.js", 124_913),
    (0.003, "/api/quiz/state", 4_871),
)

#: Result-page assets the app shell preloads as soon as it requests the
#: HTML (path, bytes): the transfers that overlap the HTML's own wire
#: window and give it its high baseline degree of multiplexing.
_PRELOAD_OBJECTS = (
    ("/js/results.chunk.js", 84_316),
    ("/css/results.css", 27_194),
)

#: Uncacheable requests the result-page JS fires in the same burst as
#: the emblem images (API call before, share-widget bundle after).
#: Their sizes deliberately avoid the +-800 B windows around the emblem
#: and HTML sizes so the adversary's size map never confuses them.
_SCRIPTED_COMPANIONS = (
    ("/api/results/summary", 4_100),
    ("/js/share-widgets.js", 17_450),
)

#: 39 cacheable auxiliary embedded objects: (path, bytes, head?).
#: Aux sizes stay outside the +-400 B identification bands around the
#: HTML and emblem sizes (5.3-16.1 KB): the paper's target-object
#: uniqueness condition (Section II, condition 2).
_AUX_OBJECTS = tuple(
    [(f"/css/theme-{i}.css", 2_900 + 550 * i, True) for i in range(4)]
    + [(f"/js/widget-{i}.js", 19_850 + 1_700 * i, True) for i in range(6)]
    + [(f"/img/icon-{i}.png", 2_050 + 180 * i, False) for i in range(16)]
    + [(f"/img/banner-{i}.jpg", 30_400 + 2_141 * i, False) for i in range(8)]
    + [(f"/fonts/face-{i}.woff2", 46_600 + 3_013 * i, False) for i in range(5)]
)


class IsideWithSite(Site):
    """The synthetic target with its per-load planner."""

    def __init__(self, fast_generation_prob: float = 0.35,
                 warm_cache_prob: float = 0.32):
        super().__init__(name="isidewith", authority="www.isidewith.com")
        self.fast_generation_prob = fast_generation_prob
        self.warm_cache_prob = warm_cache_prob

        for _, path, size in _INITIAL_OBJECTS:
            content = "application/json" if path.startswith("/api/") else (
                "text/css" if path.endswith(".css") else "application/javascript")
            self.add(WebObject(path=path, size=size, content_type=content,
                               cacheable=False))

        self.add(WebObject(
            path=HTML_PATH, size=HTML_SIZE, content_type="text/html",
            cacheable=False,
            generation=SurveyResultGeneration(fast_prob=fast_generation_prob)))

        for path, size in _PRELOAD_OBJECTS:
            content = ("text/css" if path.endswith(".css")
                       else "application/javascript")
            self.add(WebObject(path=path, size=size, content_type=content))

        for path, size in _SCRIPTED_COMPANIONS:
            content = ("application/json" if path.startswith("/api/")
                       else "application/javascript")
            self.add(WebObject(path=path, size=size, content_type=content,
                               cacheable=False))

        for path, size, _head in _AUX_OBJECTS:
            content = ("text/css" if path.endswith(".css")
                       else "application/javascript" if path.endswith(".js")
                       else "font/woff2" if path.endswith(".woff2")
                       else "image/png")
            self.add(WebObject(path=path, size=size, content_type=content))

        for party in PARTIES:
            self.add(WebObject(path=self.image_path(party),
                               size=PARTY_IMAGE_SIZES[party],
                               content_type="image/png",
                               cacheable=False))

    @staticmethod
    def image_path(party: str) -> str:
        return f"/img/emblem-{party}.png"

    def party_size_map(self) -> Dict[int, str]:
        """The adversary's pre-compiled image-size -> party map."""
        return {size: party for party, size in PARTY_IMAGE_SIZES.items()}

    # -- per-load planning ----------------------------------------------------

    def plan_load(self, rng, permutation: Optional[Sequence[str]] = None,
                  warm: Optional[bool] = None) -> PageLoadPlan:
        """Sample one volunteer's page load.

        ``permutation`` is the party preference order (sampled uniformly
        when absent -- the volunteer's survey answers); ``warm`` forces
        the cache state (sampled from ``warm_cache_prob`` when absent).
        """
        if permutation is None:
            permutation = list(PARTIES)
            rng.shuffle(permutation)
        else:
            permutation = list(permutation)
            if sorted(permutation) != sorted(PARTIES):
                raise ValueError("permutation must order exactly the 8 parties")
        if warm is None:
            warm = rng.random() < self.warm_cache_prob

        initial = [
            PlannedRequest(path=path,
                           gap_s=gap * rng.uniform(0.6, 1.8),
                           weight=32)
            for gap, path, _ in _INITIAL_OBJECTS
        ]
        html = PlannedRequest(path=HTML_PATH,
                              gap_s=rng.uniform(0.40, 0.60), weight=32)

        preload = [
            PlannedRequest(path=path, gap_s=rng.uniform(0.001, 0.004),
                           weight=28, cached=warm)
            for path, _size in _PRELOAD_OBJECTS
        ]

        head_resources: List[PlannedRequest] = []
        body_resources: List[PlannedRequest] = []
        for path, _size, is_head in _AUX_OBJECTS:
            request = PlannedRequest(
                path=path,
                gap_s=rng.uniform(0.0002, 0.003),
                weight=24 if is_head else 12,
                cached=warm,
            )
            (head_resources if is_head else body_resources).append(request)

        api_path, widget_path = (c[0] for c in _SCRIPTED_COMPANIONS)
        scripted = [PlannedRequest(path=api_path, gap_s=0.0, weight=20)]
        for i, party in enumerate(permutation):
            gap = (0.0008 if i == 0
                   else IMAGE_GAPS_S[i - 1] * rng.uniform(0.7, 1.4))
            scripted.append(PlannedRequest(path=self.image_path(party),
                                           gap_s=gap, weight=22))
        scripted.append(PlannedRequest(path=widget_path,
                                       gap_s=rng.uniform(0.0005, 0.002),
                                       weight=12))

        return PageLoadPlan(
            initial=initial,
            html=html,
            preload=preload,
            head_resources=head_resources,
            body_resources=body_resources,
            scripted=scripted,
            exec_delay_s=rng.uniform(0.45, 0.75),
            meta={"permutation": tuple(permutation), "warm": warm},
        )


def build_isidewith_site(fast_generation_prob: float = 0.35,
                         warm_cache_prob: float = 0.30) -> IsideWithSite:
    """Factory used throughout the experiments."""
    return IsideWithSite(fast_generation_prob=fast_generation_prob,
                         warm_cache_prob=warm_cache_prob)

"""Web objects and dynamic-generation profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class GenerationProfile:
    """How a dynamic object's bytes become available over time.

    ``plan(rng, size)`` returns the generation schedule as a list of
    ``(gap_before_chunk_s, chunk_bytes)`` pairs summing to ``size``.
    The first gap is measured from worker spawn.
    """

    def plan(self, rng, size: int) -> List[Tuple[float, int]]:
        raise NotImplementedError


class StaticGeneration(GenerationProfile):
    """Everything available after a fixed delay (degenerate profile)."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s

    def plan(self, rng, size: int) -> List[Tuple[float, int]]:
        return [(self.delay_s, size)]


class SurveyResultGeneration(GenerationProfile):
    """The paper's survey-result HTML: template rendering + DB queries.

    Per generation, the server is in *fast* mode with probability
    ``fast_prob`` (result already computed; short render) or *slow* mode
    (scoring queries run between chunks).  Slow-mode generations stretch
    the HTML transmission over a long window, which is what makes the
    HTML's baseline degree of multiplexing so high -- and what the
    jitter-only attack cannot beat, motivating the reset phase.
    """

    def __init__(self, fast_prob: float = 0.45, chunk_size: int = 2740,
                 fast_initial_s: Tuple[float, float] = (0.008, 0.026),
                 fast_gap_s: Tuple[float, float] = (0.0015, 0.004),
                 slow_initial_s: Tuple[float, float] = (0.025, 0.060),
                 slow_gap_s: Tuple[float, float] = (0.015, 0.050)):
        self.fast_prob = fast_prob
        self.chunk_size = chunk_size
        self.fast_initial_s = fast_initial_s
        self.fast_gap_s = fast_gap_s
        self.slow_initial_s = slow_initial_s
        self.slow_gap_s = slow_gap_s

    def plan(self, rng, size: int) -> List[Tuple[float, int]]:
        fast = rng.random() < self.fast_prob
        initial = self.fast_initial_s if fast else self.slow_initial_s
        gap = self.fast_gap_s if fast else self.slow_gap_s
        schedule: List[Tuple[float, int]] = []
        remaining = size
        first = True
        while remaining > 0:
            chunk = min(self.chunk_size, remaining)
            delay = rng.uniform(*initial) if first else rng.uniform(*gap)
            schedule.append((delay, chunk))
            remaining -= chunk
            first = False
        return schedule


@dataclass
class WebObject:
    """One addressable resource on the site."""

    path: str
    size: int
    content_type: str = "application/octet-stream"
    #: ``None`` for static objects; a profile for dynamically generated
    #: ones (which are also uncacheable).
    generation: Optional[GenerationProfile] = None
    #: Whether a browser may satisfy this object from its cache.
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object {self.path} must have positive size")

    @property
    def is_dynamic(self) -> bool:
        return self.generation is not None

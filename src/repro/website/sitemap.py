"""Sites and page-load plans.

A :class:`Site` is the server-side path -> object map.  A
:class:`PageLoadPlan` is the browser-side script of one page load: which
requests go out, when, and what triggers them.  Plans are produced by
site-specific planners (e.g.
:meth:`repro.website.isidewith.IsideWithSite.plan_load`) and executed by
:class:`repro.browser.browser.Browser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.website.objects import WebObject


@dataclass
class PlannedRequest:
    """One request in a page-load plan.

    ``gap_s`` is the think time since the previous request in the same
    phase (for the first request of a phase, since the phase trigger).
    ``cached`` requests are skipped by the browser -- they model warm
    browser caches.
    """

    path: str
    gap_s: float = 0.0
    weight: int = 16
    cached: bool = False


@dataclass
class PageLoadPlan:
    """The full script of one page load.

    Phases, in trigger order:

    1. ``initial`` -- fired at load start (the pre-HTML requests; on the
       paper's target these are the five app-shell/API calls that make
       the result HTML the 6th GET).
    2. ``html`` -- the document itself, ``html.gap_s`` after the last
       initial request was issued.
    3. ``preload`` -- issued right after the HTML request (preload
       hints baked into the app shell).
    4. ``head_resources`` -- issued when the first HTML bytes arrive
       (speculative parsing).
    5. ``body_resources`` -- issued when roughly half the HTML arrived.
    6. ``scripted`` -- issued ``exec_delay_s`` after the HTML completes
       (the JS-triggered emblem images on the paper's target).
    """

    initial: List[PlannedRequest]
    html: PlannedRequest
    #: Issued immediately after the HTML request (preload hints / service
    #: worker knowledge -- the browser does not wait for HTML bytes).
    preload: List[PlannedRequest] = field(default_factory=list)
    head_resources: List[PlannedRequest] = field(default_factory=list)
    body_resources: List[PlannedRequest] = field(default_factory=list)
    scripted: List[PlannedRequest] = field(default_factory=list)
    exec_delay_s: float = 0.1
    #: Free-form ground truth about this load (e.g. the party permutation).
    meta: Dict[str, object] = field(default_factory=dict)

    def all_requests(self) -> List[PlannedRequest]:
        """Every planned request across phases, in phase order."""
        return (list(self.initial) + [self.html] + list(self.preload)
                + list(self.head_resources) + list(self.body_resources)
                + list(self.scripted))

    def uncached_paths(self) -> List[str]:
        """Paths the browser will actually fetch."""
        return [r.path for r in self.all_requests() if not r.cached]


class Site:
    """A path -> object map served by one authority."""

    def __init__(self, name: str, authority: str):
        self.name = name
        self.authority = authority
        self._objects: Dict[str, WebObject] = {}

    def add(self, obj: WebObject) -> WebObject:
        """Register an object; path collisions are rejected."""
        if obj.path in self._objects:
            raise ValueError(f"duplicate path {obj.path}")
        self._objects[obj.path] = obj
        return obj

    def lookup(self, path: str) -> Optional[WebObject]:
        """Server-side resolution; ``None`` becomes a 404."""
        return self._objects.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> Dict[str, WebObject]:
        return dict(self._objects)

    def unique_size_map(self) -> Dict[int, str]:
        """size -> path for objects whose size is unique on the site.

        These are exactly the objects whose identity the size
        side-channel reveals (Section II's condition (2)).
        """
        counts: Dict[int, int] = {}
        for obj in self._objects.values():
            counts[obj.size] = counts.get(obj.size, 0) + 1
        return {obj.size: obj.path for obj in self._objects.values()
                if counts[obj.size] == 1}

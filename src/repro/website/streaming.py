"""DASH-like adaptive streaming workload (paper Section VII).

"Exploring the suitability of our technique for other types of web
traffic, such as streaming traffic, is an interesting direction."

The model: a video is offered at several bitrate rungs; the player
requests one ~2-second segment at a time and adapts the rung to its
recent throughput.  Segment sizes cluster by rung (bitrate x duration,
with VBR noise), so an eavesdropper who recovers segment sizes learns
the watched quality ladder -- and with it rebuffering events, network
conditions, and (given per-title ladders) potentially the title.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.website.objects import WebObject
from repro.website.sitemap import Site

#: Default bitrate ladder (bits per second).
DEFAULT_LADDER = (300_000, 800_000, 1_500_000, 3_000_000)
SEGMENT_DURATION_S = 2.0


class StreamingSite(Site):
    """A video origin serving a fixed bitrate ladder."""

    def __init__(self, n_segments: int = 20,
                 ladder: Sequence[int] = DEFAULT_LADDER,
                 vbr_spread: float = 0.10, seed: int = 17):
        super().__init__(name="streaming", authority="video.example")
        # Seeded construction-time stream, the generator.py idiom: VBR
        # noise is site content, fixed by the site seed, not by any
        # global RNG state.
        rng = random.Random(seed)
        self.ladder = tuple(ladder)
        self.n_segments = n_segments
        self.segment_sizes: Dict[Tuple[int, int], int] = {}
        for rung, bitrate in enumerate(self.ladder):
            nominal = int(bitrate * SEGMENT_DURATION_S / 8)
            for index in range(n_segments):
                size = int(nominal * rng.uniform(1 - vbr_spread,
                                                 1 + vbr_spread))
                path = self.segment_path(rung, index)
                self.add(WebObject(path=path, size=size,
                                   content_type="video/mp4",
                                   cacheable=False))
                self.segment_sizes[(rung, index)] = size

    @staticmethod
    def segment_path(rung: int, index: int) -> str:
        return f"/video/{rung}/seg-{index}.m4s"

    def rung_of_size(self, size: int) -> Optional[int]:
        """Classify a recovered size to the nearest rung's nominal size.

        Returns ``None`` when the size is implausibly far from every
        rung (more than 35 % away from the nominal segment size).
        """
        best_rung, best_error = None, None
        for rung, bitrate in enumerate(self.ladder):
            nominal = bitrate * SEGMENT_DURATION_S / 8
            error = abs(size - nominal) / nominal
            if best_error is None or error < best_error:
                best_rung, best_error = rung, error
        if best_error is not None and best_error <= 0.35:
            return best_rung
        return None


@dataclass
class ViewerSession:
    """Outcome of one streaming session."""

    rung_history: List[int]
    completed_segments: int
    rebuffer_events: int


class Viewer:
    """Throughput-adaptive player over an HTTP/2 client.

    Requests one segment at a time (``prefetch=1``, the naturally
    serialized case) or keeps several in flight (``prefetch>=2``,
    which multiplexes on HTTP/2 and garbles passive size recovery).
    """

    def __init__(self, sim, client, site: StreamingSite, prefetch: int = 1,
                 start_rung: int = 0):
        self.sim = sim
        self.client = client
        self.site = site
        self.prefetch = max(1, prefetch)
        self.rung = start_rung
        self.rung_history: List[int] = []
        self.completed = 0
        self.rebuffers = 0
        self._next_index = 0
        self._in_flight = 0
        self._last_throughput_bps: Optional[float] = None
        self.done = False

    def start(self) -> None:
        self.client.connect(self._fill_pipeline)

    def _fill_pipeline(self) -> None:
        while (self._in_flight < self.prefetch
               and self._next_index < self.site.n_segments):
            index = self._next_index
            self._next_index += 1
            self.rung_history.append(self.rung)
            path = self.site.segment_path(self.rung, index)
            self._in_flight += 1
            requested_at = self.sim.now
            self.client.request(
                path,
                on_complete=lambda s, t0=requested_at: self._on_segment(s, t0))

    def _on_segment(self, stream, requested_at: float) -> None:
        self._in_flight -= 1
        self.completed += 1
        elapsed = max(self.sim.now - requested_at, 1e-6)
        throughput = stream.bytes_received * 8 / elapsed
        self._last_throughput_bps = throughput
        if elapsed > SEGMENT_DURATION_S:
            self.rebuffers += 1
        self._adapt(throughput)
        if self.completed >= self.site.n_segments:
            self.done = True
            return
        # Steady state: the next request goes out when playback consumes
        # a segment (2 s cadence), or immediately when behind.
        delay = max(0.0, SEGMENT_DURATION_S - elapsed)
        self.sim.schedule(delay, self._fill_pipeline)

    def _adapt(self, throughput_bps: float) -> None:
        """Simple rate-based ABR with an up-switch safety factor."""
        ladder = self.site.ladder
        candidate = self.rung
        if (self.rung + 1 < len(ladder)
                and throughput_bps > 1.5 * ladder[self.rung + 1]):
            candidate = self.rung + 1
        elif throughput_bps < 1.1 * ladder[self.rung] and self.rung > 0:
            candidate = self.rung - 1
        self.rung = candidate

    def result(self) -> ViewerSession:
        return ViewerSession(rung_history=list(self.rung_history),
                             completed_segments=self.completed,
                             rebuffer_events=self.rebuffers)

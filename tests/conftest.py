"""Shared test fixtures and rigs."""

from __future__ import annotations

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link, LinkConfig
from repro.tcp.connection import TcpConfig, TcpStack


class DirectRig:
    """Two hosts joined by a plain duplex link (no middlebox)."""

    def __init__(self, seed: int = 0, link: LinkConfig | None = None,
                 client_tcp: TcpConfig | None = None,
                 server_tcp: TcpConfig | None = None):
        self.sim = Simulator(seed=seed)
        link = link or LinkConfig(propagation_s=0.01)
        self.client_host = Host(self.sim, "client")
        self.server_host = Host(self.sim, "server")
        c2s = Link(self.sim, "c2s", link)
        s2c = Link(self.sim, "s2c", link)
        self.client_host.attach_links(c2s, s2c)
        self.server_host.attach_links(s2c, c2s)
        self.client_tcp = TcpStack(self.sim, self.client_host,
                                   client_tcp or TcpConfig())
        self.server_tcp = TcpStack(self.sim, self.server_host,
                                   server_tcp or TcpConfig())

    def run(self, duration: float = 5.0) -> None:
        self.sim.run(until=self.sim.now + duration)


@pytest.fixture
def rig() -> DirectRig:
    return DirectRig()


def make_rig(**kwargs) -> DirectRig:
    return DirectRig(**kwargs)
